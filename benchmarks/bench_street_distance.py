"""Extension bench — what the Euclidean-walking assumption hides.

The paper's user-dissatisfaction metric is Euclidean (Definition 1 as
instantiated in Section V).  Re-scoring the Table V placements with
street-grid shortest-path walking quantifies the systematic understatement:
on a Manhattan grid the walking cost inflates by ~1.2-1.4x, but the
*relative* ordering of the algorithms — the paper's actual claims — is
unchanged.
"""

import numpy as np

from repro.core import offline_placement, walking_cost
from repro.experiments.reporting import ExperimentResult
from repro.experiments.table5_plp_comparison import build_instance
from repro.geo import StreetNetwork, street_walking_cost
from repro.geo.points import BoundingBox


def test_street_vs_euclidean_walking(benchmark):
    def run():
        inst = build_instance(seed=0, volume=1200)
        offline = offline_placement(inst.test_demands, inst.facility_cost)
        network = StreetNetwork(BoundingBox.square(3000.0), block_size=75.0)
        euclid, _ = walking_cost(inst.test_demands, offline.stations)
        street, _ = street_walking_cost(inst.test_demands, offline.stations, network)
        inflation = street / euclid
        # The ordering claim: a *worse* placement stays worse under the
        # street metric too.
        half = offline.stations[: max(1, offline.n_stations // 2)]
        euclid_half, _ = walking_cost(inst.test_demands, half)
        street_half, _ = street_walking_cost(inst.test_demands, half, network)
        rows = [
            ["full placement", round(euclid / 1000, 1), round(street / 1000, 1),
             round(inflation, 3)],
            ["half the stations", round(euclid_half / 1000, 1),
             round(street_half / 1000, 1), round(street_half / euclid_half, 3)],
        ]
        return ExperimentResult(
            "Extension: street-network walking",
            "Euclidean vs street-grid walking cost of the Table V offline placement",
            ["placement", "euclidean (km)", "street (km)", "inflation"],
            rows,
            extras={
                "inflation": inflation,
                "euclid": euclid, "street": street,
                "euclid_half": euclid_half, "street_half": street_half,
            },
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.to_text())
    x = result.extras
    assert 1.05 <= x["inflation"] <= 1.75, (
        "grid detour should be Manhattan-sized plus access-leg overhead"
    )
    # Relative ordering preserved under the street metric.
    assert x["street_half"] > x["street"]
    assert x["euclid_half"] > x["euclid"]
