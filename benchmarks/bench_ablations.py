"""Ablation benches for the design choices DESIGN.md §5 calls out.

Each bench sweeps one knob of Algorithm 2 / Algorithm 3 on a shared
Table V-style instance and prints the trade-off table:

* ``beta`` — the opening-budget ratio (cost doubles every beta*k arrivals);
* ``L`` — the penalty tolerance level;
* fixed penalty types vs the KS-selected switch;
* exact Peacock KS vs the fast Fasano–Franceschini variant;
* the shift-reset latch on/off under a late demand surge;
* the incentive position cap of Algorithm 3.
"""

import time

import numpy as np
import pytest

from repro.core import EsharingConfig, esharing_placement
from repro.experiments.reporting import ExperimentResult
from repro.experiments.table5_plp_comparison import build_instance
from repro.geo import Point
from repro.stats import ks2d_fast, ks2d_peacock


@pytest.fixture(scope="module")
def instance():
    return build_instance(seed=0, volume=1200)


def _run_es(instance, config, seed=3):
    from repro.core import offline_placement

    anchor = offline_placement(instance.historical_demands, instance.facility_cost)
    return esharing_placement(
        instance.test_stream,
        anchor.stations,
        instance.facility_cost,
        instance.historical_sample,
        np.random.default_rng(seed),
        config,
    )


def _print(result: ExperimentResult) -> None:
    print()
    print(result.to_text())


def test_ablation_beta(benchmark, instance):
    """Larger beta delays the cost doubling => more online openings."""

    def run():
        rows = []
        for beta in (1.0, 1.5, 2.0, 4.0):
            res = _run_es(instance, EsharingConfig(beta=beta))
            rows.append(
                [beta, res.n_stations, len(res.online_opened), round(res.total / 1000, 1)]
            )
        return ExperimentResult(
            "Ablation: beta", "opening-budget ratio of Algorithm 2",
            ["beta", "# stations", "opened online", "total (km)"], rows,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(result)
    opened = result.column("opened online")
    assert opened[-1] >= opened[0], "a laxer budget cannot open fewer stations"


def test_ablation_tolerance(benchmark, instance):
    """Larger L tolerates more deviation => fewer forced openings far out."""

    def run():
        rows = []
        for L in (50.0, 200.0, 800.0):
            res = _run_es(instance, EsharingConfig(tolerance_m=L))
            rows.append([L, res.n_stations, round(res.walking / 1000, 1),
                         round(res.total / 1000, 1)])
        return ExperimentResult(
            "Ablation: L", "penalty tolerance level",
            ["L (m)", "# stations", "walking (km)", "total (km)"], rows,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(result)
    assert len(result.rows) == 3


def test_ablation_fixed_vs_selected_penalty(benchmark, instance):
    """The KS-selected switch should be competitive with the best fixed type."""

    def run():
        rows = []
        totals = {}
        for name in ("selected", "type_i", "type_ii", "type_iii", "no_penalty"):
            cfg = EsharingConfig() if name == "selected" else EsharingConfig(
                fixed_penalty=name
            )
            res = _run_es(instance, cfg)
            totals[name] = res.total
            rows.append([name, res.n_stations, round(res.total / 1000, 1)])
        return ExperimentResult(
            "Ablation: penalty selection", "fixed types vs KS-switched",
            ["penalty", "# stations", "total (km)"], rows,
            extras={"totals": totals},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(result)
    totals = result.extras["totals"]
    best_fixed = min(v for k, v in totals.items() if k != "selected")
    assert totals["selected"] <= best_fixed * 1.25, (
        "the KS-selected switch must stay near the best fixed penalty"
    )


def test_ablation_exact_vs_fast_ks(benchmark):
    """Exact Peacock is tighter but slower; fast is the online default."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=(400, 2))
    b = rng.normal(loc=0.5, size=(400, 2))

    def run():
        t0 = time.perf_counter()
        fast = ks2d_fast(a, b)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        exact = ks2d_peacock(a, b, max_grid=64)
        t_exact = time.perf_counter() - t0
        return ExperimentResult(
            "Ablation: KS variant", "exact Peacock vs fast quadrant test",
            ["variant", "D", "time (ms)"],
            [
                ["fast", round(fast.statistic, 4), round(t_fast * 1000, 2)],
                ["peacock", round(exact.statistic, 4), round(t_exact * 1000, 2)],
            ],
            extras={"fast": fast, "exact": exact},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(result)
    assert result.extras["exact"].statistic >= result.extras["fast"].statistic - 1e-12


def test_ablation_reset_on_shift(benchmark, instance):
    """Without the reset latch, a late surge cannot be absorbed."""
    surge_center = Point(2900.0, 2900.0)
    rng = np.random.default_rng(5)
    surge = [
        Point(
            float(np.clip(surge_center.x + rng.normal(0, 60), 0, 3000)),
            float(np.clip(surge_center.y + rng.normal(0, 60), 0, 3000)),
        )
        for _ in range(250)
    ]
    stream = list(instance.test_stream) + surge

    def run():
        from repro.core import offline_placement

        anchor = offline_placement(instance.historical_demands, instance.facility_cost)
        rows = []
        near = {}
        for reset in (False, True):
            res = esharing_placement(
                stream, anchor.stations, instance.facility_cost,
                instance.historical_sample, np.random.default_rng(6),
                EsharingConfig(reset_on_shift=reset),
            )
            near[reset] = sum(
                1 for i in res.online_opened
                if res.stations[i].distance_to(surge_center) < 400.0
            )
            rows.append([str(reset), res.n_stations, near[reset]])
        return ExperimentResult(
            "Ablation: reset_on_shift", "budget reset at a detected regime shift",
            ["reset", "# stations", "stations near surge"], rows,
            extras={"near": near},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(result)
    assert result.extras["near"][True] > result.extras["near"][False]


def test_ablation_incentive_position_cap(benchmark):
    """The cap trades incentive spend against relocation volume."""

    def run():
        from repro.energy import Fleet
        from repro.incentives import (ChargingCostParams, IncentiveConfig,
                                      IncentiveMechanism, UserPopulation)

        rows = []
        for cap in (3, 10, 30):
            stations = [Point(500.0 * i, 500.0 * (i % 3)) for i in range(12)]
            fleet = Fleet(stations, n_bikes=240, rng=np.random.default_rng(1))
            mech = IncentiveMechanism(
                fleet,
                ChargingCostParams(service_cost=60.0),
                config=IncentiveConfig(alpha=0.4, position_cap=cap),
                population=UserPopulation(reward_mean=3.0, reward_std=2.0,
                                          walk_mean=600.0, walk_std=200.0),
                rng=np.random.default_rng(2),
            )
            rng2 = np.random.default_rng(3)
            for _ in range(300):
                origin = int(rng2.integers(len(stations)))
                dest = int(rng2.integers(len(stations)))
                if origin == dest:
                    continue
                mech.offer_ride(origin, dest, stations[dest])
            rows.append([cap, round(mech.total_incentives_paid, 0),
                         mech.offers_accepted])
        return ExperimentResult(
            "Ablation: position cap", "incentive budgeting of Algorithm 3",
            ["cap", "incentives ($)", "accepted"], rows,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(result)
    paid = result.column("incentives ($)")
    assert paid[0] <= paid[-1], "a larger cap cannot pay less per relocation"
