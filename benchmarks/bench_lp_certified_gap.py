"""Ablation bench — certified optimality gap of Algorithm 1 via the LP bound.

The 1.61 worst-case factor is loose in practice; the LP relaxation of P1
certifies the *instance* gap.  On the Table V instance the greedy should
land within a few percent of optimal, substantiating the paper's use of
the offline solution as a near-optimal reference.
"""

import numpy as np

from repro.core import certified_gap, lp_lower_bound, offline_placement
from repro.experiments.reporting import ExperimentResult
from repro.experiments.table5_plp_comparison import build_instance


def test_certified_gap_on_table5_instance(benchmark):
    def run():
        inst = build_instance(seed=0, volume=1200)
        greedy = offline_placement(inst.test_demands, inst.facility_cost)
        bound = lp_lower_bound(inst.test_demands, inst.facility_cost)
        gap = certified_gap(greedy, inst.facility_cost)
        rows = [
            ["LP lower bound (km)", round(bound / 1000, 1)],
            ["greedy total (km)", round(greedy.total / 1000, 1)],
            ["certified gap factor", round(gap, 4)],
            ["worst-case guarantee", 1.61],
        ]
        return ExperimentResult(
            "Ablation: certified gap",
            "Algorithm 1 vs the LP relaxation of P1 on the Table V instance",
            ["quantity", "value"],
            rows,
            extras={"gap": gap},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.to_text())
    gap = result.extras["gap"]
    assert 1.0 - 1e-6 <= gap <= 1.61
    assert gap < 1.2, "the greedy should be near-optimal on this instance"
