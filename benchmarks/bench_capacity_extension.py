"""Extension bench — overcrowding under capacitated parking.

The paper assumes balanced reserves (Section II-B) and leaves
overcrowding to the re-balancing literature.  This extension quantifies
what the assumption buys: impose per-station capacities on the Table V
station sets and measure how walking cost degrades as capacity tightens,
for the offline and E-Sharing placements.
"""

import numpy as np

from repro.core import assign_with_capacity
from repro.experiments.reporting import ExperimentResult
from repro.experiments.table5_plp_comparison import build_instance


def test_capacity_walking_degradation(benchmark):
    def run():
        from repro.core import offline_placement

        inst = build_instance(seed=0, volume=1200)
        offline = offline_placement(inst.test_demands, inst.facility_cost)
        demands = inst.test_demands
        total_weight = sum(d.weight for d in demands)
        fair_share = total_weight / offline.n_stations
        rows = []
        walking = {}
        for factor in (8.0, 2.0, 1.2):
            caps = [fair_share * factor] * offline.n_stations
            out = assign_with_capacity(demands, offline.stations, caps)
            walking[factor] = out.walking
            rows.append(
                [
                    factor,
                    round(out.walking / 1000.0, 1),
                    len(out.unassigned),
                    round(max(out.loads), 1),
                ]
            )
        return ExperimentResult(
            "Extension: capacitated parking",
            "walking cost vs per-station capacity (multiples of fair share)",
            ["capacity factor", "walking (km)", "unassigned", "max load"],
            rows,
            extras={"walking": walking},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.to_text())
    w = result.extras["walking"]
    assert w[8.0] <= w[2.0] <= w[1.2] + 1e-9, (
        "tighter capacity cannot reduce walking cost"
    )
    # Generous capacity must keep everyone assigned.
    assert result.rows[0][2] == 0
