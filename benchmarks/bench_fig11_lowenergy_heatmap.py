"""Fig. 11 bench — low-energy distributions before/after incentives.

Paper: after incentives the low-energy bikes concentrate onto fewer
charging sites and the operator's route shortens.
"""

from repro.experiments import run_fig11


def test_fig11_lowenergy_heatmap(run_once):
    result = run_once(run_fig11, seed=0)
    sites_note = result.notes[0]
    parts = sites_note.split(":")[1]
    base_sites = int(parts.split("(")[0])
    inc_sites = int(parts.split("vs")[1].split("(")[0])
    assert inc_sites < base_sites, "incentives must reduce the demand sites"
    dist_note = result.notes[1]
    base_km = float(dist_note.split(":")[1].split("km")[0])
    inc_km = float(dist_note.split("vs")[1].split("km")[0])
    assert inc_km <= base_km, "the charging tour must not get longer"
