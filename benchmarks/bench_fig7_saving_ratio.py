"""Fig. 7 bench — aggregation saving ratios (Eq. 11).

Paper: m/n ~ 0.65 yields ~50% saving; saving climbs sharply with the
delay cost and slowly with the service cost.
"""

from repro.experiments import run_fig7a, run_fig7b


def test_fig7a_saving_vs_m(run_once):
    result = run_once(run_fig7a, n=20)
    mid = result.row_by("m", 13)  # m/n = 0.65
    assert 0.35 <= mid[2] <= 0.65, "m/n=0.65 should save roughly half"
    savings = result.column("saving ratio")
    assert all(a >= b for a, b in zip(savings, savings[1:])), "monotone in m"


def test_fig7b_saving_vs_costs(run_once):
    result = run_once(run_fig7b, n=20)
    col = result.headers.index("m=10")
    low_d = result.row_by("d ($)", 0.5)[col]
    rows_high_d = [r for r in result.rows if r[1] == 20.0 and r[0] == 1.0]
    assert rows_high_d[0][col] > low_d, "saving climbs with the delay cost"
