"""Table IV bench — day-of-week similarity matrix via Peacock's 2-D KS.

Paper: weekday block ~90-97%, Sat-Sun 88.9%, weekday-weekend ~58-80%.
Shape assertions: the two intra-regime blocks are clearly more similar
than the cross block.
"""

import numpy as np

from repro.experiments import run_table4


def test_table4_ks_similarity(run_once):
    result = run_once(run_table4, seed=0)
    m = result.extras["matrix"]
    weekday_block = np.nanmean([m[a, b] for a in range(5) for b in range(a + 1, 5)])
    cross_block = np.nanmean([m[a, b] for a in range(5) for b in (5, 6)])
    assert weekday_block > cross_block + 5.0, "weekday block must stand out"
    assert m[5, 6] > cross_block + 5.0, "Sat-Sun must be more similar than cross"
    assert weekday_block > 80.0
