"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or figures
via its experiment runner, prints the paper-shaped rows, and asserts the
qualitative claims hold.  Expensive runners execute once per benchmark
(``rounds=1``) — the interesting output is the table, not the timing.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark clock and print it."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )
        print()
        print(result.to_text())
        return result

    return _run
