"""Synthetic sweep workloads shared across the benchmark modules.

``bench_placement`` and ``bench_throughput`` used to each carry a copy
of the uniform-square generators; the copies are now thin re-exports of
:mod:`repro.parallel.cells`, which is also what the parallel sweep cells
draw from — so the benchmark sweep shapes and the multicore scaling
sweeps can never drift apart.  Draw order is part of the recorded
BENCH baselines: change it only with the JSON artifacts.
"""

from repro.parallel.cells import random_demand_points, random_points

__all__ = ["random_points", "random_demand_points"]
