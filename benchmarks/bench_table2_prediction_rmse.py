"""Table II bench — prediction RMSE grid: LSTM vs MA vs ARIMA.

Paper: 2-layer LSTM with back=12 wins (RMSE 29.1); LSTM improves ~30%
over the best statistical baseline.  Shape assertions: the best LSTM
beats every MA and ARIMA configuration, and back=12 beats back=3.
"""

from repro.experiments import run_table2


def test_table2_prediction_rmse(run_once):
    result = run_once(run_table2, seed=0, fast=True)
    rmse = {(r[0], r[1]): r[2] for r in result.rows}
    best_lstm = min(v for (m, _), v in rmse.items() if m.startswith("LSTM"))
    best_stat = min(v for (m, _), v in rmse.items() if not m.startswith("LSTM"))
    assert best_lstm < best_stat, "LSTM must beat the statistical baselines"
    assert rmse[("LSTM 1-layer", "back=12")] < rmse[("LSTM 1-layer", "back=3")]
    ma = [v for (m, _), v in rmse.items() if m == "MA"]
    assert min(ma) > best_lstm, "even the best MA window loses to LSTM"
