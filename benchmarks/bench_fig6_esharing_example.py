"""Fig. 6 bench — Algorithm 2 vs Meyerson, plus the unknown-distribution case.

Paper: E-Sharing's total is 23% below Meyerson on the example instance,
and ~3 extra online stations absorb arrivals from an unknown hotspot.
"""

from repro.experiments import run_fig6


def test_fig6_esharing_example(run_once):
    result = run_once(run_fig6, seed=0, trials=20)
    es = result.row_by("algorithm", "esharing")
    mey = result.row_by("algorithm", "meyerson")
    assert es[4] < mey[4], "E-Sharing must beat Meyerson's total"
    unknown_note = next(n for n in result.notes if "unknown distribution" in n)
    opened = float(unknown_note.split(":")[1].split("stations")[0])
    assert opened >= 1.0, "unknown hotspot must trigger online openings"
