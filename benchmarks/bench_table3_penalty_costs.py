"""Table III / Fig. 9 bench — penalty costs under synthetic distributions.

Paper's winners: uniform -> Type I, Poisson -> Type III, normal ->
Type II, with no-penalty taking minimum walking everywhere.  Our
accounting reproduces uniform and normal exactly; for the Poisson ring
Type III lands a close second behind Type I (see the experiment module's
docstring), so the bench asserts the reproducible subset plus Type III
beating Type II and no-penalty on the ring.
"""

from repro.experiments import run_table3


def test_table3_penalty_costs(run_once):
    result = run_once(run_table3, seed=0, trials=30)
    winners = result.extras["winners"]
    assert winners["uniform"] == "type_i"
    assert winners["normal"] == "type_ii"
    assert set(result.extras["min_walking"].values()) == {"no_penalty"}
    poisson = {r[1]: r[4] for r in result.rows if r[0] == "poisson"}
    assert poisson["type_iii"] < poisson["no_penalty"]
    assert poisson["type_iii"] < poisson["type_ii"]
