"""Ablation bench — how near-optimal is the 1.61-factor greedy?

Refines Algorithm 1's output with open/close/swap local search.  The gap
local search closes upper-bounds what the greedy left on the table; the
paper calls the offline solution "near-optimal", so the gap should be a
few percent at most.
"""

import numpy as np

from repro.core import (
    DemandPoint,
    constant_facility_cost,
    offline_placement,
    refine_placement,
)
from repro.experiments.reporting import ExperimentResult
from repro.geo import Point


def test_offline_greedy_vs_local_search(benchmark):
    def run():
        rows = []
        gaps = []
        for seed in range(6):
            rng = np.random.default_rng(seed)
            demands = [
                DemandPoint(Point(float(x), float(y)))
                for x, y in rng.uniform(0, 1500, size=(60, 2))
            ]
            cost_fn = constant_facility_cost(3000.0)
            greedy = offline_placement(demands, cost_fn)
            refined = refine_placement(greedy, cost_fn)
            gap = 1.0 - refined.total / greedy.total
            gaps.append(gap)
            rows.append(
                [seed, greedy.n_stations, round(greedy.total, 0),
                 refined.n_stations, round(refined.total, 0),
                 f"{100 * gap:.1f}%"]
            )
        return ExperimentResult(
            "Ablation: offline refinement",
            "1.61-factor greedy vs greedy + open/close/swap local search",
            ["seed", "greedy #", "greedy total", "refined #", "refined total", "gap closed"],
            rows,
            extras={"mean_gap": float(np.mean(gaps))},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.to_text())
    assert result.extras["mean_gap"] < 0.08, (
        "the greedy must already be near a local optimum (paper: near-optimal)"
    )
    assert result.extras["mean_gap"] >= 0.0
