"""Performance benchmarks — the placement pipeline's fast paths.

Three layers got fast paths, all bit-identical to the reference
behaviour (see DESIGN.md "Performance"):

* ``offline_placement(strategy="lazy")`` — the lazy-greedy JMS solver
  with cached star ratios vs the per-round full rescan (``reference``);
* ``EsharingPlanner.replay`` — the batched online path with the
  vectorized nearest-station cache vs one ``offer()`` call per arrival;
* the periodic KS checkpoint, served by the cached dominance grid.

Run standalone (``python benchmarks/bench_placement.py``) to regenerate
``BENCH_placement.json`` at the repo root and enforce the speedup gates
(>= 5x offline solve at 2k demands, >= 3x batched replay at 100k
arrivals).  ``--smoke`` runs a seconds-scale subset for CI that gates on
*parity only* — speed gates are meaningless on shared CI hardware.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from _workloads import random_demand_points, random_points
from repro.core import (
    EsharingConfig,
    EsharingPlanner,
    constant_facility_cost,
    meyerson_placement,
    offline_placement,
    online_kmeans_placement,
    uniform_facility_cost,
)
from repro.geo import Point
from repro.parallel import ParallelRunner, TaskSpec

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_placement.json"
EXTENT_M = 8_000.0
OFFLINE_SIZES = (250, 500, 1_000, 2_000)
REPLAY_SIZES = (10_000, 100_000)
OFFLINE_GATE = 5.0  # at 2k demands
REPLAY_GATE = 3.0  # at 100k arrivals


def _random_demands(rng, n):
    return random_demand_points(rng, n, EXTENT_M)


def _solve_cell(demands, strategy):
    """One (instance, strategy) sweep cell, timed in the executing process.

    Module-level so it pickles into pool workers; the instance itself is
    generated in the parent (the sweep's RNG stream is sequential across
    sizes) and shipped with the task.
    """
    start = time.perf_counter()
    result = offline_placement(
        demands, constant_facility_cost(6_000.0), strategy=strategy
    )
    return result, time.perf_counter() - start


def _same_result(a, b):
    return (
        a.stations == b.stations
        and a.assignment == b.assignment
        and a.walking == b.walking
        and a.space == b.space
    )


def run_offline_sweep(sizes=OFFLINE_SIZES, seed=0, workers=1):
    """Time lazy vs reference offline solves over an instance-size sweep.

    Both strategies solve the same seeded instances and must return
    bit-identical results (the sweep doubles as a parity check at
    scale).  With ``workers > 1`` the (instance x strategy) cells fan
    across a process pool and merge in canonical order, so the report's
    results — parity check included — are identical for any worker
    count; per-cell times are measured inside the executing process
    either way.  Returns the JSON-ready report dict.
    """
    rng = np.random.default_rng(seed)
    # Instances draw from one sequential RNG stream (size k's demands
    # depend on the draws for sizes before it), so generation stays in
    # the parent; only the solves fan out.
    instances = [(n, _random_demands(rng, n)) for n in sizes]
    tasks = [
        TaskSpec(
            _solve_cell,
            kwargs={"demands": demands, "strategy": strategy},
            label=f"offline[n={n},{strategy}]",
        )
        for n, demands in instances
        for strategy in ("reference", "lazy")
    ]
    cells = ParallelRunner(workers).run(tasks)
    sweep = []
    for i, (n, _) in enumerate(instances):
        (ref_result, ref_seconds), (lazy_result, lazy_seconds) = cells[2 * i], cells[2 * i + 1]
        if not _same_result(ref_result, lazy_result):
            raise AssertionError(f"offline strategies diverged at n={n}")
        sweep.append(
            {
                "demands": n,
                "stations": len(lazy_result.stations),
                "reference_seconds": ref_seconds,
                "lazy_seconds": lazy_seconds,
                "speedup": ref_seconds / lazy_seconds,
            }
        )
    return {"benchmark": "offline_placement lazy vs reference", "seed": seed, "sweep": sweep}


def run_replay_sweep(sizes=REPLAY_SIZES, n_anchors=150, seed=0):
    """Time per-call ``offer()`` loops vs batched ``replay()``.

    Both paths consume identical RNG streams and must produce
    bit-identical placements, assignments and cost totals.  Returns the
    JSON-ready report dict.
    """
    rng = np.random.default_rng(seed)
    anchors = random_points(rng, n_anchors, EXTENT_M)
    historical = rng.uniform(0, EXTENT_M, size=(5_000, 2))
    sweep = []
    for n in sizes:
        stream = random_points(rng, n, EXTENT_M)
        times = {}
        results = {}
        for mode in ("per_call", "batched"):
            planner = EsharingPlanner(
                anchors,
                uniform_facility_cost(800.0, np.random.default_rng(seed + 1)),
                historical,
                np.random.default_rng(seed + 2),
                EsharingConfig(),
            )
            start = time.perf_counter()
            if mode == "batched":
                planner.replay(stream)
            else:
                for p in stream:
                    planner.offer(p)
            times[mode] = time.perf_counter() - start
            results[mode] = planner.result()
        if not _same_result(results["per_call"], results["batched"]):
            raise AssertionError(f"replay diverged from per-call at n={n}")
        sweep.append(
            {
                "arrivals": n,
                "anchors": n_anchors,
                "stations": len(results["batched"].stations),
                "per_call_seconds": times["per_call"],
                "batched_seconds": times["batched"],
                "speedup": times["per_call"] / times["batched"],
            }
        )
    return {
        "benchmark": "EsharingPlanner per-call offer vs batched replay",
        "seed": seed,
        "sweep": sweep,
    }


def run_full_report(offline_sizes=OFFLINE_SIZES, replay_sizes=REPLAY_SIZES, seed=0,
                    workers=1):
    """Both sweeps plus the gate verdicts, as one JSON-ready dict."""
    offline = run_offline_sweep(offline_sizes, seed=seed, workers=workers)
    replay = run_replay_sweep(replay_sizes, seed=seed)
    report = {
        "offline": offline,
        "replay": replay,
        "gates": {
            "offline_speedup_at_max": offline["sweep"][-1]["speedup"],
            "offline_gate": OFFLINE_GATE,
            "replay_speedup_at_max": replay["sweep"][-1]["speedup"],
            "replay_gate": REPLAY_GATE,
        },
    }
    return report


def write_report(report, path=BENCH_JSON):
    """Persist the report as pretty-printed JSON; returns the path."""
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def _print_report(report):
    print(f"{'demands':>8} {'reference s':>12} {'lazy s':>8} {'speedup':>8}")
    for row in report["offline"]["sweep"]:
        print(
            f"{row['demands']:>8} {row['reference_seconds']:>12.3f} "
            f"{row['lazy_seconds']:>8.3f} {row['speedup']:>7.1f}x"
        )
    print(f"{'arrivals':>8} {'per-call s':>12} {'batched s':>10} {'speedup':>8}")
    for row in report["replay"]["sweep"]:
        print(
            f"{row['arrivals']:>8} {row['per_call_seconds']:>12.3f} "
            f"{row['batched_seconds']:>10.3f} {row['speedup']:>7.1f}x"
        )


# ----------------------------------------------------------------------
# pytest entry points (pytest benchmarks/) — parity-gated, modest sizes.
def test_offline_lazy_parity_smoke():
    """Lazy and reference offline solves agree bit-for-bit (small sweep)."""
    report = run_offline_sweep(sizes=(120, 300), seed=3)
    assert all(row["stations"] > 0 for row in report["sweep"])


def test_replay_parity_smoke():
    """Batched replay matches the per-call loop bit-for-bit, and the
    baseline planners' batched flags do too."""
    run_replay_sweep(sizes=(3_000,), n_anchors=40, seed=4)
    rng = np.random.default_rng(5)
    stream = [Point(float(x), float(y)) for x, y in rng.uniform(0, EXTENT_M, (1_500, 2))]
    for batched in (False, True):
        fc = uniform_facility_cost(700.0, np.random.default_rng(6))
        r = meyerson_placement(stream, fc, np.random.default_rng(7), batched=batched)
        k = online_kmeans_placement(
            stream, 15, constant_facility_cost(700.0), np.random.default_rng(8),
            batched=batched,
        )
        if not batched:
            ref_m, ref_k = r, k
    assert _same_result(ref_m, r) and _same_result(ref_k, k)


@pytest.mark.benchmark
def test_lazy_solve_latency(benchmark):
    """The lazy solver clears a 500-demand instance well under a second."""
    rng = np.random.default_rng(9)
    demands = _random_demands(rng, 500)
    result = benchmark(
        lambda: offline_placement(demands, constant_facility_cost(6_000.0))
    )
    assert result.stations


def main(argv=None):
    """Standalone entry point: run the sweeps and write the JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale subset for CI (small sizes, parity gates only)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="fan the offline sweep cells across this many worker "
        "processes (bit-identical results for any value)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = {
            "offline": run_offline_sweep(sizes=(120, 300), seed=3, workers=args.workers),
            "replay": run_replay_sweep(sizes=(3_000,), n_anchors=40, seed=4),
        }
        print(f"{'demands':>8} {'speedup':>8}")
        for row in report["offline"]["sweep"]:
            print(f"{row['demands']:>8} {row['speedup']:>7.1f}x")
        for row in report["replay"]["sweep"]:
            print(f"replay {row['arrivals']} arrivals: {row['speedup']:.1f}x")
        print("parity OK (both sweeps compare bit-identical outputs)")
        return 0
    report = run_full_report(workers=args.workers)
    path = write_report(report)
    _print_report(report)
    print(f"wrote {path}")
    gates = report["gates"]
    failed = False
    if gates["offline_speedup_at_max"] < OFFLINE_GATE:
        print(
            f"FAIL: lazy offline only {gates['offline_speedup_at_max']:.1f}x "
            f"reference at {OFFLINE_SIZES[-1]} demands (gate {OFFLINE_GATE}x)"
        )
        failed = True
    if gates["replay_speedup_at_max"] < REPLAY_GATE:
        print(
            f"FAIL: batched replay only {gates['replay_speedup_at_max']:.1f}x "
            f"per-call at {REPLAY_SIZES[-1]} arrivals (gate {REPLAY_GATE}x)"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
