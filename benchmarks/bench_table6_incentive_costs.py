"""Table VI / Fig. 12 bench — charging cost breakdown per incentive level.

Paper: alpha = 0.4 minimises the total at a 47% saving; incentives cut
service cost ~64% and delay cost ~88%; % charged rises from 42.3% to
80-96%; the moving distance drops 17.5%.
"""

from repro.experiments import run_fig12, run_table6


def test_table6_incentive_costs(run_once):
    result = run_once(run_table6, seed=0)
    totals = result.extras["totals"]
    best_alpha = min(totals, key=totals.get)
    assert 0.0 < best_alpha < 1.0, "a moderate alpha must win (paper: 0.4)"
    saving = 1.0 - totals[best_alpha] / totals[0.0]
    assert saving > 0.25, f"saving {saving:.0%} too small (paper: 47%)"
    rows = {r[0]: r for r in result.rows}
    assert rows["alpha=0.7"][1] < rows["alpha=0.0"][1], "service cost must fall"
    assert rows["alpha=0.7"][2] < rows["alpha=0.0"][2], "delay cost must fall"
    assert rows["alpha=0.7"][6] > rows["alpha=0.0"][6], "% charged must rise"
    assert rows["alpha=0.7"][7] < rows["alpha=0.0"][7], "tour must shorten"


def test_fig12_cost_vs_service_cost(run_once):
    result = run_once(run_fig12, seed=0, service_costs=[10.0, 60.0], alphas=[0.0, 0.4])
    def total(q, alpha):
        return next(r[2] for r in result.rows if r[0] == q and r[1] == alpha)
    # Incentives help most where the per-stop service cost is high.
    saving_low_q = total(10.0, 0.0) - total(10.0, 0.4)
    saving_high_q = total(60.0, 0.0) - total(60.0, 0.4)
    assert saving_high_q > saving_low_q
