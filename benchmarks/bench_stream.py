"""Columnar trip-stream hot path — throughput gates (``BENCH_stream.json``).

Times the struct-of-arrays pipeline against the scalar ``block_size=1``
oracle, stage by stage and composed:

* **validator** — ``TripValidator.admit_block`` vs the per-trip
  ``admit`` loop on a chaos-mutated stream;
* **buffer** — ``WatermarkBuffer.push_block`` on an already-sorted
  stream, where the fast path releases a zero-copy block slice instead
  of churning the heap;
* **journal** — ``TripJournal.append_block`` group commit (one durable
  ``write+fsync`` per block) vs one fsync per trip;
* **wal_checksum** — the per-line WAL checksum in isolation: the
  batched ``checksum_hex_many`` the group commit stamps lines with vs
  the scalar per-line ``checksum_hex`` loop it replaced;
* **replay (the gate)** — the composed guarded hot path: validate →
  reorder → journal (durable) → plan, scalar per-trip vs blocked
  end to end.  The gate demands **>= 10x** trips/sec, and the two runs
  must agree bit for bit first — identical admit decisions, identical
  journal bytes, identical planner decisions — or the benchmark fails
  regardless of speed;
* **serve** — ``GuardedRuntime.serve`` at ``block_size=256`` vs ``1``
  (recorded, not gated: the planner *apply* inside the checkpointing
  service is deliberately per-trip, so the end-to-end curve is bounded
  by it).

Parity is asserted *inside* every section, as ``bench_parallel`` does.
``--smoke`` runs a seconds-scale subset for CI: full parity, a relaxed
>= 2x floor on the composed path, and — when a committed
``BENCH_stream.json`` is present — a check that its recorded gate
verdict is still ``pass``.
"""

import argparse
import json
import shutil
import sys
import tempfile
import time
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np

from repro.core.costs import constant_facility_cost
from repro.core.esharing import EsharingConfig, EsharingPlanner
from repro.core.tripblock import TripBlock
from repro.datasets.trips import TripRecord
from repro.geo.points import BoundingBox, Point
from repro.guard import (
    DeadLetterSink,
    GuardConfig,
    GuardedRuntime,
    TripValidator,
    ValidationConfig,
    WatermarkBuffer,
)
from repro.resilience.chaos import ChaosConfig, FaultInjector
from repro.resilience.journal import TripJournal
from repro.resilience.service import CheckpointingService, constant_cost_spec

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_stream.json"
GATE_SPEEDUP = 10.0  # composed guarded-replay hot path, blocked vs scalar
SMOKE_FLOOR = 2.0  # relaxed floor for the CI smoke run
BLOCK = 256
PLANE = 2000.0
COST_VALUE = 8000.0
T0 = datetime(2017, 5, 10)


def make_trips(n, seed=0):
    """A clean, in-order stream on the demo plane (the loader's output
    shape: time-sorted, all fields present)."""
    rng = np.random.default_rng(seed)
    return [
        TripRecord(
            order_id=i, user_id=i % 40, bike_id=i % 60, bike_type=1,
            start_time=T0 + timedelta(seconds=30 * i),
            start=Point(*rng.uniform(0.0, PLANE, 2)),
            end=Point(*rng.uniform(0.0, PLANE, 2)),
            battery=float(rng.uniform(0.1, 1.0)),
        )
        for i in range(n)
    ]


def make_hostile(n, seed=0):
    """The same stream chaos-mutated — garbage, skew, reorder, dupes —
    so the validator benchmark exercises its reject paths too."""
    return FaultInjector(ChaosConfig(
        seed=seed,
        p_duplicate=0.03, p_drop=0.03, p_swap=0.05,
        p_clock_skew=0.02, skew_max_s=900.0,
        p_garbage=0.03,
        p_late=0.02, late_max_positions=8,
    )).mutate_trips(make_trips(n, seed=seed))


def make_blocks(trips, size):
    """Pre-cut columnar blocks (the loader emits these natively via
    ``load_mobike_csv(as_block=True)``; conversion is not what we
    measure here — the ``serve`` section includes it)."""
    return [
        TripBlock.from_trips(trips[lo : lo + size])
        for lo in range(0, len(trips), size)
    ]


def fresh_validator():
    return TripValidator(
        ValidationConfig(
            bounds=BoundingBox(-100.0, -100.0, PLANE + 100.0, PLANE + 100.0),
            max_backwards_s=3600.0,
        ),
        sink=DeadLetterSink(),
    )


def build_planner(seed=0):
    anchors = [
        Point(float(x), float(y))
        for x in (0, 667, 1333, 2000)
        for y in (0, 667, 1333, 2000)
    ]
    historical = np.random.default_rng(seed).uniform(0.0, PLANE, size=(300, 2))
    # beta/history_window set the periodic-KS cadence and sample size —
    # a workload knob, applied identically to both sides of every
    # comparison (the check itself is the same code either way).
    return EsharingPlanner(
        anchors,
        constant_facility_cost(COST_VALUE),
        historical,
        np.random.default_rng(seed + 1),
        EsharingConfig(beta=8.0, history_window=100),
    )


def _rate_row(n, scalar_s, blocked_s):
    return {
        "trips": n,
        "scalar_seconds": scalar_s,
        "blocked_seconds": blocked_s,
        "scalar_trips_per_sec": n / scalar_s,
        "blocked_trips_per_sec": n / blocked_s,
        "speedup": scalar_s / blocked_s,
    }


# ----------------------------------------------------------------------
# Stage benchmarks.
# ----------------------------------------------------------------------

def run_validator(n=40_000, block=BLOCK, seed=3):
    stream = make_hostile(n, seed=seed)
    blocks = make_blocks(stream, block)

    scalar = fresh_validator()
    start = time.perf_counter()
    want = [scalar.admit(t) for t in stream]
    scalar_s = time.perf_counter() - start

    blocked = fresh_validator()
    start = time.perf_counter()
    got = []
    for blk in blocks:
        got.extend(bool(b) for b in blocked.admit_block(blk))
    blocked_s = time.perf_counter() - start

    if got != want or blocked.counters != scalar.counters:
        raise AssertionError("blocked validator diverged from scalar")
    if blocked.sink.rows != scalar.sink.rows:
        raise AssertionError("blocked dead-letter rows diverged from scalar")
    report = _rate_row(len(stream), scalar_s, blocked_s)
    report["benchmark"] = "validator: admit_block vs per-trip admit"
    report["rejected"] = scalar.rejected
    report["parity"] = "decisions, counters and dead-letter rows identical"
    return report


def run_buffer_sorted(n=40_000, block=BLOCK, seed=4):
    stream = make_trips(n, seed=seed)
    blocks = make_blocks(stream, block)
    key = lambda t: (t.order_id, t.start_time)  # noqa: E731

    scalar = WatermarkBuffer(lateness_s=600.0, max_pending=10_000)
    start = time.perf_counter()
    want = []
    for trip in stream:
        want.extend(scalar.push(trip))
    want.extend(scalar.flush())
    scalar_s = time.perf_counter() - start

    blocked = WatermarkBuffer(lateness_s=600.0, max_pending=10_000)
    start = time.perf_counter()
    released = []
    for blk in blocks:
        released.append(blocked.push_block(blk))
    tail = blocked.flush()
    blocked_s = time.perf_counter() - start
    # Parity conversion happens outside the timed region: downstream
    # consumers (replay, append_block) take the released blocks natively.
    got = [t for blk in released for t in blk.to_trips()]
    got.extend(tail)

    if [key(t) for t in got] != [key(t) for t in want]:
        raise AssertionError("blocked buffer release order diverged from scalar")
    # the identity-on-sorted-streams fast path must be zero-copy
    probe = WatermarkBuffer(lateness_s=0.0, max_pending=10_000)
    out = probe.push_block(blocks[0])
    if not np.shares_memory(out.start_us, blocks[0].start_us):
        raise AssertionError("sorted fast path copied instead of slicing")
    report = _rate_row(len(stream), scalar_s, blocked_s)
    report["benchmark"] = "reorder buffer: sorted-stream fast path vs heap churn"
    report["parity"] = "release order identical; fast path verified zero-copy"
    return report


def run_journal(n=8_000, block=BLOCK, seed=5, workdir=None):
    stream = make_trips(n, seed=seed)
    blocks = make_blocks(stream, block)

    scalar_path = workdir / "scalar.jsonl"
    journal = TripJournal(scalar_path, durable=True)
    start = time.perf_counter()
    for trip in stream:
        journal.append(trip)
    journal.close()
    scalar_s = time.perf_counter() - start

    blocked_path = workdir / "blocked.jsonl"
    journal = TripJournal(blocked_path, durable=True)
    start = time.perf_counter()
    for blk in blocks:
        journal.append_block(blk)
    journal.close()
    blocked_s = time.perf_counter() - start

    if blocked_path.read_bytes() != scalar_path.read_bytes():
        raise AssertionError("group-commit journal bytes diverged from scalar")
    report = _rate_row(len(stream), scalar_s, blocked_s)
    report["benchmark"] = "journal: group-commit fsync per block vs per trip"
    report["fsyncs_scalar"] = len(stream)
    report["fsyncs_blocked"] = -(-len(stream) // block)
    report["parity"] = "journal bytes identical"
    return report


def run_checksum(n=40_000, seed=8):
    """WAL per-line checksum: the scalar ``checksum_hex(body)[:16]``
    loop ``append_block`` used to run vs the batched
    ``checksum_hex_many`` it runs now.  Same bodies, and the digests
    must match character for character."""
    from repro.ioutil import checksum_hex, checksum_hex_many
    from repro.resilience.journal import CHECKSUM_PREFIX_LEN, _encode_block_lines

    block = TripBlock.from_trips(make_trips(n, seed=seed))
    lines = _encode_block_lines(range(1, n + 1), block)
    blobs = [line.split(" ", 1)[1].rstrip("\n").encode("utf-8") for line in lines]

    start = time.perf_counter()
    want = [checksum_hex(b)[:CHECKSUM_PREFIX_LEN] for b in blobs]
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    got = checksum_hex_many(blobs, CHECKSUM_PREFIX_LEN)
    blocked_s = time.perf_counter() - start

    if got != want:
        raise AssertionError("batched WAL checksums diverged from scalar")
    report = _rate_row(n, scalar_s, blocked_s)
    report["benchmark"] = (
        "WAL line checksum: checksum_hex_many vs per-line checksum_hex"
    )
    report["checksum_prefix_len"] = CHECKSUM_PREFIX_LEN
    report["parity"] = "digests identical"
    return report


def run_replay_gate(n=20_000, block=BLOCK, seed=6, workdir=None):
    """THE GATE: the composed guarded hot path, scalar vs blocked.

    validate → reorder → durably journal → plan, over the same stream,
    from identically-seeded planners.  Decisions, journal bytes and
    planner state must match bit for bit; then the blocked path must be
    >= 10x the scalar trips/sec.
    """
    stream = make_trips(n, seed=seed)
    blocks = make_blocks(stream, block)

    v1, b1 = fresh_validator(), WatermarkBuffer(lateness_s=600.0, max_pending=10_000)
    p1 = build_planner(seed)
    j1 = TripJournal(workdir / "replay-scalar.jsonl", durable=True)
    start = time.perf_counter()
    for trip in stream:
        if v1.admit(trip):
            for rel in b1.push(trip):
                j1.append(rel)
                p1.offer(rel.end)
    for rel in b1.flush():
        j1.append(rel)
        p1.offer(rel.end)
    j1.close()
    scalar_s = time.perf_counter() - start

    v2, b2 = fresh_validator(), WatermarkBuffer(lateness_s=600.0, max_pending=10_000)
    p2 = build_planner(seed)
    j2 = TripJournal(workdir / "replay-blocked.jsonl", durable=True)
    start = time.perf_counter()
    for blk in blocks:
        mask = v2.admit_block(blk)
        accepted = blk if bool(mask.all()) else blk.take(np.flatnonzero(mask))
        released = b2.push_block(accepted)
        if len(released):
            j2.append_block(released)  # block-native group commit
            p2.replay(released)
    tail = b2.flush()
    if tail:
        tail_block = TripBlock.from_trips(tail)
        j2.append_block(tail_block)
        p2.replay(tail_block)
    j2.close()
    blocked_s = time.perf_counter() - start

    if (workdir / "replay-blocked.jsonl").read_bytes() != (
        workdir / "replay-scalar.jsonl"
    ).read_bytes():
        raise AssertionError("composed path journal bytes diverged")
    if p2.decisions != p1.decisions:
        raise AssertionError("composed path planner decisions diverged")
    if (p2.walking, p2.space, p2.online_opened) != (
        p1.walking, p1.space, p1.online_opened
    ):
        raise AssertionError("composed path planner state diverged")
    report = _rate_row(len(stream), scalar_s, blocked_s)
    report["benchmark"] = (
        "guarded replay hot path: validate+reorder+journal(durable)+plan"
    )
    report["decisions"] = len(p1.decisions)
    report["stations_opened"] = len(p1.online_opened)
    report["parity"] = "journal bytes, planner decisions and state identical"
    return report


def run_runtime_serve(n=4_000, block=BLOCK, seed=7, workdir=None):
    """End-to-end ``GuardedRuntime.serve``, durable journal, both block
    sizes.  Recorded for the curve; the apply stage is per-trip by
    design (checkpoint cadence + breaker accounting), so this is not
    the 10x gate."""

    def scrub(state):
        state["planner"]["ks_seconds"] = 0.0
        return state

    def build(name):
        planner = build_planner(seed)
        from repro.energy.fleet import Fleet
        from repro.core.streaming import PlacementService

        fleet = Fleet(
            planner.stations, n_bikes=120, rng=np.random.default_rng(seed + 2)
        )
        inner = CheckpointingService(
            PlacementService(planner, fleet), workdir / name,
            checkpoint_every=500, durable=True,
            facility_cost_spec=constant_cost_spec(COST_VALUE),
        )
        config = GuardConfig(
            validation=ValidationConfig(
                bounds=BoundingBox(-100.0, -100.0, PLANE + 100.0, PLANE + 100.0),
                max_backwards_s=3600.0,
            ),
            lateness_s=600.0,
        )
        return GuardedRuntime(inner, config)

    stream = make_trips(n, seed=seed)
    scalar = build("serve-scalar")
    start = time.perf_counter()
    scalar.serve(stream, block_size=1)
    scalar_s = time.perf_counter() - start

    blocked = build("serve-blocked")
    start = time.perf_counter()
    blocked.serve(stream, block_size=block)
    blocked_s = time.perf_counter() - start

    if blocked.inner.service.responses != scalar.inner.service.responses:
        raise AssertionError("serve responses diverged across block sizes")
    if scrub(blocked.inner.service.state_dict()) != scrub(
        scalar.inner.service.state_dict()
    ):
        raise AssertionError("serve state diverged across block sizes")
    if (blocked.inner.directory / "journal.jsonl").read_bytes() != (
        scalar.inner.directory / "journal.jsonl"
    ).read_bytes():
        raise AssertionError("serve journal bytes diverged across block sizes")
    scalar.close()
    blocked.close()
    report = _rate_row(len(stream), scalar_s, blocked_s)
    report["benchmark"] = "GuardedRuntime.serve end to end (durable journal)"
    report["parity"] = "responses, state and journal bytes identical"
    return report


# ----------------------------------------------------------------------
# Harness.
# ----------------------------------------------------------------------

def run_full_report(block=BLOCK):
    workdir = Path(tempfile.mkdtemp(prefix="esharing-bench-stream-"))
    try:
        validator = run_validator(block=block)
        buffer = run_buffer_sorted(block=block)
        journal = run_journal(block=block, workdir=workdir)
        wal_checksum = run_checksum()
        replay = run_replay_gate(block=block, workdir=workdir)
        serve = run_runtime_serve(block=block, workdir=workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    measured = replay["speedup"]
    return {
        "block_size": block,
        "validator": validator,
        "buffer": buffer,
        "journal": journal,
        "wal_checksum": wal_checksum,
        "replay": replay,
        "serve": serve,
        "gates": {
            "parity": "ok (asserted inside every section)",
            "required_replay_speedup": GATE_SPEEDUP,
            "measured_replay_speedup": measured,
            "verdict": "pass" if measured >= GATE_SPEEDUP else "fail",
        },
    }


def run_smoke(block=BLOCK):
    """Seconds-scale CI subset: full parity, relaxed composed-path floor,
    and the committed BENCH_stream.json verdict re-checked."""
    workdir = Path(tempfile.mkdtemp(prefix="esharing-bench-stream-"))
    try:
        validator = run_validator(n=4_000, block=block)
        buffer = run_buffer_sorted(n=4_000, block=block)
        journal = run_journal(n=1_500, block=block, workdir=workdir)
        wal_checksum = run_checksum(n=4_000)
        replay = run_replay_gate(n=4_000, block=block, workdir=workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    failures = []
    if replay["speedup"] < SMOKE_FLOOR:
        failures.append(
            f"composed replay path only {replay['speedup']:.2f}x scalar "
            f"(smoke floor {SMOKE_FLOOR}x)"
        )
    if BENCH_JSON.exists():
        recorded = json.loads(BENCH_JSON.read_text())
        if recorded["gates"]["verdict"] != "pass":
            failures.append(
                f"committed {BENCH_JSON.name} records a failing gate: "
                f"{recorded['gates']['measured_replay_speedup']:.2f}x "
                f"(required {recorded['gates']['required_replay_speedup']}x)"
            )
    return {
        "validator": validator,
        "buffer": buffer,
        "journal": journal,
        "wal_checksum": wal_checksum,
        "replay": replay,
    }, failures


def write_report(report, path=BENCH_JSON):
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def _print_report(
    report,
    sections=("validator", "buffer", "journal", "wal_checksum", "replay", "serve"),
):
    print(f"{'section':<10} {'scalar/s':>12} {'blocked/s':>12} {'speedup':>8}")
    for name in sections:
        if name not in report:
            continue
        row = report[name]
        print(
            f"{name:<10} {row['scalar_trips_per_sec']:>12,.0f} "
            f"{row['blocked_trips_per_sec']:>12,.0f} {row['speedup']:>7.2f}x"
        )


# ----------------------------------------------------------------------
# pytest entry point (pytest benchmarks/) — parity-gated, modest sizes.
def test_stream_parity_smoke():
    """Every columnar stage matches its scalar oracle bit for bit."""
    workdir = Path(tempfile.mkdtemp(prefix="esharing-bench-stream-"))
    try:
        run_validator(n=1_200, block=64)
        run_buffer_sorted(n=1_200, block=64)
        run_journal(n=400, block=64, workdir=workdir)
        run_checksum(n=1_200)
        run_replay_gate(n=1_200, block=64, workdir=workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale CI subset: parity everywhere, relaxed "
        f">= {SMOKE_FLOOR}x floor on the composed path, committed "
        "BENCH_stream.json verdict re-checked",
    )
    parser.add_argument(
        "--block-size", type=int, default=BLOCK, help="trips per block"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report, failures = run_smoke(block=args.block_size)
        _print_report(report)
        for line in failures:
            print(f"FAIL: {line}")
        if failures:
            return 1
        print("parity OK (all columnar stages bit-identical to scalar)")
        return 0
    report = run_full_report(block=args.block_size)
    path = write_report(report)
    _print_report(report)
    gates = report["gates"]
    print(
        f"gate: >= {gates['required_replay_speedup']}x composed replay "
        f"-> {gates['verdict']} "
        f"({gates['measured_replay_speedup']:.2f}x measured)"
    )
    print(f"wrote {path}")
    return 0 if gates["verdict"] == "pass" else 1


if __name__ == "__main__":
    sys.exit(main())
