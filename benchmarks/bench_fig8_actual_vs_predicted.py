"""Fig. 8 bench — actual vs LSTM-predicted hourly requests.

Shape assertions: the weekday prediction tracks the commute double peak
(morning hours predicted well above midnight hours) and both regimes'
RMSE stays far below the series' dynamic range.
"""

import numpy as np

from repro.experiments import run_fig8


def test_fig8_actual_vs_predicted(run_once):
    result = run_once(run_fig8, seed=0, epochs=30)
    weekday = [r for r in result.rows if r[0] == "weekday"]
    actual = np.asarray([r[2] for r in weekday], dtype=float)
    predicted = np.asarray([r[3] for r in weekday], dtype=float)
    assert len(weekday) >= 20
    # Prediction must track the diurnal shape, not just the mean.
    corr = np.corrcoef(actual, predicted)[0, 1]
    assert corr > 0.8, f"prediction should track the daily pattern, corr={corr:.2f}"
    rmse = result.extras["rmse"]
    assert rmse["weekday"] < actual.max() * 0.35
