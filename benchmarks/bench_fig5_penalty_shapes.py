"""Fig. 5 bench — penalty-function shapes g(c) and derivatives over [0, 3L].

Shape assertions: Type II plunges to 0 at L; Type I keeps >0.2 beyond 3L;
Type III sits between the two at mid-range.
"""

from repro.experiments import run_fig5


def test_fig5_penalty_shapes(run_once):
    result = run_once(run_fig5, tolerance=200.0, n_points=13)
    at_L = result.row_by("c (m)", 200.0)
    assert at_L[2] == 0.0, "Type II must cut off exactly at L"
    at_3L = result.row_by("c (m)", 600.0)
    assert at_3L[1] > 0.2, "Type I must keep a tail beyond 3L"
    at_mid = result.row_by("c (m)", 300.0)
    assert at_mid[2] < at_mid[3] < at_mid[1], "Type III between II and I at 1.5L"
