"""Fig. 9 bench — spatial scatter of parking per penalty function.

Shape assertions on the paper's visual claims: penalties open fewer
stations than no-penalty; Type II aggregates them closest to the origin
(its stations never exceed the others' reach); Type I keeps the widest
footprint among the penalties.
"""

import numpy as np

from repro.experiments import run_fig9
from repro.geo import Point


def test_fig9_penalty_scatter(run_once):
    result = run_once(run_fig9, seed=0, distribution="poisson")
    opened = {r[0]: r[1] for r in result.rows}
    mean_radius = {r[0]: r[2] for r in result.rows}
    assert opened["type_ii"] < opened["type_i"] <= opened["no_penalty"]
    assert mean_radius["type_ii"] <= mean_radius["type_i"]
    # Every scatter stays anchored around the origin (Fig. 9's framing).
    for name, stations in result.extras["scatters"].items():
        if stations:
            center = np.mean([[p.x, p.y] for p in stations], axis=0)
            assert np.linalg.norm(center) < 200.0, name
