"""Extension bench — k-median budgets vs P1's cost-driven station count.

Municipalities often cap the number of parking zones outright instead of
pricing space.  Sweeping the k-median budget around the P1 solution's own
station count shows the walking-cost curve the regulator trades against:
steep below the P1 count, flat above it — evidence the cost-based
formulation already sits near the knee.
"""

from repro.core import kmedian_placement, offline_placement
from repro.experiments.reporting import ExperimentResult
from repro.experiments.table5_plp_comparison import build_instance


def test_kmedian_budget_sweep(benchmark):
    def run():
        inst = build_instance(seed=0, volume=1200)
        offline = offline_placement(inst.test_demands, inst.facility_cost)
        k_star = offline.n_stations
        rows = []
        walking = {}
        for factor, k in (("k*/2", k_star // 2), ("k*", k_star),
                          ("2k*", 2 * k_star)):
            res = kmedian_placement(inst.test_demands, k=max(1, k))
            walking[factor] = res.walking
            rows.append([factor, max(1, k), round(res.walking / 1000, 1)])
        rows.append(["P1 (cost-based)", k_star, round(offline.walking / 1000, 1)])
        return ExperimentResult(
            "Extension: k-median budgets",
            "walking cost vs station budget around the P1 solution's count",
            ["budget", "k", "walking (km)"],
            rows,
            extras={"walking": walking, "offline_walking": offline.walking},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.to_text())
    w = result.extras["walking"]
    # The knee: halving the budget hurts much more than doubling helps.
    loss_below = w["k*/2"] - w["k*"]
    gain_above = w["k*"] - w["2k*"]
    assert loss_below > gain_above > 0
    # At the same k, pure k-median cannot walk more than P1's solution.
    assert w["k*"] <= result.extras["offline_walking"] * 1.05
