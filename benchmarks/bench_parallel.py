"""Scaling benchmark — the deterministic multicore execution layer.

Times three fan-outs from :mod:`repro.parallel` across a worker-count
sweep (1/2/4/8 by default) and records the curves to
``BENCH_parallel.json`` at the repo root:

* **placement** — the offline JMS sweep cells of ``bench_placement``
  fanned through :class:`~repro.parallel.ParallelRunner`;
* **ingest** — ``load_mobike_csv(workers=N)`` over a synthetic
  Mobike-schema CSV with malformed rows sprinkled in;
* **pipeline** — :func:`repro.experiments.run_pipeline_sweep` over a
  seed grid, worker phase timers merged into one breakdown.

Every sweep runs the parity assertion *inside* the benchmark (as
``bench_placement`` does): the pooled outputs — placements, trip
records, quarantine reports, sweep tables — must be bit-identical to
the 1-worker serial reference at every worker count, or the run fails
regardless of speed.

The efficiency gate (>= 1.6x end-to-end placement speedup at 4 workers)
is enforced only when the host actually has >= 4 usable cores; on a
smaller machine (CI containers are routinely core-limited) the measured
curve is still recorded but the verdict says why the gate was skipped —
a wall-clock speedup gate on hardware that cannot exhibit one would
measure the scheduler, not the code.  ``--smoke`` runs a seconds-scale
parity-only subset for CI.
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.datasets import (
    QuarantineReport,
    load_mobike_csv,
    mobike_like_dataset,
    save_mobike_csv,
)
from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import run_pipeline_sweep
from repro.parallel import ParallelRunner, TaskSpec, spawn_seeds, usable_cores
from repro.parallel.cells import offline_cell

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
WORKER_SWEEP = (1, 2, 4, 8)
GATE_WORKERS = 4
GATE_SPEEDUP = 1.6  # end-to-end placement sweep at 4 workers
MIN_GATE_CORES = 4  # the gate needs hardware that can express a speedup


def _placement_tasks(n_cells, n_demands, root_seed=0):
    """The placement sweep fan-out: self-seeded offline JMS cells."""
    return [
        TaskSpec(
            offline_cell,
            kwargs={"seed": ss, "n_demands": n_demands},
            label=f"offline[{i}]",
        )
        for i, ss in enumerate(spawn_seeds(root_seed, n_cells))
    ]


def run_placement_scaling(worker_sweep=WORKER_SWEEP, n_cells=12, n_demands=500):
    """Time the offline sweep fan-out per worker count; assert parity.

    Returns the JSON-ready report dict with one end-to-end wall time,
    speedup and parallel efficiency per worker count; digests at every
    count must match the 1-worker serial baseline bit for bit.
    """
    tasks = _placement_tasks(n_cells, n_demands)
    sweep = []
    baseline_digests = None
    baseline_seconds = None
    for workers in worker_sweep:
        start = time.perf_counter()
        cells = ParallelRunner(workers).run(tasks)
        elapsed = time.perf_counter() - start
        digests = [c["digest"] for c in cells]
        if baseline_digests is None:
            baseline_digests, baseline_seconds = digests, elapsed
        elif digests != baseline_digests:
            raise AssertionError(
                f"placement digests diverged from serial at workers={workers}"
            )
        sweep.append(
            {
                "workers": workers,
                "seconds": elapsed,
                "speedup": baseline_seconds / elapsed,
                "efficiency": baseline_seconds / elapsed / workers,
            }
        )
    return {
        "benchmark": "offline placement sweep fan-out",
        "cells": n_cells,
        "demands_per_cell": n_demands,
        "parity": "bit-identical digests at every worker count",
        "sweep": sweep,
    }


def _make_csv(path, n_weekday, n_malformed=8, seed=11):
    """Write a synthetic Mobike CSV with malformed rows sprinkled in."""
    dataset = mobike_like_dataset(
        seed=seed,
        days=3,
        config=SyntheticConfig(
            trips_per_weekday=n_weekday, trips_per_weekend_day=n_weekday
        ),
    )
    save_mobike_csv(dataset, path)
    with open(path) as f:
        lines = f.read().splitlines(keepends=True)
    rng = np.random.default_rng(seed)
    for row in rng.choice(len(lines) - 1, size=n_malformed, replace=False):
        parts = lines[row + 1].split(",")
        parts[5] = "!!badgeohash"
        lines[row + 1] = ",".join(parts)
    with open(path, "w") as f:
        f.writelines(lines)
    return len(lines) - 1


def run_ingest_scaling(worker_sweep=WORKER_SWEEP, n_weekday=6_000):
    """Time sharded CSV ingest per worker count; assert byte parity.

    The serial records *and* the quarantine report are the reference;
    every sharded load must reproduce both exactly.
    """
    sweep = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trips.csv")
        n_rows = _make_csv(path, n_weekday)
        reference = None
        ref_quarantine = None
        baseline_seconds = None
        for workers in worker_sweep:
            report = QuarantineReport()
            start = time.perf_counter()
            dataset = load_mobike_csv(
                path, on_error="quarantine", quarantine=report, workers=workers
            )
            elapsed = time.perf_counter() - start
            if reference is None:
                reference, ref_quarantine = list(dataset), report.rows
                baseline_seconds = elapsed
            elif list(dataset) != reference or report.rows != ref_quarantine:
                raise AssertionError(
                    f"sharded ingest diverged from serial at workers={workers}"
                )
            sweep.append(
                {
                    "workers": workers,
                    "seconds": elapsed,
                    "speedup": baseline_seconds / elapsed,
                    "rows_per_sec": n_rows / elapsed,
                }
            )
    return {
        "benchmark": "sharded Mobike CSV ingest",
        "rows": n_rows,
        "quarantined": len(ref_quarantine),
        "parity": "records and QuarantineReport byte-identical at every worker count",
        "sweep": sweep,
    }


def run_pipeline_scaling(worker_sweep=(1, 2, 4), seeds=(0, 1, 2, 3), volume=400):
    """Time the end-to-end pipeline seed sweep per worker count.

    The merged sweep tables (and their placement digests) must be
    identical at every worker count; merged phase-timer totals are
    recorded so the breakdown survives the worker processes.
    """
    sweep = []
    reference_rows = None
    baseline_seconds = None
    phase_seconds = None
    for workers in worker_sweep:
        start = time.perf_counter()
        result = run_pipeline_sweep(seeds, volume=volume, workers=workers)
        elapsed = time.perf_counter() - start
        digests = [c["digest"] for c in result.extras["cells"]]
        if reference_rows is None:
            reference_rows = (result.rows, digests)
            baseline_seconds = elapsed
            phase_seconds = result.extras["phase_seconds"]
        elif (result.rows, digests) != reference_rows:
            raise AssertionError(
                f"pipeline sweep diverged from serial at workers={workers}"
            )
        sweep.append(
            {
                "workers": workers,
                "seconds": elapsed,
                "speedup": baseline_seconds / elapsed,
            }
        )
    return {
        "benchmark": "end-to-end pipeline seed sweep",
        "seeds": list(seeds),
        "volume": volume,
        "parity": "sweep tables and placement digests identical at every worker count",
        "merged_phase_seconds": phase_seconds,
        "sweep": sweep,
    }


def run_full_report(worker_sweep=WORKER_SWEEP):
    """All three scaling sweeps plus the gate verdict, as one dict."""
    cores = usable_cores()
    placement = run_placement_scaling(worker_sweep)
    ingest = run_ingest_scaling(worker_sweep)
    pipeline = run_pipeline_scaling()
    at_gate = next(
        (row for row in placement["sweep"] if row["workers"] == GATE_WORKERS), None
    )
    gate_enforced = cores >= MIN_GATE_CORES
    report = {
        "host": {
            "cpu_count": os.cpu_count(),
            "usable_cores": cores,
        },
        "placement": placement,
        "ingest": ingest,
        "pipeline": pipeline,
        "gates": {
            "parity": "ok (asserted inside every sweep, every worker count)",
            "required_speedup_at_4_workers": GATE_SPEEDUP,
            "measured_speedup_at_4_workers": at_gate["speedup"] if at_gate else None,
            "enforced": gate_enforced,
            "verdict": (
                ("pass" if at_gate and at_gate["speedup"] >= GATE_SPEEDUP else "fail")
                if gate_enforced
                else f"skipped: host exposes {cores} usable core(s); the "
                f"wall-clock gate needs >= {MIN_GATE_CORES} to be measurable"
            ),
        },
    }
    return report


def write_report(report, path=BENCH_JSON):
    """Persist the report as pretty-printed JSON; returns the path."""
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def _print_report(report):
    for section in ("placement", "ingest", "pipeline"):
        print(f"{report[section]['benchmark']}:")
        print(f"{'workers':>8} {'seconds':>9} {'speedup':>8}")
        for row in report[section]["sweep"]:
            print(
                f"{row['workers']:>8} {row['seconds']:>9.3f} {row['speedup']:>7.2f}x"
            )
    gates = report["gates"]
    print(
        f"gate: >= {gates['required_speedup_at_4_workers']}x at {GATE_WORKERS} "
        f"workers -> {gates['verdict']}"
    )


# ----------------------------------------------------------------------
# pytest entry points (pytest benchmarks/) — parity-gated, modest sizes.
def test_placement_fanout_parity_smoke():
    """Pooled placement cells match the serial baseline bit for bit."""
    report = run_placement_scaling(worker_sweep=(1, 2), n_cells=4, n_demands=150)
    assert all(row["seconds"] > 0 for row in report["sweep"])


def test_ingest_fanout_parity_smoke():
    """Sharded ingest matches the serial load, quarantine included."""
    report = run_ingest_scaling(worker_sweep=(1, 2), n_weekday=400)
    assert report["quarantined"] > 0


def main(argv=None):
    """Standalone entry point: run the sweeps and write the JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale subset for CI (2-worker sweeps, parity gates only)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        placement = run_placement_scaling(worker_sweep=(1, 2), n_cells=4,
                                          n_demands=150)
        ingest = run_ingest_scaling(worker_sweep=(1, 2), n_weekday=400)
        pipeline = run_pipeline_scaling(worker_sweep=(1, 2), seeds=(0, 1),
                                        volume=200)
        _print_report({"placement": placement, "ingest": ingest,
                       "pipeline": pipeline,
                       "gates": {"required_speedup_at_4_workers": GATE_SPEEDUP,
                                 "verdict": "skipped (smoke: parity only)"}})
        print("parity OK (all three fan-outs bit-identical to serial)")
        return 0
    report = run_full_report()
    path = write_report(report)
    _print_report(report)
    print(f"wrote {path}")
    if report["gates"]["verdict"] == "fail":
        print(
            f"FAIL: placement fan-out only "
            f"{report['gates']['measured_speedup_at_4_workers']:.2f}x serial "
            f"at {GATE_WORKERS} workers (gate {GATE_SPEEDUP}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
