"""Extension bench — Table II with seasonal statistical baselines.

Hourly bike demand is strongly diurnal, so seasonal-naive and
Holt-Winters are the *fair* statistical baselines the paper's MA/ARIMA
grid omits.  The extension asks whether the LSTM's edge survives: the
seasonal baselines should crush MA/ARIMA, and the LSTM should remain at
least competitive with them.
"""

from repro.experiments import run_table2


def test_table2_with_seasonal_baselines(run_once):
    result = run_once(run_table2, seed=0, fast=True, include_seasonal=True)
    rmse = {(r[0], r[1]): r[2] for r in result.rows}
    best_lstm = min(v for (m, _), v in rmse.items() if m.startswith("LSTM"))
    best_ma_arima = min(
        v for (m, _), v in rmse.items() if m in ("MA", "ARIMA")
    )
    best_seasonal = min(
        v for (m, _), v in rmse.items() if m in ("SeasonalNaive", "HoltWinters")
    )
    assert best_seasonal < best_ma_arima, (
        "seasonal baselines must beat the non-seasonal statistical grid"
    )
    assert best_lstm < best_seasonal * 1.5, (
        "the LSTM must stay competitive with the fair seasonal baselines"
    )
