"""Performance benchmarks — serving throughput of the online loop.

Unlike the table/figure benches (one pedantic round each, the output is
the table), these measure real latency: requests/second through
Algorithm 2's decision path and the periodic KS test, the two hot spots
of the server backend.  pytest-benchmark runs them with its normal
multi-round protocol.
"""

import numpy as np
import pytest

from repro.core import (
    EsharingConfig,
    EsharingPlanner,
    constant_facility_cost,
)
from repro.geo import Point
from repro.stats import ks2d_fast


@pytest.fixture(scope="module")
def planner_factory():
    rng = np.random.default_rng(0)
    anchors = [Point(float(x), float(y)) for x, y in rng.uniform(0, 3000, (25, 2))]
    historical = rng.uniform(0, 3000, (800, 2))
    stream = [Point(float(x), float(y)) for x, y in rng.uniform(0, 3000, (500, 2))]

    def make():
        planner = EsharingPlanner(
            anchors, constant_facility_cost(10_000.0), historical,
            np.random.default_rng(1), EsharingConfig(),
        )
        return planner, stream

    return make


def test_offer_throughput(benchmark, planner_factory):
    """Algorithm 2 must serve a 500-request burst in well under a second."""

    def serve():
        planner, stream = planner_factory()
        for p in stream:
            planner.offer(p)
        return len(planner.decisions)

    served = benchmark(serve)
    assert served == 500
    # > 1000 requests/second on any reasonable machine.
    assert benchmark.stats["mean"] < 0.5


def test_ks_test_latency(benchmark):
    """One periodic KS check (800 vs 800 points) stays under ~100 ms."""
    rng = np.random.default_rng(2)
    a = rng.normal(size=(800, 2))
    b = rng.normal(loc=0.3, size=(800, 2))

    result = benchmark(lambda: ks2d_fast(a, b))
    assert 0.0 <= result.statistic <= 1.0
    assert benchmark.stats["mean"] < 0.5
