"""Performance benchmarks — serving throughput of the online loop.

Unlike the table/figure benches (one pedantic round each, the output is
the table), these measure real latency: requests/second through
Algorithm 2's decision path and the periodic KS test, the two hot spots
of the server backend.  pytest-benchmark runs them with its normal
multi-round protocol.

This module also hosts the StationSet backend sweep: requests/second of
the ``linear`` reference vs the ``grid`` index across a station-count
sweep, persisted machine-readably to ``BENCH_throughput.json`` at the
repo root.  Run standalone (``python benchmarks/bench_throughput.py``)
to regenerate the JSON; ``--smoke`` runs a seconds-scale subset for CI.
"""

import argparse
import json
import math
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from _workloads import random_points
from repro.core import (
    BACKENDS,
    EsharingConfig,
    EsharingPlanner,
    StationSet,
    constant_facility_cost,
)
from repro.geo import Point
from repro.stats import ks2d_fast

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
EXTENT_M = 30_000.0  # city-scale study region side length
SWEEP_COUNTS = (1_000, 3_000, 10_000)


def run_backend_sweep(station_counts=SWEEP_COUNTS, n_queries=500, seed=0):
    """Time ``StationSet.nearest`` per backend over a station-count sweep.

    Both backends answer the same seeded query stream and must return the
    same station ids (the sweep doubles as a parity check at scale).
    Returns the JSON-ready report dict.
    """
    rng = np.random.default_rng(seed)
    sweep = []
    for n in station_counts:
        # Shared workload generators (benchmarks/_workloads.py) keep the
        # sweep shape in sync with bench_placement and the parallel cells.
        stations = random_points(rng, n, EXTENT_M)
        queries = random_points(rng, n_queries, EXTENT_M)
        # Cell size near the mean station spacing keeps ring expansions short.
        cell_size = EXTENT_M / math.sqrt(n)
        entry = {"stations": n, "queries": n_queries, "backends": {}}
        answers = {}
        for backend in BACKENDS:
            store = StationSet(stations, backend=backend, cell_size=cell_size)
            start = time.perf_counter()
            answers[backend] = [store.nearest(q)[0] for q in queries]
            elapsed = time.perf_counter() - start
            entry["backends"][backend] = {
                "seconds": elapsed,
                "requests_per_sec": n_queries / elapsed,
            }
        if answers["grid"] != answers["linear"]:
            raise AssertionError(f"backend results diverged at n={n}")
        entry["grid_speedup"] = (
            entry["backends"]["grid"]["requests_per_sec"]
            / entry["backends"]["linear"]["requests_per_sec"]
        )
        sweep.append(entry)
    return {
        "benchmark": "StationSet.nearest backend sweep",
        "extent_m": EXTENT_M,
        "seed": seed,
        "sweep": sweep,
    }


def write_backend_sweep(report, path=BENCH_JSON):
    """Persist the sweep report as pretty-printed JSON; returns the path."""
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def _print_sweep(report):
    print(f"{'stations':>9} {'linear req/s':>13} {'grid req/s':>12} {'speedup':>8}")
    for row in report["sweep"]:
        lin = row["backends"]["linear"]["requests_per_sec"]
        grd = row["backends"]["grid"]["requests_per_sec"]
        print(f"{row['stations']:>9} {lin:>13.0f} {grd:>12.0f} {row['grid_speedup']:>7.1f}x")


@pytest.fixture(scope="module")
def planner_factory():
    rng = np.random.default_rng(0)
    anchors = [Point(float(x), float(y)) for x, y in rng.uniform(0, 3000, (25, 2))]
    historical = rng.uniform(0, 3000, (800, 2))
    stream = [Point(float(x), float(y)) for x, y in rng.uniform(0, 3000, (500, 2))]

    def make():
        planner = EsharingPlanner(
            anchors, constant_facility_cost(10_000.0), historical,
            np.random.default_rng(1), EsharingConfig(),
        )
        return planner, stream

    return make


def test_offer_throughput(benchmark, planner_factory):
    """Algorithm 2 must serve a 500-request burst in well under a second."""

    def serve():
        planner, stream = planner_factory()
        for p in stream:
            planner.offer(p)
        return len(planner.decisions)

    served = benchmark(serve)
    assert served == 500
    # > 1000 requests/second on any reasonable machine.
    assert benchmark.stats["mean"] < 0.5


def test_ks_test_latency(benchmark):
    """One periodic KS check (800 vs 800 points) stays under ~100 ms."""
    rng = np.random.default_rng(2)
    a = rng.normal(size=(800, 2))
    b = rng.normal(loc=0.3, size=(800, 2))

    result = benchmark(lambda: ks2d_fast(a, b))
    assert 0.0 <= result.statistic <= 1.0
    assert benchmark.stats["mean"] < 0.5


def test_backend_sweep_grid_speedup():
    """The grid backend must beat the linear scan >= 3x at 10k stations;
    the sweep is persisted to BENCH_throughput.json for the record."""
    report = run_backend_sweep()
    print()
    _print_sweep(report)
    write_backend_sweep(report)
    at_10k = next(r for r in report["sweep"] if r["stations"] == 10_000)
    assert at_10k["grid_speedup"] >= 3.0, (
        f"grid only {at_10k['grid_speedup']:.1f}x linear at 10k stations"
    )


def main(argv=None):
    """Standalone entry point: run the backend sweep and write the JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale subset for CI (small sweep, no speedup gate)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_backend_sweep(station_counts=(500, 2_000), n_queries=200)
        _print_sweep(report)
        return 0
    report = run_backend_sweep()
    path = write_backend_sweep(report)
    _print_sweep(report)
    print(f"wrote {path}")
    at_10k = next(r for r in report["sweep"] if r["stations"] == 10_000)
    if at_10k["grid_speedup"] < 3.0:
        print(f"FAIL: grid only {at_10k['grid_speedup']:.1f}x linear at 10k stations")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
