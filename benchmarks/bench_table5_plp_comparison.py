"""Table V bench — the main Tier-1 comparison.

Paper: offline 16 / 393.5; Meyerson 32.9 / 609.3; online k-means
45.2 / 1754.3; E-sharing actual 25.3 / 460.0; predicted 26.0 / 487.6.
Shape assertions: total ordering offline < E-sharing < Meyerson <<
online k-means; E-sharing within 35% of offline; prediction gap small.
"""

from repro.experiments import run_table5


def test_table5_plp_comparison(run_once):
    result = run_once(run_table5, seed=0)
    total = {r[0]: r[4] for r in result.rows}
    assert total["Offline*"] < total["E-sharing (actual)"]
    assert total["E-sharing (actual)"] < total["Meyerson"]
    assert total["Meyerson"] < total["Online k-means"]
    assert total["E-sharing (actual)"] < total["Offline*"] * 1.35, (
        "E-sharing must stay near the offline frontier (paper: within ~17-25%)"
    )
    gap = abs(total["E-sharing (predicted)"] / total["E-sharing (actual)"] - 1.0)
    assert gap < 0.20, "prediction error must stay a small perturbation (paper: 6%)"
    stations = {r[0]: r[1] for r in result.rows}
    assert stations["Offline*"] <= stations["E-sharing (actual)"] < stations["Online k-means"]
