"""Theorem 1 bench — competitive-ratio growth on the adversarial instance.

The geometric sequence (2^-i, 2^-i) with f = 2: the online/offline ratio
must keep growing with the instance size, illustrating that no online
PLP algorithm is O(1)-competitive.
"""

from repro.experiments import run_thm1


def test_thm1_lower_bound(run_once):
    result = run_once(run_thm1, max_n=30, trials=50)
    ratios = result.column("mean online/offline ratio")
    assert ratios[-1] > ratios[len(ratios) // 2] > ratios[0], "ratio must keep growing"
    assert ratios[-1] > 1.5
