"""Overload saturation curve — offered load vs served rate
(``BENCH_loadgen.json``).

Generates seeded baseline OD streams at 0.5x/1x/2x/4x/8x the admission
capacity and serves each through a guarded runtime whose
:class:`~repro.guard.OverloadConfig` is sized to the 1x rate.  The
sweep records, per point, the sustained wall-clock throughput and the
served/shed/deferred split — the saturation curve: below capacity the
fleet serves everything, past it the shed/deferred share grows while
the served rate stays pinned near the admission rate.

Correctness is asserted inside every sweep point, before its timing is
accepted:

* end-to-end accounting must be exact (``offered == served +
  duplicates + dead-lettered + deferred + degraded``) and the
  controller's own conservation check must pass;
* at the sub-capacity points the run must be **bit-identical** to an
  uncontrolled oracle runtime fed the same stream (responses and
  checkpoint state modulo the KS wall-clock timing) with zero rows
  shed or deferred — the zero-overload invariant.

A second section times the vectorized
:meth:`~repro.loadgen.ScenarioSchedule.apply` against its scalar
oracle on one large block, asserting bit-parity of the outputs before
accepting the speedup.  The speedup gate (>= 5x) is enforced only on
hosts with >= 4 usable cores — on an oversubscribed CI container the
ratio measures scheduler noise, not the kernel.  ``--smoke`` runs a
seconds-scale parity-only subset for CI.
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.costs import constant_facility_cost
from repro.core.esharing import EsharingConfig, EsharingPlanner
from repro.core.streaming import PlacementService
from repro.energy.fleet import Fleet
from repro.geo.points import BoundingBox, Point
from repro.guard import (
    GuardConfig,
    GuardedRuntime,
    OverloadConfig,
    ValidationConfig,
)
from repro.loadgen import ODConfig, TripStream, make_scenario
from repro.parallel import usable_cores
from repro.resilience.service import CheckpointingService, constant_cost_spec

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_loadgen.json"
MULT_SWEEP = (0.5, 1.0, 2.0, 4.0, 8.0)
BASE_TRIPS_PER_HOUR = 2400.0
DURATION_S = 1800.0
#: Trips per ingest block — arrival-scale granularity, so the token
#: bucket sees minutes of traffic per offer, not a whole stream at once.
SERVE_BLOCK = 64
APPLY_GATE_SPEEDUP = 5.0  # vectorized scenario apply vs its scalar oracle
MIN_GATE_CORES = 4  # below this the ratio measures scheduler noise
PLANE = 2000.0
COST_VALUE = 8000.0


def _bounds():
    return BoundingBox(0.0, 0.0, PLANE, PLANE)


def _build_service(seed):
    anchors = [
        Point(float(x), float(y))
        for x in (0, 667, 1333, 2000)
        for y in (0, 667, 1333, 2000)
    ]
    historical = np.random.default_rng(seed).uniform(0.0, PLANE, size=(300, 2))
    planner = EsharingPlanner(
        anchors,
        constant_facility_cost(COST_VALUE),
        historical,
        np.random.default_rng(seed + 1),
        EsharingConfig(beta=2.0, history_window=200),
    )
    fleet = Fleet(planner.stations, n_bikes=120, rng=np.random.default_rng(seed + 2))
    return PlacementService(planner, fleet)


def _guard_config(overload):
    margin = 100.0
    return GuardConfig(
        validation=ValidationConfig(
            bounds=BoundingBox(-margin, -margin, PLANE + margin, PLANE + margin),
            max_backwards_s=3600.0,
        ),
        lateness_s=600.0,
        overload=overload,
    )


def _runtime(workdir, name, seed, overload):
    inner = CheckpointingService(
        _build_service(seed), workdir / name, checkpoint_every=500,
        durable=False, facility_cost_spec=constant_cost_spec(COST_VALUE),
    )
    return GuardedRuntime(inner, _guard_config(overload))


def _records(multiplier, duration_s, seed):
    od = ODConfig(
        bounds=_bounds(), trips_per_hour=BASE_TRIPS_PER_HOUR * multiplier
    )
    schedule = make_scenario("baseline", od.bounds, duration_s)
    return TripStream(od, schedule, seed=seed).records(duration_s)


def run_saturation(mult_sweep=MULT_SWEEP, duration_s=DURATION_S, seed=0):
    """Serve each offered-load multiple through 1x-sized admission.

    Accounting is asserted at every point; the sub-capacity points are
    additionally asserted bit-identical to an uncontrolled oracle.
    """
    base_rate = BASE_TRIPS_PER_HOUR / 3600.0
    overload = OverloadConfig(
        rate_per_s=1.6 * base_rate,
        burst=max(32, int(round(1.6 * base_rate * 180.0))),
        queue_limit=400,
    )
    sweep = []
    for mult in mult_sweep:
        records = _records(mult, duration_s, seed)
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            runtime = _runtime(tmp, "controlled", seed, overload)
            start = time.perf_counter()
            outcomes = runtime.serve(records, block_size=SERVE_BLOCK)
            elapsed = time.perf_counter() - start
            runtime.consistency_check()
            offered = runtime.validator.offered
            accounted = (
                runtime.served
                + runtime.duplicates
                + runtime.sink.total
                + len(runtime.deferred_decisions)
                + len(runtime.degraded_decisions)
            )
            if offered != len(records) or offered != accounted:
                raise AssertionError(
                    f"accounting drift at {mult}x: {len(records)} in, "
                    f"{offered} offered, {accounted} accounted"
                )
            ctrl = runtime.overload
            overloaded = bool(
                ctrl.shed or ctrl.deferred or ctrl.transitions
            )
            if mult <= 1.0:
                if overloaded:
                    raise AssertionError(
                        f"control engaged below capacity ({mult}x): "
                        f"{ctrl.shed} shed, {ctrl.deferred} deferred"
                    )
                oracle = _runtime(tmp, "oracle", seed, None)
                expected = oracle.serve(records, block_size=SERVE_BLOCK)
                if outcomes != expected:
                    raise AssertionError(
                        f"responses diverged from the uncontrolled oracle "
                        f"at {mult}x"
                    )
                got = runtime.inner.service.state_dict()
                want = oracle.inner.service.state_dict()
                got["planner"]["ks_seconds"] = 0.0
                want["planner"]["ks_seconds"] = 0.0
                if got != want:
                    raise AssertionError(
                        f"state diverged from the uncontrolled oracle at {mult}x"
                    )
                oracle.close()
            sweep.append(
                {
                    "multiplier": mult,
                    "offered": offered,
                    "served": runtime.served,
                    "shed": ctrl.shed,
                    "deferred": ctrl.deferred,
                    "deadlettered": runtime.sink.total,
                    "ladder_transitions": len(ctrl.transitions),
                    "seconds": elapsed,
                    "trips_per_sec": offered / elapsed,
                    "offered_rate_per_s": offered / duration_s,
                    "served_rate_per_s": runtime.served / duration_s,
                }
            )
            runtime.close()
    return {
        "benchmark": "overload saturation: offered load vs served rate",
        "admission_rate_per_s": overload.rate_per_s,
        "event_duration_s": duration_s,
        "parity": (
            "exact accounting at every point; sub-capacity points "
            "bit-identical to the uncontrolled oracle (zero shed/deferred)"
        ),
        "sweep": sweep,
    }


def run_apply_parity(n_target=20_000, seed=0):
    """Vectorized scenario apply vs the scalar oracle on one block.

    Bit-parity of the rewritten columns is asserted before the speedup
    is accepted.
    """
    bounds = _bounds()
    od = ODConfig(bounds=bounds, trips_per_hour=float(n_target) * 2.0,
                  step_s=1800.0)
    schedule = make_scenario("weather", bounds, duration_s=1800.0)
    stream = TripStream(od, schedule, seed=seed)
    block = max(stream.blocks(1800.0), key=len)

    start = time.perf_counter()
    fast = schedule.apply(block, np.random.default_rng(seed))
    vector_seconds = time.perf_counter() - start
    start = time.perf_counter()
    slow = schedule.apply_scalar(block, np.random.default_rng(seed))
    scalar_seconds = time.perf_counter() - start
    if not (
        np.array_equal(fast.end_x, slow.end_x)
        and np.array_equal(fast.end_y, slow.end_y)
    ):
        raise AssertionError("vectorized scenario apply diverged from scalar")
    return {
        "benchmark": "vectorized ScenarioSchedule.apply vs scalar oracle",
        "rows": len(block),
        "vector_seconds": vector_seconds,
        "scalar_seconds": scalar_seconds,
        "speedup": scalar_seconds / vector_seconds,
        "parity": "rewritten destination columns bitwise identical",
    }


def run_generation_throughput(n_target=50_000, seed=0):
    """Raw stream emission rate (rows/sec of TripStream.blocks)."""
    bounds = _bounds()
    od = ODConfig(bounds=bounds, trips_per_hour=float(n_target), step_s=60.0)
    schedule = make_scenario("festival", bounds, duration_s=3600.0)
    stream = TripStream(od, schedule, seed=seed)
    start = time.perf_counter()
    rows = sum(len(b) for b in stream.blocks(3600.0))
    elapsed = time.perf_counter() - start
    return {
        "benchmark": "TripStream emission (festival scenario attached)",
        "rows": rows,
        "seconds": elapsed,
        "rows_per_sec": rows / elapsed,
    }


def run_full_report(mult_sweep=MULT_SWEEP):
    cores = usable_cores()
    saturation = run_saturation(mult_sweep)
    apply_bench = run_apply_parity()
    generation = run_generation_throughput()
    gate_enforced = cores >= MIN_GATE_CORES
    return {
        "host": {
            "cpu_count": os.cpu_count(),
            "usable_cores": cores,
        },
        "saturation": saturation,
        "scenario_apply": apply_bench,
        "generation": generation,
        "gates": {
            "accounting": "ok (asserted at every sweep point)",
            "zero_overload_identity": "ok (asserted at sub-capacity points)",
            "required_apply_speedup": APPLY_GATE_SPEEDUP,
            "measured_apply_speedup": apply_bench["speedup"],
            "enforced": gate_enforced,
            "verdict": (
                (
                    "pass"
                    if apply_bench["speedup"] >= APPLY_GATE_SPEEDUP
                    else "fail"
                )
                if gate_enforced
                else f"skipped: host exposes {cores} usable core(s); the "
                f"wall-clock gate needs >= {MIN_GATE_CORES} to be measurable"
            ),
        },
    }


def write_report(report, path=BENCH_JSON):
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def _print_report(report):
    saturation = report["saturation"]
    print(f"{saturation['benchmark']}:")
    print(
        f"{'offered':>8} {'served':>7} {'shed':>6} {'defer':>6} "
        f"{'trips/s':>9} {'served/s':>9}"
    )
    for row in saturation["sweep"]:
        print(
            f"{row['multiplier']:>7.1f}x {row['served']:>7} {row['shed']:>6} "
            f"{row['deferred']:>6} {row['trips_per_sec']:>9,.0f} "
            f"{row['served_rate_per_s']:>9.2f}"
        )
    apply_bench = report.get("scenario_apply")
    if apply_bench:
        print(
            f"scenario apply: {apply_bench['rows']} rows, "
            f"{apply_bench['speedup']:.1f}x vectorized vs scalar "
            f"(parity asserted)"
        )
    generation = report.get("generation")
    if generation:
        print(
            f"stream emission: {generation['rows']} rows at "
            f"{generation['rows_per_sec']:,.0f} rows/s"
        )
    gates = report["gates"]
    print(
        f"gate: apply >= {gates['required_apply_speedup']}x scalar -> "
        f"{gates['verdict']}"
    )


# ----------------------------------------------------------------------
# pytest entry points (pytest benchmarks/) — parity-gated, modest sizes.
def test_loadgen_saturation_smoke():
    """Accounting exact at every point; sub-capacity bit-identity."""
    report = run_saturation(mult_sweep=(0.5, 4.0), duration_s=600.0)
    assert all(row["seconds"] > 0 for row in report["sweep"])
    over = next(r for r in report["sweep"] if r["multiplier"] == 4.0)
    assert over["shed"] + over["deferred"] > 0


def test_scenario_apply_parity_smoke():
    """Vectorized apply is bitwise the scalar oracle (asserted inside)."""
    report = run_apply_parity(n_target=4_000)
    assert report["rows"] > 0 and report["vector_seconds"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale subset for CI (two sweep points, parity gates only)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        saturation = run_saturation(mult_sweep=(0.5, 4.0), duration_s=600.0)
        _print_report({
            "saturation": saturation,
            "scenario_apply": run_apply_parity(n_target=4_000),
            "gates": {
                "required_apply_speedup": APPLY_GATE_SPEEDUP,
                "verdict": "skipped (smoke: parity only)",
            },
        })
        print(
            "parity OK (accounting exact, sub-capacity points bit-identical "
            "to the uncontrolled oracle)"
        )
        return 0
    report = run_full_report()
    path = write_report(report)
    _print_report(report)
    print(f"wrote {path}")
    if report["gates"]["verdict"] == "fail":
        print(
            f"FAIL: vectorized scenario apply only "
            f"{report['gates']['measured_apply_speedup']:.2f}x scalar "
            f"(gate {APPLY_GATE_SPEEDUP}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
