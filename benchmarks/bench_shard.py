"""Geo-sharded runtime scaling — shards vs throughput (``BENCH_shard.json``).

Serves one demo-city stream through :class:`repro.shard.ShardedRuntime`
at 1/2/4/8 shards (each sweep point fanning its shards across that many
workers) and records the wall-clock curve to ``BENCH_shard.json`` at
the repo root.

Parity is asserted inside every sweep point, before its timing is
accepted: each shard of the fleet must have produced exactly the
outcomes and journal bytes of a standalone single-shard runtime built
from the same :class:`~repro.shard.ShardSpec` and fed that shard's
sub-stream (the oracles run *outside* the timed region).  A sweep point
that is fast but wrong fails the benchmark regardless of speed.

The scaling gate (>= 1.6x end-to-end at 4 shards / 4 workers) is
enforced only when the host exposes >= 4 usable cores; on a
core-limited CI container the curve is still recorded but the verdict
says why the gate was skipped — process fan-out on one core measures
the scheduler, not the partitioner.  ``--smoke`` runs a seconds-scale
parity-only subset for CI.
"""

import argparse
import json
import os
import sys
import tempfile
import time
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np

from repro.datasets.trips import TripRecord
from repro.geo.points import BoundingBox, Point
from repro.guard import GuardConfig, ValidationConfig
from repro.parallel import usable_cores
from repro.shard import (
    FleetSupervisor,
    ShardPlan,
    ShardRouter,
    ShardedRuntime,
    SupervisorConfig,
    build_shard_runtime,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_shard.json"
SHARD_SWEEP = (1, 2, 4, 8)
GATE_SHARDS = 4
GATE_SPEEDUP = 1.6  # end-to-end at 4 shards / 4 workers vs 1 shard serial
MIN_GATE_CORES = 4  # the gate needs hardware that can express a speedup
PLANE = 2000.0
T0 = datetime(2017, 5, 10)


def make_trips(n, seed=0):
    """A clean, in-order stream on the demo plane."""
    rng = np.random.default_rng(seed)
    return [
        TripRecord(
            order_id=i, user_id=i % 40, bike_id=i % 60, bike_type=1,
            start_time=T0 + timedelta(seconds=30 * i),
            start=Point(*rng.uniform(0.0, PLANE, 2)),
            end=Point(*rng.uniform(0.0, PLANE, 2)),
            battery=float(rng.uniform(0.1, 1.0)),
        )
        for i in range(n)
    ]


def build_city(n_shards, directory, seed=0):
    plan = ShardPlan.from_bounds(
        BoundingBox(0.0, 0.0, PLANE, PLANE), n_shards
    )
    anchors = [
        Point(float(x), float(y))
        for x in (0, 667, 1333, 2000)
        for y in (0, 667, 1333, 2000)
    ]
    historical = np.random.default_rng(seed).uniform(0.0, PLANE, size=(300, 2))
    guard = GuardConfig(
        validation=ValidationConfig(
            bounds=BoundingBox(-100.0, -100.0, PLANE + 100.0, PLANE + 100.0),
            max_backwards_s=3600.0,
        ),
        lateness_s=600.0,
    )
    return ShardedRuntime(
        plan, directory, anchors, historical, seed=seed, guard=guard,
    )


def _assert_parity(city, trips, outcome, tmp):
    """Every fleet shard vs its standalone oracle — outcomes AND journal
    bytes.  Runs outside the timed region; raises on any divergence."""
    buckets = ShardRouter(city.plan).split_trips(trips)
    by_id = {r.shard_id: r for r in outcome.reports}
    for sid in range(city.plan.n_shards):
        if not buckets[sid]:
            continue
        oracle = build_shard_runtime(city.spec(sid), tmp / f"oracle-{sid}")
        expected = oracle.serve(buckets[sid])
        oracle.close()
        if by_id[sid].outcomes != tuple(expected):
            raise AssertionError(
                f"shard {sid} outcomes diverged from its standalone oracle"
            )
        fleet = (
            Path(city.directory) / f"shard-{sid:03d}" / "journal.jsonl"
        ).read_bytes()
        want = (tmp / f"oracle-{sid}" / "journal.jsonl").read_bytes()
        if fleet != want:
            raise AssertionError(
                f"shard {sid} journal bytes diverged from its standalone oracle"
            )


def run_shard_scaling(shard_sweep=SHARD_SWEEP, n_trips=6_000, seed=0):
    """Serve the same stream at every shard count; assert oracle parity
    at each point before accepting its timing."""
    trips = make_trips(n_trips, seed=seed)
    sweep = []
    baseline_seconds = None
    for n_shards in shard_sweep:
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            city = build_city(n_shards, tmp / "city", seed=seed)
            start = time.perf_counter()
            outcome = city.serve(trips, workers=n_shards)
            elapsed = time.perf_counter() - start
            _assert_parity(city, trips, outcome, tmp)
            if baseline_seconds is None:
                baseline_seconds = elapsed
            sweep.append(
                {
                    "shards": n_shards,
                    "workers": n_shards,
                    "seconds": elapsed,
                    "speedup": baseline_seconds / elapsed,
                    "efficiency": baseline_seconds / elapsed / n_shards,
                    "trips_per_sec": n_trips / elapsed,
                    "served": outcome.served,
                    "deadlettered": outcome.deadlettered,
                    "referrals": len(outcome.referrals),
                }
            )
    return {
        "benchmark": "geo-sharded fleet serve, shards == workers",
        "trips": n_trips,
        "parity": (
            "per-shard outcomes and journal bytes identical to standalone "
            "oracles at every sweep point (oracles untimed)"
        ),
        "sweep": sweep,
    }


def run_supervision_overhead(n_trips=2_000, n_shards=2, seed=0):
    """Fault-free supervised serve vs the plain fleet: the watchdog and
    post-epoch scrub must cost little and change nothing (journal bytes
    identical shard by shard)."""
    trips = make_trips(n_trips, seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        plain = build_city(n_shards, tmp / "plain", seed=seed)
        start = time.perf_counter()
        plain.serve(trips)
        plain_seconds = time.perf_counter() - start

        supervised = build_city(n_shards, tmp / "supervised", seed=seed)
        supervisor = FleetSupervisor(supervised, config=SupervisorConfig())
        start = time.perf_counter()
        outcome = supervisor.serve(trips)
        supervised_seconds = time.perf_counter() - start

        if outcome.restarts or outcome.quarantined:
            raise AssertionError("fault-free supervised run restarted")
        for sid in range(n_shards):
            name = f"shard-{sid:03d}/journal.jsonl"
            if (tmp / "supervised" / name).read_bytes() != (
                tmp / "plain" / name
            ).read_bytes():
                raise AssertionError(f"supervised journal diverged: {name}")
    return {
        "benchmark": "fault-free supervised serve vs plain fleet",
        "trips": n_trips,
        "shards": n_shards,
        "plain_seconds": plain_seconds,
        "supervised_seconds": supervised_seconds,
        "overhead": supervised_seconds / plain_seconds - 1.0,
        "parity": "journal bytes identical shard by shard",
    }


def run_full_report(shard_sweep=SHARD_SWEEP):
    cores = usable_cores()
    scaling = run_shard_scaling(shard_sweep)
    supervision = run_supervision_overhead()
    at_gate = next(
        (row for row in scaling["sweep"] if row["shards"] == GATE_SHARDS), None
    )
    gate_enforced = cores >= MIN_GATE_CORES
    return {
        "host": {
            "cpu_count": os.cpu_count(),
            "usable_cores": cores,
        },
        "scaling": scaling,
        "supervision": supervision,
        "gates": {
            "parity": "ok (asserted at every sweep point)",
            "required_speedup_at_4_shards": GATE_SPEEDUP,
            "measured_speedup_at_4_shards": at_gate["speedup"] if at_gate else None,
            "enforced": gate_enforced,
            "verdict": (
                ("pass" if at_gate and at_gate["speedup"] >= GATE_SPEEDUP else "fail")
                if gate_enforced
                else f"skipped: host exposes {cores} usable core(s); the "
                f"wall-clock gate needs >= {MIN_GATE_CORES} to be measurable"
            ),
        },
    }


def write_report(report, path=BENCH_JSON):
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def _print_report(report):
    scaling = report["scaling"]
    print(f"{scaling['benchmark']}:")
    print(f"{'shards':>7} {'seconds':>9} {'speedup':>8} {'trips/s':>10} {'refer':>6}")
    for row in scaling["sweep"]:
        print(
            f"{row['shards']:>7} {row['seconds']:>9.3f} {row['speedup']:>7.2f}x "
            f"{row['trips_per_sec']:>10,.0f} {row['referrals']:>6}"
        )
    supervision = report.get("supervision")
    if supervision:
        print(
            f"supervision overhead (fault-free, {supervision['shards']} shards): "
            f"{supervision['overhead']:+.1%} "
            f"({supervision['supervised_seconds']:.3f}s vs "
            f"{supervision['plain_seconds']:.3f}s)"
        )
    gates = report["gates"]
    print(
        f"gate: >= {gates['required_speedup_at_4_shards']}x at {GATE_SHARDS} "
        f"shards -> {gates['verdict']}"
    )


# ----------------------------------------------------------------------
# pytest entry point (pytest benchmarks/) — parity-gated, modest sizes.
def test_shard_scaling_parity_smoke():
    """Every fleet shard matches its standalone oracle bit for bit."""
    report = run_shard_scaling(shard_sweep=(1, 2), n_trips=400)
    assert all(row["seconds"] > 0 for row in report["sweep"])
    assert all(row["served"] > 0 for row in report["sweep"])


def test_supervision_overhead_smoke():
    """A fault-free supervised run changes nothing (parity asserted
    inside the helper)."""
    report = run_supervision_overhead(n_trips=300)
    assert report["supervised_seconds"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale subset for CI (1/2-shard sweep, parity gates only)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        scaling = run_shard_scaling(shard_sweep=(1, 2), n_trips=600)
        _print_report({
            "scaling": scaling,
            "supervision": run_supervision_overhead(n_trips=400),
            "gates": {
                "required_speedup_at_4_shards": GATE_SPEEDUP,
                "verdict": "skipped (smoke: parity only)",
            },
        })
        print("parity OK (every shard bit-identical to its standalone oracle)")
        return 0
    report = run_full_report()
    path = write_report(report)
    _print_report(report)
    print(f"wrote {path}")
    if report["gates"]["verdict"] == "fail":
        print(
            f"FAIL: sharded serve only "
            f"{report['gates']['measured_speedup_at_4_shards']:.2f}x serial "
            f"at {GATE_SHARDS} shards (gate {GATE_SPEEDUP}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
