"""Extension bench — multi-operator scheduling vs the single-operator tour.

Section V-E's closing suggestion: "schedule the operators more frequently
during rush hours to the low-energy demand sites."  Splitting the demand
sites among k operators leaves the service cost unchanged but cuts the
quadratic delay term by ~k and the makespan by ~k — quantified here on a
realistic site layout.
"""

import numpy as np

from repro.energy import Fleet
from repro.experiments.reporting import ExperimentResult
from repro.experiments.table6_incentives import run_incentive_scenario
from repro.incentives import ChargingCostParams
from repro.routing import plan_multi_operator


def test_multi_operator_scheduling(benchmark):
    def run():
        # Realistic demand sites: the alpha=0 Tier-2 scenario's pre-tour map.
        scenario = run_incentive_scenario(0.0, seed=0, volume=1200)
        service = scenario.report.service
        sites = [scenario.stations[s] for s in service.served_stations]
        params = ChargingCostParams(service_cost=60.0, delay_cost=5.0)
        rows = []
        plans = {}
        for k in (1, 2, 3, 4):
            plan = plan_multi_operator(sites, k, params, np.random.default_rng(k))
            plans[k] = plan
            rows.append(
                [
                    k,
                    round(plan.service_cost, 0),
                    round(plan.delay_cost, 0),
                    round(plan.infrastructure_cost, 0),
                    plan.makespan_sites,
                    round(plan.total_travel_m / 1000, 1),
                ]
            )
        return ExperimentResult(
            "Extension: multi-operator scheduling",
            "k operators over the same charging demand sites",
            ["k", "service ($)", "delay ($)", "infra total ($)", "makespan (sites)", "travel (km)"],
            rows,
            extras={"plans": plans, "n_sites": len(sites)},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.to_text())
    plans = result.extras["plans"]
    assert plans[4].delay_cost < plans[2].delay_cost < plans[1].delay_cost
    assert plans[4].makespan_sites < plans[1].makespan_sites
    assert plans[4].service_cost == plans[1].service_cost
