"""Fig. 10 bench — total cost vs number of parking per random sub-area.

Shape assertion: averaged over windows, E-Sharing's totals hug the
offline frontier while Meyerson sits above and online k-means far above.
"""

from repro.experiments import run_fig10


def test_fig10_cost_vs_parking(run_once):
    result = run_once(run_fig10, seed=0, n_windows=8)
    means = result.extras["means"]
    assert means["offline"] <= means["esharing"] * 1.05
    assert means["esharing"] < means["meyerson"] * 1.05
    assert means["meyerson"] < means["online_kmeans"]
