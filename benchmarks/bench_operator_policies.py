"""Extension bench — operator site-selection policies under a tight shift.

When the shift cannot cover every demand site, which sites to take on is
a policy decision.  The bench pits the paper's implicit visit-everything
threshold policy against density triage and budget-aware coverage, on
the same fleet state, scoring bikes charged within the shift.
"""

import numpy as np

from repro.experiments.reporting import ExperimentResult
from repro.experiments.table6_incentives import _build_stations, N_BIKES
from repro.core import EsharingPlanner
from repro.energy import Fleet
from repro.incentives import ChargingCostParams
from repro.sim import (
    BudgetCoveragePolicy,
    ChargingOperator,
    OperatorConfig,
    ThresholdPolicy,
    TopDensityPolicy,
)


def _fresh_fleet(seed=0):
    anchor, historical, cost_fn, _ = _build_stations(seed, 1200)
    planner = EsharingPlanner(
        anchor.stations, cost_fn, historical, np.random.default_rng(seed + 11)
    )
    fleet = Fleet(planner.stations, n_bikes=N_BIKES, rng=np.random.default_rng(seed + 13))
    return fleet


def test_operator_policy_comparison(benchmark):
    def run():
        config = OperatorConfig(
            working_hours=2.0, travel_speed_kmh=12.0, service_time_h=0.25
        )
        params = ChargingCostParams(service_cost=60.0)
        policies = {
            "threshold (visit all)": ThresholdPolicy(min_bikes=1),
            "top-density triage": TopDensityPolicy(max_sites=7),
            "budget coverage": BudgetCoveragePolicy(
                budget_hours=2.0, travel_speed_kmh=12.0, service_time_h=0.25
            ),
        }
        rows = []
        in_shift = {}
        for name, policy in policies.items():
            fleet = _fresh_fleet()
            report = ChargingOperator(params, config, policy=policy).service_period(fleet)
            in_shift[name] = report.bikes_charged_in_shift
            rows.append(
                [
                    name,
                    report.stations_served,
                    report.bikes_charged_in_shift,
                    round(report.percent_charged, 1),
                    round(report.service_cost + report.delay_cost, 0),
                ]
            )
        return ExperimentResult(
            "Extension: operator policies",
            "site-selection policies under a 2 h shift",
            ["policy", "sites owned", "charged in shift", "% charged", "infra cost ($)"],
            rows,
            extras={"in_shift": in_shift},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.to_text())
    x = result.extras["in_shift"]
    assert x["top-density triage"] >= x["threshold (visit all)"], (
        "density triage must charge at least as many bikes within the shift"
    )
    assert x["budget coverage"] >= x["threshold (visit all)"]
