"""Fig. 4 bench — offline 1.61-factor vs Meyerson on 100 uniform arrivals.

Paper's instance: offline ~5 stations / total 41795 m; Meyerson ~9
stations / 65400 m (+56%).  The shape assertion: Meyerson opens more and
costs more.
"""

from repro.experiments import run_fig4


def test_fig4_offline_vs_meyerson(run_once):
    result = run_once(run_fig4, seed=0, trials=20)
    offline = result.row_by("algorithm", "offline")
    meyerson = result.row_by("algorithm", "meyerson")
    assert meyerson[1] > offline[1], "Meyerson must open more parking"
    assert meyerson[4] > offline[4] * 1.2, "Meyerson total must be well above offline"
