"""Extension bench — adaptive incentive levels (Section IV-C Remarks).

The paper sets alpha by hand per regime and notes the operator should
raise it when nobody accepts.  The adaptive controller automates that
loop; the bench pits a fixed low alpha against the controller on a
reluctant rider population and checks the controller recovers the
relocations the fixed level forfeits.
"""

import numpy as np

from repro.energy import Fleet
from repro.experiments.reporting import ExperimentResult
from repro.geo import Point
from repro.incentives import (
    AdaptiveAlphaController,
    ChargingCostParams,
    IncentiveConfig,
    IncentiveMechanism,
    UserPopulation,
)


def _run_mechanism(alpha_controller, alpha, seed=0, offers=400):
    stations = [Point(500.0 * (i % 4), 500.0 * (i // 4)) for i in range(12)]
    fleet = Fleet(stations, n_bikes=240, rng=np.random.default_rng(seed))
    mech = IncentiveMechanism(
        fleet,
        ChargingCostParams(service_cost=60.0),
        config=IncentiveConfig(alpha=alpha, position_cap=10),
        population=UserPopulation(
            walk_mean=700.0, walk_std=200.0, reward_mean=8.0, reward_std=3.0
        ),
        rng=np.random.default_rng(seed + 1),
        alpha_controller=alpha_controller,
    )
    rng = np.random.default_rng(seed + 2)
    for _ in range(offers):
        origin = int(rng.integers(len(stations)))
        dest = int(rng.integers(len(stations)))
        if origin == dest:
            continue
        mech.offer_ride(origin, dest, stations[dest])
    return mech


def test_adaptive_alpha_recovers_cooperation(benchmark):
    def run():
        fixed = _run_mechanism(None, alpha=0.1)
        ctrl = AdaptiveAlphaController(
            alpha=0.1, window=25, target_acceptance=0.4, step=1.3, alpha_max=0.95
        )
        adaptive = _run_mechanism(ctrl, alpha=0.1)
        rows = [
            ["fixed alpha=0.1", fixed.offers_accepted,
             round(fixed.total_incentives_paid, 0), "0.10"],
            ["adaptive", adaptive.offers_accepted,
             round(adaptive.total_incentives_paid, 0), f"{ctrl.alpha:.2f}"],
        ]
        return ExperimentResult(
            "Extension: adaptive alpha",
            "fixed low alpha vs the acceptance-targeting controller",
            ["mechanism", "relocations", "incentives ($)", "final alpha"],
            rows,
            extras={"fixed": fixed, "adaptive": adaptive, "controller": ctrl},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.to_text())
    fixed = result.extras["fixed"]
    adaptive = result.extras["adaptive"]
    ctrl = result.extras["controller"]
    assert adaptive.offers_accepted > fixed.offers_accepted, (
        "the controller must recover relocations a stingy fixed alpha loses"
    )
    assert ctrl.alpha > 0.1, "alpha must have been raised"
    assert ctrl.alpha <= 0.95, "alpha stays inside the budget-safe band"
