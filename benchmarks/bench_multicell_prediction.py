"""Extension bench — spatially-resolved prediction for the Table V anchor.

Table V's "E-sharing (predicted)" scales the historical per-cell shares
by a total-volume LSTM forecast.  The shared-weight multi-cell LSTM
forecasts every cell directly; this bench compares the two predicted
anchors against the actual-demand anchor on the same instance.
"""

import numpy as np

from repro.core import DemandPoint, evaluate_placement, offline_placement
from repro.experiments.reporting import ExperimentResult
from repro.experiments.table5_plp_comparison import build_instance
from repro.forecast import LstmConfig, MultiCellForecaster


def test_multicell_vs_share_scaled_anchor(benchmark):
    def run():
        inst = build_instance(seed=0, volume=1200)
        grid = inst.grid
        cost_fn = inst.facility_cost

        # Per-cell hourly matrix from the historical sample.
        hist = inst.historical_sample
        # Rebuild an hourly per-cell matrix: the instance keeps only the
        # pooled destination sample, so synthesise hours by slicing the
        # sample into 24-chunk "days" deterministically.
        n = hist.shape[0]
        hours = max(48, (n // 200) * 24)
        per_hour = max(1, n // hours)
        matrix = np.zeros((hours, len(grid)))
        for h in range(hours):
            chunk = hist[h * per_hour : (h + 1) * per_hour]
            for x, y in chunk:
                from repro.geo import Point

                cell = grid.cell_of(grid.box.clamp(Point(float(x), float(y))))
                matrix[h, cell.row * grid.n_cols + cell.col] += 1.0

        model = MultiCellForecaster(
            LstmConfig(lookback=12, hidden_size=12, n_layers=1, epochs=6,
                       batch_size=512, seed=0)
        ).fit(matrix)
        predicted = model.forecast(matrix, 24).sum(axis=0)
        demands_mc = [
            DemandPoint(grid.centroid(cell), max(float(predicted[cell.row * grid.n_cols + cell.col]), 1e-9))
            for cell in grid.cells()
            if predicted[cell.row * grid.n_cols + cell.col] > 0.5
        ]

        anchor_actual = offline_placement(inst.historical_demands, cost_fn)
        anchor_share = offline_placement(inst.predicted_demands, cost_fn)
        anchor_mc = offline_placement(demands_mc, cost_fn)

        rows = []
        totals = {}
        for name, anchor in (
            ("actual-history anchor", anchor_actual),
            ("share-scaled prediction", anchor_share),
            ("multi-cell prediction", anchor_mc),
        ):
            scored = evaluate_placement(inst.test_demands, anchor.stations, cost_fn)
            totals[name] = scored.total
            rows.append([name, anchor.n_stations, round(scored.total / 1000, 1)])
        return ExperimentResult(
            "Extension: predicted anchors",
            "anchor quality on the actual test demand, per prediction method",
            ["anchor", "# stations", "test-day total (km)"],
            rows,
            extras={"totals": totals},
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(result.to_text())
    totals = result.extras["totals"]
    reference = totals["actual-history anchor"]
    assert totals["multi-cell prediction"] < reference * 1.6, (
        "the spatially-resolved anchor must stay near the actual-history anchor"
    )
    assert totals["share-scaled prediction"] < reference * 1.6
