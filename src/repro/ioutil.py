"""Durable file I/O: atomic writes and content checksums.

Every file the system must be able to trust after a crash — checkpoint
snapshots, the trip journal's rotation target, CSV exports, event-log
dumps — goes through :func:`atomic_write_bytes`: write to a temporary
sibling, flush, ``fsync``, then ``os.replace`` onto the final name.  On
POSIX the rename is atomic, so a reader can never observe a
partially-written file under the final path; a crash mid-write leaves
only a ``*.tmp-*`` sibling that the next writer ignores.

Checksums use SHA-256; :func:`checksum_hex` is the single definition the
snapshot and journal formats both embed.

Every durable write and fsync funnels through a module-level **fault
seam** (:func:`fs_write` / :func:`fs_fsync`): a passthrough by default,
but :func:`install_fs_seam` lets the storage fault injector
(:class:`repro.resilience.faultfs.FaultFS`) interpose deterministic
``ENOSPC``, torn writes and fsync failures without monkey-patching the
callers.  Production code never installs a seam; the passthrough adds
one function call per write.
"""

from __future__ import annotations

import hashlib
import os
import uuid
from pathlib import Path
from typing import IO, Iterable, List, Union

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "checksum_hex",
    "checksum_hex_many",
    "fsync_dir",
    "fs_write",
    "fs_fsync",
    "install_fs_seam",
    "rotate_file",
]


class _PassthroughFS:
    """Default seam: real writes, real fsyncs, no bookkeeping."""

    def write(self, fh: IO, data, path: Path) -> None:
        fh.write(data)

    def fsync(self, fileno: int, path: Path) -> None:
        os.fsync(fileno)


_FS = _PassthroughFS()


def install_fs_seam(seam) -> object:
    """Install a write/fsync interposer; returns the previous seam.

    The seam object must expose ``write(fh, data, path)`` and
    ``fsync(fileno, path)``.  Passing ``None`` restores the passthrough.
    Callers are expected to restore the previous seam when done (the
    fault injector's context manager does this), because the seam is
    process-global: every durable write in the process flows through it.
    """
    global _FS
    previous = _FS
    _FS = seam if seam is not None else _PassthroughFS()
    return previous


def fs_write(fh: IO, data, path: Union[str, Path]) -> None:
    """Write ``data`` (bytes or str, matching the handle's mode) to an
    open handle through the installed fault seam."""
    _FS.write(fh, data, Path(path))


def fs_fsync(fileno: int, path: Union[str, Path]) -> None:
    """``os.fsync`` through the installed fault seam."""
    _FS.fsync(fileno, Path(path))


def checksum_hex(data: bytes) -> str:
    """SHA-256 hex digest of ``data`` — the checkpoint/journal checksum."""
    return hashlib.sha256(data).hexdigest()


def checksum_hex_many(blobs: Iterable[bytes], prefix_len: int = 64) -> List[str]:
    """SHA-256 hex prefixes of many payloads in one tight pass.

    Matches ``[checksum_hex(b)[:prefix_len] for b in blobs]`` character
    for character, but hoists the constructor lookup out of the
    per-record path and hexes only ``ceil(prefix_len / 2)`` digest bytes
    per blob instead of all 32.  The blocked journal append uses it to
    stamp a whole group commit's line checksums in one pass.

    Raises:
        ValueError: if ``prefix_len`` is outside ``[1, 64]``.
    """
    if not 1 <= prefix_len <= 64:
        raise ValueError(f"prefix_len out of range: {prefix_len}")
    sha = hashlib.sha256
    nbytes = (prefix_len + 1) // 2
    return [sha(b).digest()[:nbytes].hex()[:prefix_len] for b in blobs]


def fsync_dir(directory: Union[str, Path]) -> None:
    """Flush a directory entry so a completed rename survives power loss.

    Best-effort: platforms without directory fsync (e.g. Windows) are
    silently tolerated — the rename itself is still atomic there.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Union[str, Path], data: bytes, durable: bool = True
) -> Path:
    """Write ``data`` to ``path`` via tmp + (fsync) + rename.

    Args:
        path: final destination; its parent must exist.
        data: full file contents.
        durable: also ``fsync`` the file and its directory, so the write
            survives power loss as well as process crash.  Tests disable
            this for speed — atomicity (no torn file under ``path``) is
            preserved either way.

    Returns:
        The destination as a :class:`~pathlib.Path`.

    Raises:
        OSError: on any filesystem failure; the temporary file is removed
            when possible and ``path`` is left untouched.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp-{uuid.uuid4().hex[:8]}")
    try:
        with open(tmp, "wb") as f:
            fs_write(f, data, tmp)
            f.flush()
            if durable:
                fs_fsync(f.fileno(), tmp)
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    if durable:
        fsync_dir(path.parent)
    return path


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    encoding: str = "utf-8",
    durable: bool = True,
) -> Path:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding), durable=durable)


def rotate_file(
    path: Union[str, Path],
    max_bytes: int,
    pending_bytes: int = 0,
    durable: bool = True,
) -> bool:
    """Size-capped log rotation: ``foo.jsonl`` → ``foo.1.jsonl``.

    When ``path`` exists and its size plus ``pending_bytes`` (the append
    about to happen) would exceed ``max_bytes``, the file is atomically
    renamed to its ``.1`` sibling — replacing any previous generation —
    so the caller can start a fresh file.  Returns whether a rotation
    happened.  A missing or empty file never rotates (a single oversized
    record still lands somewhere).

    Raises:
        ValueError: if ``max_bytes`` is not positive.
    """
    if max_bytes <= 0:
        raise ValueError(f"max_bytes must be positive, got {max_bytes}")
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError:
        return False
    if size == 0 or size + pending_bytes <= max_bytes:
        return False
    rotated = path.with_name(f"{path.stem}.1{path.suffix}")
    os.replace(path, rotated)
    if durable:
        fsync_dir(path.parent)
    return True
