"""Bootstrap confidence intervals for simulation and test statistics.

The paper reports point estimates (Table IV similarities, Table V/VI
costs).  A reproduction should also say how tight those numbers are:
:func:`bootstrap_ci` resamples any statistic of a sample, and
:func:`ks_similarity_ci` specialises it to the 2-D KS similarity used
throughout Tier 1.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from .ks2d import ks2d_fast

__all__ = ["bootstrap_ci", "ks_similarity_ci"]


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    rng: np.random.Generator,
    n_resamples: int = 1000,
    confidence: float = 0.95,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap confidence interval of ``statistic(sample)``.

    Args:
        sample: 1-D observations.
        statistic: reduces an array of observations to one number.
        rng: randomness for resampling.
        n_resamples: bootstrap replicates.
        confidence: central interval mass.

    Returns:
        ``(point_estimate, lower, upper)``.

    Raises:
        ValueError: on an empty sample, bad replicate count, or a
            confidence outside (0, 1).
    """
    arr = np.asarray(sample, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("empty sample")
    if n_resamples <= 0:
        raise ValueError(f"n_resamples must be positive, got {n_resamples}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    point = float(statistic(arr))
    replicates = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = arr[rng.integers(0, arr.size, size=arr.size)]
        replicates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(replicates, [alpha, 1.0 - alpha])
    return point, float(lower), float(upper)


def ks_similarity_ci(
    sample1: np.ndarray,
    sample2: np.ndarray,
    rng: np.random.Generator,
    n_resamples: int = 200,
    confidence: float = 0.95,
) -> Tuple[float, float, float]:
    """Bootstrap CI of the 2-D KS similarity between two samples.

    Both samples are resampled with replacement; each replicate's
    similarity is ``100 (1 - D)`` from the fast KS variant.

    Returns:
        ``(point_similarity, lower, upper)``.

    Raises:
        ValueError: on empty samples or bad parameters.
    """
    a = np.asarray(sample1, dtype=float)
    b = np.asarray(sample2, dtype=float)
    if a.ndim != 2 or a.shape[1] != 2 or b.ndim != 2 or b.shape[1] != 2:
        raise ValueError("samples must be (n, 2) arrays")
    if a.shape[0] == 0 or b.shape[0] == 0:
        raise ValueError("empty sample")
    if n_resamples <= 0:
        raise ValueError(f"n_resamples must be positive, got {n_resamples}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    point = ks2d_fast(a, b).similarity
    replicates = np.empty(n_resamples)
    for i in range(n_resamples):
        ra = a[rng.integers(0, a.shape[0], size=a.shape[0])]
        rb = b[rng.integers(0, b.shape[0], size=b.shape[0])]
        replicates[i] = ks2d_fast(ra, rb).similarity
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(replicates, [alpha, 1.0 - alpha])
    return point, float(lower), float(upper)
