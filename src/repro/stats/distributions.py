"""Synthetic 2-D request distributions used by Section V-B (Fig. 9 / Table III).

The penalty-function evaluation draws ~200 requests per sector from three
families — *uniform*, *Poisson* (mid-range concentration) and *normal*
(aggregated around the origin / offline parking) — so the three penalty
types can be matched against increasing similarity between actual and
predicted requests.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..geo.points import Point

__all__ = [
    "sample_uniform",
    "sample_normal",
    "sample_poisson_ring",
    "REQUEST_DISTRIBUTIONS",
    "empirical_cdf_2d",
]


def sample_uniform(
    rng: np.random.Generator, n: int, extent: float = 1000.0
) -> List[Point]:
    """``n`` points uniform in the square ``[-extent, extent]^2``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    xy = rng.uniform(-extent, extent, size=(n, 2))
    return [Point(float(x), float(y)) for x, y in xy]


def sample_normal(
    rng: np.random.Generator, n: int, sigma: float = 250.0
) -> List[Point]:
    """``n`` points from an isotropic Gaussian centred at the origin.

    Models requests aggregating around the offline-derived parking — the
    "very similar" regime where Type II penalties win (Table III).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    xy = rng.normal(0.0, sigma, size=(n, 2))
    return [Point(float(x), float(y)) for x, y in xy]


def sample_poisson_ring(
    rng: np.random.Generator, n: int, rate: float = 3.0, scale: float = 150.0
) -> List[Point]:
    """``n`` points with Poisson-distributed radial distance from origin.

    Radii are ``scale * (Poisson(rate) + U[0,1))`` with uniform angles,
    concentrating requests in the mid-range from the origin — the regime
    where Type III penalties win (Table III).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    radii = scale * (rng.poisson(rate, size=n) + rng.uniform(0.0, 1.0, size=n))
    angles = rng.uniform(0.0, 2.0 * np.pi, size=n)
    return [
        Point(float(r * np.cos(a)), float(r * np.sin(a)))
        for r, a in zip(radii, angles)
    ]


REQUEST_DISTRIBUTIONS: Dict[str, Callable[..., List[Point]]] = {
    "uniform": sample_uniform,
    "poisson": sample_poisson_ring,
    "normal": sample_normal,
}
"""Name -> sampler registry used by the Table III experiment."""


def empirical_cdf_2d(points: np.ndarray, x: float, y: float) -> float:
    """Empirical CDF value ``P(X < x, Y < y)`` of a 2-D sample."""
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) sample, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("empty sample")
    return float(np.count_nonzero((arr[:, 0] < x) & (arr[:, 1] < y))) / arr.shape[0]
