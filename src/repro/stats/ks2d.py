"""Peacock's two-dimensional Kolmogorov–Smirnov test.

Algorithm 2 periodically compares the live destination distribution with
the historical one: ``D = sup_{x,y} |H(x,y) - G(x,y)|`` (Eq. 9).  Peacock's
construction makes the 2-D statistic distribution-free by evaluating all
four quadrant orientations ``(x<X, y<Y), (x<X, y>Y), (x>X, y<Y),
(x>X, y>Y)`` at every data point and taking the largest discrepancy.  The
paper reports ``O(n^3)`` time for the exact enumeration over the
``O(n^2)`` candidate quadrant corners; :func:`ks2d_peacock` implements that
exact version (vectorised), and :func:`ks2d_fast` the common
Fasano–Franceschini restriction to the ``O(n)`` observed points.

The similarity percentage of Table IV is ``100 * (1 - D)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["KSResult", "ks2d_peacock", "ks2d_fast", "similarity_percent"]


@dataclass(frozen=True)
class KSResult:
    """Outcome of a 2-D KS comparison.

    Attributes:
        statistic: the supremum distance ``D`` in [0, 1].
        n1: first sample size.
        n2: second sample size.
        p_value: approximate significance from Peacock's asymptotic formula.
    """

    statistic: float
    n1: int
    n2: int
    p_value: float

    @property
    def similarity(self) -> float:
        """Similarity percentage ``100 * (1 - D)`` as in Table IV."""
        return 100.0 * (1.0 - self.statistic)


def _as_xy(sample: Sequence) -> np.ndarray:
    arr = np.asarray(sample, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) sample, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("empty sample")
    return arr


def _quadrant_fractions(data: np.ndarray, x: float, y: float) -> np.ndarray:
    """Fractions of ``data`` in the four open quadrants around ``(x, y)``."""
    lx = data[:, 0] < x
    ly = data[:, 1] < y
    n = data.shape[0]
    return np.array(
        [
            np.count_nonzero(lx & ly),
            np.count_nonzero(lx & ~ly),
            np.count_nonzero(~lx & ly),
            np.count_nonzero(~lx & ~ly),
        ],
        dtype=float,
    ) / n


def _max_quadrant_gap(a: np.ndarray, b: np.ndarray, xs: np.ndarray, ys: np.ndarray) -> float:
    """Max over candidate corners of the max quadrant-probability gap.

    For each corner we compare, per quadrant, the empirical probabilities
    of the two samples; vectorised over all corners at once.
    """
    # Broadcast: corners (m,), points (n,) -> (m, n) boolean tables.
    ax_lt = a[:, 0][None, :] < xs[:, None]
    ay_lt = a[:, 1][None, :] < ys[:, None]
    bx_lt = b[:, 0][None, :] < xs[:, None]
    by_lt = b[:, 1][None, :] < ys[:, None]
    na, nb = a.shape[0], b.shape[0]
    best = 0.0
    for qx, qy in ((True, True), (True, False), (False, True), (False, False)):
        fa = np.count_nonzero((ax_lt == qx) & (ay_lt == qy), axis=1) / na
        fb = np.count_nonzero((bx_lt == qx) & (by_lt == qy), axis=1) / nb
        gap = float(np.max(np.abs(fa - fb)))
        best = max(best, gap)
    return best


def _peacock_pvalue(d: float, n1: int, n2: int) -> float:
    """Asymptotic significance of ``d`` (Peacock 1983, Eq. 14-style).

    Uses the 1-D Kolmogorov distribution with the Peacock small-sample
    correction; adequate for the "similar vs dissimilar" thresholds the
    online algorithm needs (it never uses p to machine precision).
    """
    n_eff = n1 * n2 / (n1 + n2)
    if d <= 0:
        return 1.0
    # Peacock suggests Z with a dimensional correction factor.
    z = d * math.sqrt(n_eff)
    zc = z / (1.0 + math.sqrt(1.0 - 0.53 * n_eff**-0.9)) * 2.0
    # One-dimensional Kolmogorov Q-function on the corrected statistic.
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * zc * zc / 4.0)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(1.0, max(0.0, total)))


def ks2d_peacock(sample1: Sequence, sample2: Sequence, max_grid: int = 64) -> KSResult:
    """Exact-style Peacock 2-D two-sample KS test.

    Candidate quadrant corners are the Cartesian product of the pooled
    x-coordinates and pooled y-coordinates, exactly as Peacock prescribes.
    To bound the cubic cost on large samples, each coordinate axis is
    subsampled to at most ``max_grid`` quantile levels — with ``max_grid``
    >= sqrt(n) this is exact for small samples and a tight lower bound
    otherwise.

    Args:
        sample1: ``(n1, 2)`` array-like of (x, y) points.
        sample2: ``(n2, 2)`` array-like.
        max_grid: per-axis cap on corner candidates.

    Returns:
        :class:`KSResult` with statistic ``D`` in [0, 1].
    """
    a = _as_xy(sample1)
    b = _as_xy(sample2)
    pooled = np.vstack([a, b])
    xs = np.unique(pooled[:, 0])
    ys = np.unique(pooled[:, 1])
    if xs.size > max_grid:
        xs = np.quantile(xs, np.linspace(0.0, 1.0, max_grid))
    if ys.size > max_grid:
        ys = np.quantile(ys, np.linspace(0.0, 1.0, max_grid))
    # Evaluate every (x, y) corner combination in manageable row blocks.
    best = 0.0
    grid_x, grid_y = np.meshgrid(xs, ys)
    corners_x = grid_x.ravel()
    corners_y = grid_y.ravel()
    block = 2048
    for start in range(0, corners_x.size, block):
        cx = corners_x[start : start + block]
        cy = corners_y[start : start + block]
        best = max(best, _max_quadrant_gap(a, b, cx, cy))
    return KSResult(best, a.shape[0], b.shape[0], _peacock_pvalue(best, a.shape[0], b.shape[0]))


def ks2d_fast(sample1: Sequence, sample2: Sequence) -> KSResult:
    """Fasano–Franceschini variant: corners restricted to observed points.

    An ``O(n^2)`` approximation of Peacock's statistic that is standard
    practice and never underestimates badly; used by the online algorithm
    when called at high frequency.
    """
    a = _as_xy(sample1)
    b = _as_xy(sample2)
    best = 0.0
    for data in (a, b):
        best = max(best, _max_quadrant_gap(a, b, data[:, 0], data[:, 1]))
    return KSResult(best, a.shape[0], b.shape[0], _peacock_pvalue(best, a.shape[0], b.shape[0]))


def similarity_percent(sample1: Sequence, sample2: Sequence, exact: bool = False) -> float:
    """Similarity ``100(1 - D)`` between two 2-D samples (Table IV)."""
    result = ks2d_peacock(sample1, sample2) if exact else ks2d_fast(sample1, sample2)
    return result.similarity
