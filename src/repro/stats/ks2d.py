"""Peacock's two-dimensional Kolmogorov–Smirnov test.

Algorithm 2 periodically compares the live destination distribution with
the historical one: ``D = sup_{x,y} |H(x,y) - G(x,y)|`` (Eq. 9).  Peacock's
construction makes the 2-D statistic distribution-free by evaluating all
four quadrant orientations ``(x<X, y<Y), (x<X, y>Y), (x>X, y<Y),
(x>X, y>Y)`` at every data point and taking the largest discrepancy.  The
paper reports ``O(n^3)`` time for the exact enumeration over the
``O(n^2)`` candidate quadrant corners; :func:`ks2d_peacock` implements that
exact version (vectorised), and :func:`ks2d_fast` the common
Fasano–Franceschini restriction to the ``O(n)`` observed points.

The similarity percentage of Table IV is ``100 * (1 - D)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "KSResult",
    "ks2d_peacock",
    "ks2d_fast",
    "similarity_percent",
    "CachedKS2D",
    "LiveWindow",
]


@dataclass(frozen=True)
class KSResult:
    """Outcome of a 2-D KS comparison.

    Attributes:
        statistic: the supremum distance ``D`` in [0, 1].
        n1: first sample size.
        n2: second sample size.
        p_value: approximate significance from Peacock's asymptotic formula.
    """

    statistic: float
    n1: int
    n2: int
    p_value: float

    @property
    def similarity(self) -> float:
        """Similarity percentage ``100 * (1 - D)`` as in Table IV."""
        return 100.0 * (1.0 - self.statistic)


def _as_xy(sample: Sequence) -> np.ndarray:
    arr = np.asarray(sample, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) sample, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError("empty sample")
    return arr


def _quadrant_fractions(data: np.ndarray, x: float, y: float) -> np.ndarray:
    """Fractions of ``data`` in the four open quadrants around ``(x, y)``."""
    lx = data[:, 0] < x
    ly = data[:, 1] < y
    n = data.shape[0]
    return np.array(
        [
            np.count_nonzero(lx & ly),
            np.count_nonzero(lx & ~ly),
            np.count_nonzero(~lx & ly),
            np.count_nonzero(~lx & ~ly),
        ],
        dtype=float,
    ) / n


def _max_quadrant_gap(a: np.ndarray, b: np.ndarray, xs: np.ndarray, ys: np.ndarray) -> float:
    """Max over candidate corners of the max quadrant-probability gap.

    For each corner we compare, per quadrant, the empirical probabilities
    of the two samples; vectorised over all corners at once.
    """
    # Broadcast: corners (m,), points (n,) -> (m, n) boolean tables.
    ax_lt = a[:, 0][None, :] < xs[:, None]
    ay_lt = a[:, 1][None, :] < ys[:, None]
    bx_lt = b[:, 0][None, :] < xs[:, None]
    by_lt = b[:, 1][None, :] < ys[:, None]
    na, nb = a.shape[0], b.shape[0]
    best = 0.0
    for qx, qy in ((True, True), (True, False), (False, True), (False, False)):
        fa = np.count_nonzero((ax_lt == qx) & (ay_lt == qy), axis=1) / na
        fb = np.count_nonzero((bx_lt == qx) & (by_lt == qy), axis=1) / nb
        gap = float(np.max(np.abs(fa - fb)))
        best = max(best, gap)
    return best


def _peacock_pvalue(d: float, n1: int, n2: int) -> float:
    """Asymptotic significance of ``d`` (Peacock 1983, Eq. 14-style).

    Uses the 1-D Kolmogorov distribution with the Peacock small-sample
    correction; adequate for the "similar vs dissimilar" thresholds the
    online algorithm needs (it never uses p to machine precision).
    """
    n_eff = n1 * n2 / (n1 + n2)
    if d <= 0:
        return 1.0
    # Peacock suggests Z with a dimensional correction factor.
    z = d * math.sqrt(n_eff)
    zc = z / (1.0 + math.sqrt(1.0 - 0.53 * n_eff**-0.9)) * 2.0
    # One-dimensional Kolmogorov Q-function on the corrected statistic.
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * zc * zc / 4.0)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(1.0, max(0.0, total)))


def ks2d_peacock(sample1: Sequence, sample2: Sequence, max_grid: int = 64) -> KSResult:
    """Exact-style Peacock 2-D two-sample KS test.

    Candidate quadrant corners are the Cartesian product of the pooled
    x-coordinates and pooled y-coordinates, exactly as Peacock prescribes.
    To bound the cubic cost on large samples, each coordinate axis is
    subsampled to at most ``max_grid`` quantile levels — with ``max_grid``
    >= sqrt(n) this is exact for small samples and a tight lower bound
    otherwise.

    Args:
        sample1: ``(n1, 2)`` array-like of (x, y) points.
        sample2: ``(n2, 2)`` array-like.
        max_grid: per-axis cap on corner candidates.

    Returns:
        :class:`KSResult` with statistic ``D`` in [0, 1].
    """
    a = _as_xy(sample1)
    b = _as_xy(sample2)
    pooled = np.vstack([a, b])
    xs = np.unique(pooled[:, 0])
    ys = np.unique(pooled[:, 1])
    if xs.size > max_grid:
        xs = np.quantile(xs, np.linspace(0.0, 1.0, max_grid))
    if ys.size > max_grid:
        ys = np.quantile(ys, np.linspace(0.0, 1.0, max_grid))
    # Evaluate every (x, y) corner combination in manageable row blocks.
    best = 0.0
    grid_x, grid_y = np.meshgrid(xs, ys)
    corners_x = grid_x.ravel()
    corners_y = grid_y.ravel()
    block = 2048
    for start in range(0, corners_x.size, block):
        cx = corners_x[start : start + block]
        cy = corners_y[start : start + block]
        best = max(best, _max_quadrant_gap(a, b, cx, cy))
    return KSResult(best, a.shape[0], b.shape[0], _peacock_pvalue(best, a.shape[0], b.shape[0]))


def ks2d_fast(sample1: Sequence, sample2: Sequence) -> KSResult:
    """Fasano–Franceschini variant: corners restricted to observed points.

    An ``O(n^2)`` approximation of Peacock's statistic that is standard
    practice and never underestimates badly; used by the online algorithm
    when called at high frequency.
    """
    a = _as_xy(sample1)
    b = _as_xy(sample2)
    best = 0.0
    for data in (a, b):
        best = max(best, _max_quadrant_gap(a, b, data[:, 0], data[:, 1]))
    return KSResult(best, a.shape[0], b.shape[0], _peacock_pvalue(best, a.shape[0], b.shape[0]))


def similarity_percent(sample1: Sequence, sample2: Sequence, exact: bool = False) -> float:
    """Similarity ``100(1 - D)`` between two 2-D samples (Table IV)."""
    result = ks2d_peacock(sample1, sample2) if exact else ks2d_fast(sample1, sample2)
    return result.similarity


class _DominanceGrid:
    """Exact quadrant counts of a fixed 2-D sample, answered in O(log n).

    Points are mapped to rank space (their index among the sorted unique
    coordinates per axis) and a 2-D cumulative count grid is built once:
    ``cum[i, j]`` is the number of sample points with x-rank < ``i`` and
    y-rank < ``j``.  Any quadrant count around any corner then reduces to
    two ``searchsorted`` calls and four grid lookups — the counts are the
    same integers the brute-force boolean tables of
    :func:`ks2d_fast` produce, so the derived statistic is bit-identical.
    """

    def __init__(self, data: np.ndarray) -> None:
        self.n = data.shape[0]
        self._ux, x_rank = np.unique(data[:, 0], return_inverse=True)
        self._uy, y_rank = np.unique(data[:, 1], return_inverse=True)
        grid = np.zeros((self._ux.size + 1, self._uy.size + 1), dtype=np.int64)
        np.add.at(grid, (x_rank + 1, y_rank + 1), 1)
        self._cum = grid.cumsum(axis=0).cumsum(axis=1)

    def quadrant_counts(self, xs: np.ndarray, ys: np.ndarray):
        """Per-corner point counts in the four strict/non-strict quadrants.

        Returns four arrays in the quadrant order of :func:`ks2d_fast`:
        ``(x<X, y<Y), (x<X, y>=Y), (x>=X, y<Y), (x>=X, y>=Y)``.
        """
        i = np.searchsorted(self._ux, xs, side="left")
        j = np.searchsorted(self._uy, ys, side="left")
        ll = self._cum[i, j]
        x_lt = self._cum[i, -1]
        y_lt = self._cum[-1, j]
        return ll, x_lt - ll, y_lt - ll, self.n - x_lt - y_lt + ll


class CachedKS2D:
    """Checkpoint-ready :func:`ks2d_fast` against a fixed reference sample.

    Algorithm 2 re-tests the live destination window against the *same*
    historical sample at every periodic checkpoint; :func:`ks2d_fast`
    re-derives both samples' quadrant tables from scratch each time,
    which is O((n1 + n2) * (n1 + n2)) per call.  This class sorts the
    historical sample once into a :class:`_DominanceGrid` (and caches the
    historical-side fractions at the historical corners, which never
    change), so each checkpoint costs O((n1 + n2) log n) plus one small
    grid build for the live window.

    :meth:`test` returns a :class:`KSResult` bit-identical to
    ``ks2d_fast(historical, live)`` — same statistic, same p-value.
    """

    def __init__(self, historical: Sequence) -> None:
        self._a = _as_xy(historical)
        self._grid_a = _DominanceGrid(self._a)
        self._counts_a_at_a = self._grid_a.quadrant_counts(
            self._a[:, 0], self._a[:, 1]
        )

    @property
    def historical(self) -> np.ndarray:
        """The cached reference sample (read-only view)."""
        return self._a

    def test(self, live: Sequence) -> KSResult:
        """KS comparison of ``live`` against the cached reference."""
        b = _as_xy(live)
        grid_b = _DominanceGrid(b)
        na, nb = self._a.shape[0], b.shape[0]
        counts_b_at_a = grid_b.quadrant_counts(self._a[:, 0], self._a[:, 1])
        counts_a_at_b = self._grid_a.quadrant_counts(b[:, 0], b[:, 1])
        counts_b_at_b = grid_b.quadrant_counts(b[:, 0], b[:, 1])
        best = 0.0
        for q in range(4):
            gap_a = np.max(np.abs(self._counts_a_at_a[q] / na - counts_b_at_a[q] / nb))
            gap_b = np.max(np.abs(counts_a_at_b[q] / na - counts_b_at_b[q] / nb))
            best = max(best, float(gap_a), float(gap_b))
        return KSResult(best, na, nb, _peacock_pvalue(best, na, nb))


class LiveWindow:
    """Reservoir-capped buffer of the last ``cap`` 2-D observations.

    The online algorithm's live window previously lived in a Python list
    with an O(window) ``pop(0)`` per arrival once full; this ring buffer
    makes every push O(1) and hands the KS test its ``(n, 2)`` array
    without rebuilding it from Python objects.

    Raises:
        ValueError: if the cap is not positive.
    """

    def __init__(self, cap: int) -> None:
        if cap <= 0:
            raise ValueError(f"cap must be positive, got {cap}")
        self._cap = cap
        self._buf = np.empty((cap, 2), dtype=float)
        self._n = 0
        self._head = 0

    def __len__(self) -> int:
        return self._n

    @property
    def cap(self) -> int:
        return self._cap

    def push(self, x: float, y: float) -> None:
        """Append one observation, evicting the oldest when full."""
        self._buf[self._head, 0] = x
        self._buf[self._head, 1] = y
        self._head = (self._head + 1) % self._cap
        if self._n < self._cap:
            self._n += 1

    def extend(self, points: np.ndarray) -> None:
        """Append ``(m, 2)`` observations in order (bulk, still O(m))."""
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        if pts.shape[0] >= self._cap:
            # Only the trailing cap observations survive.
            self._buf[:] = pts[-self._cap :]
            self._head = 0
            self._n = self._cap
            return
        first = min(pts.shape[0], self._cap - self._head)
        self._buf[self._head : self._head + first] = pts[:first]
        rest = pts.shape[0] - first
        if rest:
            self._buf[:rest] = pts[first:]
        self._head = (self._head + pts.shape[0]) % self._cap
        self._n = min(self._n + pts.shape[0], self._cap)

    def array(self) -> np.ndarray:
        """The current window, oldest first, as an ``(n, 2)`` copy."""
        if self._n < self._cap:
            return self._buf[: self._n].copy()
        return np.concatenate([self._buf[self._head :], self._buf[: self._head]])

    def state_dict(self) -> dict:
        """Checkpointable state: the cap and the logical window contents.

        The ring offset is *not* part of the logical state — a window
        rebuilt by pushing :meth:`array` back in observes and evicts in
        exactly the same order as the original.
        """
        return {"cap": self._cap, "data": self.array().tolist()}

    @classmethod
    def from_state(cls, state: dict) -> "LiveWindow":
        """Rebuild a window from :meth:`state_dict` output.

        Raises:
            ValueError: on a non-positive cap or malformed contents.
        """
        window = cls(int(state["cap"]))
        data = np.asarray(state["data"], dtype=float)
        if data.size:
            window.extend(data)
        return window
