"""Statistical testing — Peacock 2-D KS test and request distributions."""

from .ks2d import (
    CachedKS2D,
    KSResult,
    LiveWindow,
    ks2d_fast,
    ks2d_peacock,
    similarity_percent,
)
from .bootstrap import bootstrap_ci, ks_similarity_ci
from .distributions import (
    REQUEST_DISTRIBUTIONS,
    empirical_cdf_2d,
    sample_normal,
    sample_poisson_ring,
    sample_uniform,
)

__all__ = [
    "CachedKS2D",
    "KSResult",
    "LiveWindow",
    "ks2d_fast",
    "ks2d_peacock",
    "similarity_percent",
    "bootstrap_ci",
    "ks_similarity_ci",
    "REQUEST_DISTRIBUTIONS",
    "empirical_cdf_2d",
    "sample_normal",
    "sample_poisson_ring",
    "sample_uniform",
]
