"""Data-driven load generation for overload testing.

Seeded OD-matrix trip streams with routed waypoints and composable
surge scenarios, emitted as columnar
:class:`~repro.core.tripblock.TripBlock` batches — the exact shape the
guarded hot path ingests:

* :mod:`~repro.loadgen.odmatrix` — gravity-model OD rates, Poisson
  emission, rectilinear waypoint routing, low-value row marking;
* :mod:`~repro.loadgen.scenarios` — rate pulses and trip-side events
  (festival/stadium spikes, weather shutoffs, rush-hour waves) with a
  vectorized ``apply`` pinned bit-identical to its scalar oracle.

``python -m repro.loadgen`` runs the overload gauntlet: every named
scenario against a sharded fleet under admission control, with exact
shed/deferred/served accounting, ladder-recovery checks, and a
zero-overload byte-identity check against the uncontrolled runtime.
"""

from .odmatrix import ODConfig, ODMatrix, TripStream, WaypointRouter
from .scenarios import (
    SCENARIOS,
    RatePulse,
    ScenarioSchedule,
    ScheduledEvent,
    make_scenario,
)

__all__ = [
    "ODConfig",
    "ODMatrix",
    "WaypointRouter",
    "TripStream",
    "RatePulse",
    "ScheduledEvent",
    "ScenarioSchedule",
    "SCENARIOS",
    "make_scenario",
]
