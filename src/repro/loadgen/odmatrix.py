"""Seeded OD-matrix trip generation with routed waypoints.

The synthetic dataset tier draws destinations from static Gaussian
hotspots — fine for placement studies, useless for load testing: real
traffic is *origin→destination* structured, spatially skewed, and
bursty.  This module generates trips the way the BigContest-style
traffic simulators do:

1. the city plane is gridded into zones; a seeded **gravity model**
   (zone weight product decayed by distance) yields a zone-pair rate
   matrix in trips per second;
2. each emission step draws per-pair **Poisson** counts from the rate
   matrix (scaled by the active scenario's rate multipliers), places
   endpoints uniformly inside their zones, and timestamps them in
   sorted order within the step;
3. a **waypoint router** attaches a rectilinear two-leg route
   (origin → corner → destination) with a seeded detour stretch; the
   route length lands in the block's ``geodesic_m`` column, and
   :meth:`WaypointRouter.waypoints` reconstructs the polyline of any
   emitted trip.

Trips are emitted directly as columnar
:class:`~repro.core.tripblock.TripBlock` batches — the exact shape the
guarded hot path ingests — with a seeded fraction of rows marked as
**low-value** (``user_id < 0``: app pings, demo accounts, speculative
reservations).  These are what the overload shedder drops first.

Everything is driven by one root seed through ``SeedSequence.spawn``,
so a stream is exactly reproducible: same seed, same scenario, same
blocks, byte for byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..core.tripblock import TripBlock, datetime_to_us
from ..datasets.trips import TripRecord
from ..geo.points import BoundingBox
from .scenarios import ScenarioSchedule

__all__ = ["ODConfig", "ODMatrix", "WaypointRouter", "TripStream"]


@dataclass(frozen=True)
class ODConfig:
    """Shape of the generated traffic.

    Attributes:
        bounds: the city plane; all endpoints stay inside it.
        zones_per_side: the OD grid is ``zones_per_side²`` zones.
        trips_per_hour: city-wide baseline offered rate (scenario
            pulses multiply it locally or globally).
        step_s: emission step — one Poisson draw per zone pair per
            step, one block per step.
        hotspots: seeded attraction hotspots added to the zone weights
            (stadium districts, transit hubs).
        decay_m: exponential distance decay of the gravity model.
        low_value_fraction: fraction of rows marked synthetic/low-value
            (``user_id < 0``) — the shedder's priority class 0.
        detour_max: upper bound of the router's uniform detour stretch
            over the rectilinear route length.
        users / bikes: id spaces of the generated rows.

    Raises:
        ValueError: on non-positive sizes/rates or fractions outside
            ``[0, 1]``.
    """

    bounds: BoundingBox
    zones_per_side: int = 6
    trips_per_hour: float = 1200.0
    step_s: float = 60.0
    hotspots: int = 4
    decay_m: float = 1500.0
    low_value_fraction: float = 0.25
    detour_max: float = 0.2
    users: int = 10_000
    bikes: int = 4_000

    def __post_init__(self) -> None:
        if self.zones_per_side <= 0:
            raise ValueError(
                f"zones_per_side must be positive, got {self.zones_per_side}"
            )
        if self.trips_per_hour <= 0 or self.step_s <= 0:
            raise ValueError("trips_per_hour and step_s must be positive")
        if not 0.0 <= self.low_value_fraction <= 1.0:
            raise ValueError(
                f"low_value_fraction must be in [0, 1], got "
                f"{self.low_value_fraction}"
            )
        if self.detour_max < 0:
            raise ValueError(f"detour_max must be >= 0, got {self.detour_max}")
        if self.hotspots < 0 or self.decay_m <= 0:
            raise ValueError("hotspots must be >= 0 and decay_m positive")
        if self.users <= 0 or self.bikes <= 0:
            raise ValueError("users and bikes must be positive")


class ODMatrix:
    """Gravity-model zone-pair rate matrix over a seeded zone grid."""

    def __init__(self, config: ODConfig, seed=0) -> None:
        self.config = config
        b = config.bounds
        nz = config.zones_per_side
        width = b.max_x - b.min_x
        height = b.max_y - b.min_y
        xs = b.min_x + (np.arange(nz) + 0.5) * width / nz
        ys = b.min_y + (np.arange(nz) + 0.5) * height / nz
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        #: Zone centres, row-major over the grid.
        self.zone_x = gx.ravel()
        self.zone_y = gy.ravel()
        #: Half cell extents — endpoint jitter stays inside the zone.
        self.half_x = 0.5 * width / nz
        self.half_y = 0.5 * height / nz
        rng = np.random.default_rng(seed)
        weights = 0.4 + rng.uniform(0.0, 0.6, self.zone_x.size)
        scale = 0.12 * max(width, height)
        for _ in range(config.hotspots):
            cx = rng.uniform(b.min_x, b.max_x)
            cy = rng.uniform(b.min_y, b.max_y)
            strength = rng.uniform(1.0, 3.0)
            d2 = (self.zone_x - cx) ** 2 + (self.zone_y - cy) ** 2
            weights = weights + strength * np.exp(-d2 / (2.0 * scale * scale))
        dx = self.zone_x[:, None] - self.zone_x[None, :]
        dy = self.zone_y[:, None] - self.zone_y[None, :]
        gravity = (
            weights[:, None]
            * weights[None, :]
            * np.exp(-np.sqrt(dx * dx + dy * dy) / config.decay_m)
        )
        #: ``(Z, Z)`` trips/sec per (origin zone, destination zone).
        self.rates = gravity / gravity.sum() * (config.trips_per_hour / 3600.0)

    @property
    def n_zones(self) -> int:
        return int(self.zone_x.size)


class WaypointRouter:
    """Rectilinear two-leg routing: origin → corner → destination.

    The corner of trip ``i`` is chosen by parity of its order id (an
    even trip turns at ``(end_x, start_y)``, an odd one at
    ``(start_x, end_y)``), so :meth:`waypoints` reconstructs the
    polyline of any emitted trip without stored state.  The routed
    length is the Manhattan distance times a seeded detour stretch in
    ``[1, 1 + detour_max)`` — the stretch of an emitted trip is
    recoverable as ``geodesic_m / manhattan``.
    """

    def __init__(self, detour_max: float = 0.2) -> None:
        if detour_max < 0:
            raise ValueError(f"detour_max must be >= 0, got {detour_max}")
        self.detour_max = float(detour_max)

    def attach_routes(self, block: TripBlock, rng: np.random.Generator) -> TripBlock:
        """Return the block with routed lengths in ``geodesic_m``."""
        n = len(block)
        manhattan = np.abs(block.end_x - block.start_x) + np.abs(
            block.end_y - block.start_y
        )
        stretch = 1.0 + rng.uniform(0.0, self.detour_max, n)
        return TripBlock(
            order_id=block.order_id,
            user_id=block.user_id,
            bike_id=block.bike_id,
            bike_type=block.bike_type,
            start_us=block.start_us,
            start_x=block.start_x,
            start_y=block.start_y,
            end_x=block.end_x,
            end_y=block.end_y,
            geodesic_m=manhattan * stretch,
            has_geodesic=np.ones(n, dtype=bool),
            battery=block.battery,
            has_battery=block.has_battery,
        )

    def waypoints(self, trip: TripRecord) -> List[Tuple[float, float]]:
        """The trip's route polyline (origin, corner, destination)."""
        sx, sy = float(trip.start.x), float(trip.start.y)
        ex, ey = float(trip.end.x), float(trip.end.y)
        corner = (ex, sy) if trip.order_id % 2 == 0 else (sx, ey)
        return [(sx, sy), corner, (ex, ey)]


class TripStream:
    """Seeded block stream: OD matrix × scenario schedule × router.

    Args:
        config: traffic shape.
        schedule: the scenario (rate pulses + trip-side events); its
            ``t0`` is the stream's genesis timestamp.  Use
            :func:`~repro.loadgen.scenarios.make_scenario`.
        seed: root seed; matrix and emission entropy are spawned from
            it, so the stream is exactly reproducible.
    """

    def __init__(
        self, config: ODConfig, schedule: ScenarioSchedule, seed: int = 0
    ) -> None:
        self.config = config
        self.schedule = schedule
        self.seed = int(seed)
        matrix_seed, self._stream_seed = np.random.SeedSequence(self.seed).spawn(2)
        self.matrix = ODMatrix(config, seed=matrix_seed)
        self.router = WaypointRouter(config.detour_max)

    def blocks(self, duration_s: float) -> Iterator[TripBlock]:
        """Emit the stream as one sorted block per non-empty step.

        Timestamps are non-decreasing within and across blocks, so the
        stream rides the watermark buffer's sorted fast path; order ids
        are dense and ascending.
        """
        cfg = self.config
        rng = np.random.default_rng(self._stream_seed)
        t0_us = datetime_to_us(self.schedule.t0)
        step_us = int(round(cfg.step_s * 1e6))
        nz = self.matrix.n_zones
        order_base = 0
        for k in range(int(math.ceil(duration_s / cfg.step_s))):
            mult = self.schedule.rate_multiplier(
                k * cfg.step_s, self.matrix.zone_x, self.matrix.zone_y
            )
            lam = self.matrix.rates * mult * cfg.step_s
            counts = rng.poisson(lam)
            n = int(counts.sum())
            if n == 0:
                continue
            pair = np.repeat(np.arange(nz * nz), counts.ravel())
            origin = pair // nz
            dest = pair % nz
            sx = self.matrix.zone_x[origin] + rng.uniform(
                -self.matrix.half_x, self.matrix.half_x, n
            )
            sy = self.matrix.zone_y[origin] + rng.uniform(
                -self.matrix.half_y, self.matrix.half_y, n
            )
            ex = self.matrix.zone_x[dest] + rng.uniform(
                -self.matrix.half_x, self.matrix.half_x, n
            )
            ey = self.matrix.zone_y[dest] + rng.uniform(
                -self.matrix.half_y, self.matrix.half_y, n
            )
            start_us = t0_us + k * step_us + np.sort(
                rng.integers(0, step_us, n, dtype=np.int64)
            )
            users = rng.integers(0, cfg.users, n, dtype=np.int64)
            low = rng.uniform(size=n) < cfg.low_value_fraction
            block = TripBlock(
                order_id=order_base + np.arange(n, dtype=np.int64),
                user_id=np.where(low, -1 - users, users),
                bike_id=rng.integers(0, cfg.bikes, n, dtype=np.int64),
                bike_type=np.ones(n, dtype=np.int64),
                start_us=start_us,
                start_x=sx,
                start_y=sy,
                end_x=ex,
                end_y=ey,
                battery=rng.uniform(0.05, 1.0, n),
                has_battery=np.ones(n, dtype=bool),
            )
            block = self.schedule.apply(block, rng)
            block = self.router.attach_routes(block, rng)
            order_base += n
            yield block

    def records(self, duration_s: float) -> List[TripRecord]:
        """The stream materialised as :class:`TripRecord` rows."""
        out: List[TripRecord] = []
        for block in self.blocks(duration_s):
            out.extend(block.to_trips())
        return out
