"""The overload gauntlet: ``python -m repro.loadgen``.

Runs every named surge scenario (or one, via ``--scenario``) as a
seeded OD trip stream against a geo-sharded fleet under admission
control, and verifies for each that

* the run completes without an uncaught exception and no shard halts;
* accounting is **exact** on every shard:
  ``offered == served + duplicates + dead-lettered + deferred +
  degraded`` (every shed row is inside the dead-letter count, with a
  reason);
* the overload machinery actually engages on surge scenarios (shed
  rows, backpressure, or a ladder climb — a gauntlet that never bites
  proves nothing) and stays silent on ``baseline``;
* every shard's degradation ladder is back at full service by end of
  stream — the fleet *recovers*;
* with **zero overload** (the baseline stream under generous admission
  headroom), the controlled fleet is byte-identical to the uncontrolled
  one: same journal bytes, same checkpoint state (modulo the KS
  wall-clock timing, which is not logical state).

Per scenario it reports sustained trips/sec, the
served/shed/deferred/dead-lettered split, breaker trips, ladder
transitions, and the recovery time from first ladder escalation back to
full service.

Exit status 0 on success, 1 with a FAIL line per violation — the same
contract as ``python -m repro.guard``, so CI can run both.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..geo.points import BoundingBox, Point
from ..guard.breakers import OPEN
from ..guard.overload import RUNGS, LadderConfig, OverloadConfig
from ..guard.runtime import GuardConfig
from ..guard.validation import ValidationConfig
from ..shard import ShardPlan, ShardedRuntime
from .odmatrix import ODConfig, TripStream
from .scenarios import SCENARIOS, make_scenario

PLANE = 2000.0
COST_VALUE = 8000.0
#: Stream steps per serving epoch (epoch = one ingest_many + latency
#: observation per shard).
EPOCH_STEPS = 5


def _bounds() -> BoundingBox:
    return BoundingBox(0.0, 0.0, PLANE, PLANE)


def _guard_config(overload: Optional[OverloadConfig]) -> GuardConfig:
    margin = 100.0
    return GuardConfig(
        validation=ValidationConfig(
            bounds=BoundingBox(-margin, -margin, PLANE + margin, PLANE + margin),
            max_backwards_s=3600.0,
        ),
        lateness_s=600.0,
        overload=overload,
    )


def _overload_config(
    od: ODConfig, n_shards: int, headroom: float = 1.6, queue_limit: int = 400
) -> OverloadConfig:
    """Admission sized to the *baseline* per-shard rate.

    Headroom 1.6 over the offered baseline: normal traffic sails
    through and the post-surge queue drains at ~0.6x the baseline rate,
    while a 10–50x localized spike saturates the bucket within a few
    steps.
    """
    per_shard = od.trips_per_hour / 3600.0 / n_shards
    rate = headroom * per_shard
    return OverloadConfig(
        rate_per_s=rate,
        burst=max(32, int(round(rate * 180.0))),
        queue_limit=queue_limit,
        ladder=LadderConfig(),
    )


def _build_fleet(
    directory: Path, n_shards: int, seed: int, overload: Optional[OverloadConfig]
) -> ShardedRuntime:
    plan = ShardPlan.from_bounds(_bounds(), n_shards)
    anchors = [
        Point(float(x), float(y))
        for x in (0, 667, 1333, 2000)
        for y in (0, 667, 1333, 2000)
    ]
    historical = np.random.default_rng(seed).uniform(0.0, PLANE, size=(300, 2))
    return ShardedRuntime(
        plan,
        directory,
        anchors,
        historical,
        seed=seed,
        guard=_guard_config(overload),
        durable=False,
    )


def _breaker_trips(runtime) -> int:
    return sum(
        sum(1 for _, new, _ in b.transitions if new == OPEN)
        for b in runtime.breakers.values()
    )


def _run_scenario(
    name: str,
    n_shards: int,
    duration_s: float,
    od: ODConfig,
    seed: int,
    block_size: Optional[int],
    workdir: Path,
) -> int:
    """One scenario against a persistent in-process shard fleet."""
    failures = 0
    schedule = make_scenario(name, od.bounds, duration_s)
    stream = TripStream(od, schedule, seed=seed)
    overload = _overload_config(od, n_shards)
    fleet = _build_fleet(workdir / name, n_shards, seed, overload)
    shards = {sid: fleet.open_shard(sid) for sid in range(n_shards)}
    offered_total = 0
    wall_s = 0.0
    try:
        blocks = list(stream.blocks(duration_s))
        epoch_dt = [0.0] * n_shards
        for i, block in enumerate(blocks):
            offered_total += len(block)
            buckets = fleet.router.split_trips(block.to_trips())
            for sid, bucket in enumerate(buckets):
                if not bucket:
                    continue
                t0 = time.perf_counter()
                shards[sid].ingest_many(bucket, block_size=block_size)
                dt = time.perf_counter() - t0
                wall_s += dt
                epoch_dt[sid] += dt
            if (i + 1) % EPOCH_STEPS == 0 or i + 1 == len(blocks):
                for sid in range(n_shards):
                    shards[sid].overload.observe_latency(epoch_dt[sid])
                epoch_dt = [0.0] * n_shards
        for sid in range(n_shards):
            t0 = time.perf_counter()
            shards[sid].finish()
            wall_s += time.perf_counter() - t0
    except Exception as exc:  # noqa: BLE001 — the gauntlet's whole point
        print(f"FAIL: [{name}] fleet raised under load: {exc!r}")
        for rt in shards.values():
            rt.close()
        return failures + 1

    served = duplicates = dead = shed = deferred = degraded = 0
    transitions = 0
    trips = 0
    recovery_s = 0.0
    engaged = False
    for sid, rt in shards.items():
        rt.consistency_check()
        ctrl = rt.overload
        offered = rt.validator.offered
        accounted = (
            rt.served
            + rt.duplicates
            + rt.sink.total
            + len(rt.deferred_decisions)
            + len(rt.degraded_decisions)
        )
        if offered != accounted:
            print(
                f"FAIL: [{name}] shard {sid} accounting drift: "
                f"{offered} offered vs {accounted} accounted"
            )
            failures += 1
        if rt.halted:
            print(f"FAIL: [{name}] shard {sid} halted: {rt.halt_reason}")
            failures += 1
        if ctrl.rung != 0:
            print(
                f"FAIL: [{name}] shard {sid} ended at rung "
                f"{RUNGS[ctrl.rung]!r} — the ladder never recovered"
            )
            failures += 1
        if ctrl.shed or ctrl.transitions or ctrl.backpressure_signals:
            engaged = True
        if ctrl.transitions:
            recovery_s = max(
                recovery_s,
                (ctrl.transitions[-1][0] - ctrl.transitions[0][0]) / 1e6,
            )
        served += rt.served
        duplicates += rt.duplicates
        dead += rt.sink.total
        shed += ctrl.shed
        deferred += len(rt.deferred_decisions)
        degraded += len(rt.degraded_decisions)
        transitions += len(ctrl.transitions)
        trips += _breaker_trips(rt)
        rt.close()

    if name == "baseline" and engaged:
        print(
            f"FAIL: [{name}] overload control engaged on the baseline "
            f"stream ({shed} shed, {transitions} transition(s))"
        )
        failures += 1
    if name != "baseline" and not engaged:
        print(
            f"FAIL: [{name}] surge never engaged the overload machinery "
            "(no shed, no backpressure, no ladder transition)"
        )
        failures += 1

    rate = offered_total / wall_s if wall_s > 0 else float("inf")
    print(
        f"[{name}] {offered_total} trips on {n_shards} shard(s) @ "
        f"{rate:.0f} trips/s sustained; {served} served, {shed} shed, "
        f"{deferred} deferred, {dead} dead-lettered, {degraded} degraded, "
        f"{duplicates} duplicate(s); {trips} breaker trip(s), "
        f"{transitions} ladder transition(s), recovery {recovery_s:.0f}s "
        f"event time"
    )
    return failures


def _zero_overload_parity(
    n_shards: int,
    duration_s: float,
    od: ODConfig,
    seed: int,
    block_size: Optional[int],
    workdir: Path,
) -> int:
    """Baseline stream, generous admission: controlled == uncontrolled."""
    failures = 0
    schedule = make_scenario("baseline", od.bounds, duration_s)
    records = TripStream(od, schedule, seed=seed).records(duration_s)
    # Admission sized far above the offered rate: the fast path must
    # hit on every block and consume zero entropy.
    generous = OverloadConfig(
        rate_per_s=100.0 * od.trips_per_hour / 3600.0,
        burst=max(4096, len(records)),
        queue_limit=max(4096, len(records)),
    )
    controlled = _build_fleet(workdir / "parity-on", n_shards, seed, generous)
    plain = _build_fleet(workdir / "parity-off", n_shards, seed, None)
    on = controlled.serve(records, block_size=block_size)
    off = plain.serve(records, block_size=block_size)
    if on.shed or on.deferred or on.deadlettered:
        print(
            f"FAIL: zero-overload run engaged control: {on.shed} shed, "
            f"{on.deferred} deferred, {on.deadlettered} dead-lettered"
        )
        failures += 1
    for a, b in zip(on.reports, off.reports):
        if a.outcomes != b.outcomes:
            print(
                f"FAIL: shard {a.shard_id} responses diverged under "
                "zero-overload admission control"
            )
            failures += 1
    for sid in range(n_shards):
        ja = (workdir / "parity-on" / f"shard-{sid:03d}" / "journal.jsonl")
        jb = (workdir / "parity-off" / f"shard-{sid:03d}" / "journal.jsonl")
        if ja.exists() != jb.exists() or (
            ja.exists() and ja.read_bytes() != jb.read_bytes()
        ):
            print(
                f"FAIL: shard {sid} journal bytes diverged under "
                "zero-overload admission control"
            )
            failures += 1
        rt_on = controlled.open_shard(sid)
        rt_off = plain.open_shard(sid)
        sa = rt_on.inner.service.state_dict()
        sb = rt_off.inner.service.state_dict()
        sa["planner"]["ks_seconds"] = sb["planner"]["ks_seconds"] = 0.0
        if sa != sb:
            print(
                f"FAIL: shard {sid} checkpoint state diverged under "
                "zero-overload admission control"
            )
            failures += 1
        rt_on.close()
        rt_off.close()
    if not failures:
        print(
            f"zero-overload parity OK: {len(records)} trips, "
            f"{n_shards} shard(s) — journal bytes and checkpoint state "
            "identical with admission control on"
        )
    return failures


def _gauntlet(
    scenarios: List[str],
    n_shards: int,
    duration_s: float,
    trips_per_hour: float,
    seed: int,
    block_size: Optional[int],
) -> int:
    failures = 0
    od = ODConfig(bounds=_bounds(), trips_per_hour=trips_per_hour)
    workdir = Path(tempfile.mkdtemp(prefix="esharing-loadgen-"))
    try:
        for name in scenarios:
            failures += _run_scenario(
                name, n_shards, duration_s, od, seed, block_size, workdir
            )
        failures += _zero_overload_parity(
            n_shards, duration_s, od, seed, block_size, workdir
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    if failures:
        print(f"overload gauntlet: {failures} failure(s)")
        return 1
    print(
        f"overload gauntlet OK: {len(scenarios)} scenario(s) on "
        f"{n_shards} shard(s), exact accounting, ladder recovery, and "
        "zero-overload byte-identity verified"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="overload gauntlet: surge scenarios vs admission control",
    )
    parser.add_argument(
        "--scenario",
        default="all",
        help=f"one of {', '.join(sorted(SCENARIOS))}, or 'all' (default)",
    )
    parser.add_argument(
        "--shards", type=int, default=2, help="fleet size (default 2)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=5400.0,
        help="stream length in event-time seconds (default 5400)",
    )
    parser.add_argument(
        "--trips-per-hour",
        type=float,
        default=2400.0,
        help="city-wide baseline offered rate (default 2400)",
    )
    parser.add_argument("--seed", type=int, default=0, help="stream seed")
    parser.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="trips per columnar block (default: the GuardConfig default; "
        "1 = the scalar oracle)",
    )
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.block_size is not None and args.block_size <= 0:
        parser.error(f"--block-size must be positive, got {args.block_size}")
    if args.duration <= 0:
        parser.error(f"--duration must be positive, got {args.duration}")
    if args.trips_per_hour <= 0:
        parser.error(
            f"--trips-per-hour must be positive, got {args.trips_per_hour}"
        )
    if args.scenario == "all":
        scenarios = sorted(SCENARIOS)
    elif args.scenario in SCENARIOS:
        scenarios = [args.scenario]
    else:
        parser.error(
            f"unknown scenario {args.scenario!r} "
            f"(known: {', '.join(sorted(SCENARIOS))}, all)"
        )
    return _gauntlet(
        scenarios,
        args.shards,
        args.duration,
        args.trips_per_hour,
        args.seed,
        args.block_size,
    )


if __name__ == "__main__":
    sys.exit(main())
