"""Composable surge scenarios: rate pulses and trip-side events.

A :class:`ScenarioSchedule` modifies a baseline OD stream two ways:

* **Rate pulses** (:class:`RatePulse`) scale the OD rate matrix while
  active — globally (a weather shutoff multiplies everything by 0.05),
  by destination (a festival multiplies flows *into* the venue's
  radius), or directionally (a rush-hour wave multiplies flows from
  outside a hub into it).  Pulses compose by multiplication.
* **Trip events** (:class:`ScheduledEvent`) rewrite individual emitted
  rows: a ``surge`` event redirects a seeded fraction of in-window
  destinations to a Gaussian cloud around the venue; a ``closure``
  event pushes destinations out of a closed disc (flooded underpass,
  cordoned block) to just past its rim.

:meth:`ScenarioSchedule.apply` is **vectorized over TripBlock
columns** — masks, batched draws, one pass per event.
:meth:`ScenarioSchedule.apply_scalar` is the per-row reference kept as
the parity oracle: both walk events outermost and draw phases in the
same order (all selection uniforms for an event, then all offsets),
and NumPy ``Generator`` batched draws consume the bit stream exactly
as sequential single draws do, so the two paths are **bit-identical**
— the property the scenario test suite pins.

(The older :mod:`repro.datasets.scenarios` record-level tier remains
for simulator studies; this module is its columnar, loadgen-facing
counterpart.)

Named scenarios live in :data:`SCENARIOS`; :func:`make_scenario`
builds a schedule scaled to a bounding box and duration::

    schedule = make_scenario("festival", bounds, duration_s=3 * 3600)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..core.tripblock import TripBlock, datetime_to_us
from ..geo.points import BoundingBox

__all__ = [
    "RatePulse",
    "ScheduledEvent",
    "ScenarioSchedule",
    "SCENARIOS",
    "make_scenario",
]

#: Default stream genesis (a calm Wednesday 6am, like the demo data).
DEFAULT_T0 = datetime(2017, 5, 10, 6, 0)


@dataclass(frozen=True)
class RatePulse:
    """One multiplicative window over the OD rate matrix.

    Attributes:
        start_s / end_s: active window, seconds since stream genesis
            (half-open: ``start <= t < end``).
        multiplier: rate factor while active (10–50 for a stadium
            spike, 0.05 for a weather shutoff).
        center: ``(x, y)`` focus, or ``None`` for a global pulse.
        radius_m: zone centres within this radius of ``center`` count
            as "inside".
        direction: ``"any"`` scales all flows into the inside zones,
            ``"inbound"`` only outside→inside flows, ``"outbound"``
            only inside→outside — the coordinated-wave shapes.

    Raises:
        ValueError: on an empty window, a negative multiplier, an
            unknown direction, or a focused pulse without a radius.
    """

    start_s: float
    end_s: float
    multiplier: float
    center: Optional[Tuple[float, float]] = None
    radius_m: float = 0.0
    direction: str = "any"

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError(f"empty pulse window [{self.start_s}, {self.end_s})")
        if self.multiplier < 0:
            raise ValueError(f"multiplier must be >= 0, got {self.multiplier}")
        if self.direction not in ("any", "inbound", "outbound"):
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.center is not None and self.radius_m <= 0:
            raise ValueError("a focused pulse needs a positive radius_m")


@dataclass(frozen=True)
class ScheduledEvent:
    """One trip-rewriting event (``surge`` or ``closure``).

    Attributes:
        kind: ``"surge"`` redirects destinations toward ``(x, y)``;
            ``"closure"`` pushes destinations out of the disc.
        start_s / end_s: active window (half-open, stream seconds).
        x / y: event focus.
        radius_m: Gaussian spread (surge: sigma is ``radius_m / 2.5``)
            or closed-disc radius (closure).
        intensity: fraction of in-window trips a surge redirects
            (ignored by closures, which affect every trip in the disc).

    Raises:
        ValueError: on an unknown kind, empty window, non-positive
            radius, or intensity outside ``[0, 1]``.
    """

    kind: str
    start_s: float
    end_s: float
    x: float
    y: float
    radius_m: float
    intensity: float = 0.4

    def __post_init__(self) -> None:
        if self.kind not in ("surge", "closure"):
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.end_s <= self.start_s:
            raise ValueError(f"empty event window [{self.start_s}, {self.end_s})")
        if self.radius_m <= 0:
            raise ValueError(f"radius_m must be positive, got {self.radius_m}")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {self.intensity}")


@dataclass(frozen=True)
class ScenarioSchedule:
    """A scenario: genesis time, plane, rate pulses, trip events."""

    t0: datetime
    bounds: BoundingBox
    pulses: Tuple[RatePulse, ...] = ()
    events: Tuple[ScheduledEvent, ...] = ()

    # ------------------------------------------------------------------
    def rate_multiplier(
        self, t_s: float, zone_x: np.ndarray, zone_y: np.ndarray
    ):
        """The ``(Z, Z)`` rate factor matrix at stream second ``t_s``.

        Returns the scalar ``1.0`` when no pulse is active — the
        caller can multiply either form into the rate matrix.
        """
        active = [p for p in self.pulses if p.start_s <= t_s < p.end_s]
        if not active:
            return 1.0
        nz = int(zone_x.size)
        factor = np.ones((nz, nz))
        for pulse in active:
            if pulse.center is None:
                factor *= pulse.multiplier
                continue
            cx, cy = pulse.center
            inside = (zone_x - cx) ** 2 + (zone_y - cy) ** 2 <= pulse.radius_m**2
            if pulse.direction == "inbound":
                factor[np.ix_(~inside, inside)] *= pulse.multiplier
            elif pulse.direction == "outbound":
                factor[np.ix_(inside, ~inside)] *= pulse.multiplier
            else:
                factor[:, inside] *= pulse.multiplier
        return factor

    # ------------------------------------------------------------------
    def apply(self, block: TripBlock, rng: np.random.Generator) -> TripBlock:
        """Rewrite a block's destinations per the active events.

        Vectorized over the block's columns; bit-identical to
        :meth:`apply_scalar` with an identically-seeded generator.
        Draw order (the parity contract): events outermost, then per
        event phase-major — surge draws one uniform per in-window row,
        then two normals per redirected row; closure draws two normals
        per zero-distance row.  Start times and all non-destination
        columns pass through untouched.
        """
        n = len(block)
        if n == 0 or not self.events:
            return block
        t_s = (block.start_us - datetime_to_us(self.t0)) / 1e6
        ex = block.end_x.copy()
        ey = block.end_y.copy()
        b = self.bounds
        for ev in self.events:
            window = (t_s >= ev.start_s) & (t_s < ev.end_s)
            if ev.kind == "surge":
                rows = np.flatnonzero(window)
                if rows.size == 0:
                    continue
                hit = rows[rng.uniform(size=rows.size) < ev.intensity]
                if hit.size:
                    off = rng.normal(0.0, ev.radius_m / 2.5, size=(hit.size, 2))
                    ex[hit] = np.clip(ev.x + off[:, 0], b.min_x, b.max_x)
                    ey[hit] = np.clip(ev.y + off[:, 1], b.min_y, b.max_y)
            else:  # closure
                dx = ex - ev.x
                dy = ey - ev.y
                d = np.sqrt(dx * dx + dy * dy)
                inside = window & (d < ev.radius_m)
                push = inside & (d > 0.0)
                if np.any(push):
                    scale = (ev.radius_m * 1.05) / d[push]
                    ex[push] = np.clip(
                        ev.x + dx[push] * scale, b.min_x, b.max_x
                    )
                    ey[push] = np.clip(
                        ev.y + dy[push] * scale, b.min_y, b.max_y
                    )
                zero = np.flatnonzero(inside & (d == 0.0))
                if zero.size:
                    # Direction by normalised Gaussian pair: every op is
                    # correctly rounded, so scalar replay is bitwise
                    # identical (unlike cos/sin, whose SIMD paths are
                    # not guaranteed to match libm).
                    v = rng.normal(0.0, 1.0, size=(zero.size, 2))
                    norm = np.sqrt(v[:, 0] ** 2 + v[:, 1] ** 2)
                    ex[zero] = np.clip(
                        ev.x + (v[:, 0] / norm) * (ev.radius_m * 1.05),
                        b.min_x, b.max_x,
                    )
                    ey[zero] = np.clip(
                        ev.y + (v[:, 1] / norm) * (ev.radius_m * 1.05),
                        b.min_y, b.max_y,
                    )
        return TripBlock(
            order_id=block.order_id,
            user_id=block.user_id,
            bike_id=block.bike_id,
            bike_type=block.bike_type,
            start_us=block.start_us,
            start_x=block.start_x,
            start_y=block.start_y,
            end_x=ex,
            end_y=ey,
            geodesic_m=block.geodesic_m,
            has_geodesic=block.has_geodesic,
            battery=block.battery,
            has_battery=block.has_battery,
        )

    def apply_scalar(self, block: TripBlock, rng: np.random.Generator) -> TripBlock:
        """Per-row reference for :meth:`apply` — the parity oracle.

        Same event-outermost, phase-major draw order; every arithmetic
        step mirrors the vectorized expressions operation for
        operation, so the result is bit-identical.
        """
        n = len(block)
        if n == 0 or not self.events:
            return block
        t0_us = datetime_to_us(self.t0)
        t_s = [(int(block.start_us[i]) - t0_us) / 1e6 for i in range(n)]
        ex = block.end_x.copy()
        ey = block.end_y.copy()
        b = self.bounds
        for ev in self.events:
            window = [ev.start_s <= t < ev.end_s for t in t_s]
            if ev.kind == "surge":
                hit = [
                    i
                    for i in range(n)
                    if window[i] and float(rng.uniform()) < ev.intensity
                ]
                for i in hit:
                    ox, oy = rng.normal(0.0, ev.radius_m / 2.5, size=2)
                    ex[i] = min(max(ev.x + ox, b.min_x), b.max_x)
                    ey[i] = min(max(ev.y + oy, b.min_y), b.max_y)
            else:  # closure
                for i in range(n):
                    if not window[i]:
                        continue
                    dx = float(ex[i]) - ev.x
                    dy = float(ey[i]) - ev.y
                    d = math.sqrt(dx * dx + dy * dy)
                    if not d < ev.radius_m or d <= 0.0:
                        continue
                    scale = (ev.radius_m * 1.05) / d
                    ex[i] = min(max(ev.x + dx * scale, b.min_x), b.max_x)
                    ey[i] = min(max(ev.y + dy * scale, b.min_y), b.max_y)
                for i in range(n):
                    if not window[i]:
                        continue
                    dx = float(block.end_x[i]) - ev.x
                    dy = float(block.end_y[i]) - ev.y
                    if math.sqrt(dx * dx + dy * dy) == 0.0:
                        vx, vy = rng.normal(0.0, 1.0, size=2)
                        norm = math.sqrt(vx * vx + vy * vy)
                        ex[i] = min(
                            max(ev.x + (vx / norm) * (ev.radius_m * 1.05), b.min_x),
                            b.max_x,
                        )
                        ey[i] = min(
                            max(ev.y + (vy / norm) * (ev.radius_m * 1.05), b.min_y),
                            b.max_y,
                        )
        return TripBlock(
            order_id=block.order_id,
            user_id=block.user_id,
            bike_id=block.bike_id,
            bike_type=block.bike_type,
            start_us=block.start_us,
            start_x=block.start_x,
            start_y=block.start_y,
            end_x=ex,
            end_y=ey,
            geodesic_m=block.geodesic_m,
            has_geodesic=block.has_geodesic,
            battery=block.battery,
            has_battery=block.has_battery,
        )


# ----------------------------------------------------------------------
# Named scenarios.  Each factory scales its geometry to the bounding box
# and its windows to the requested duration, so the same names work for
# a 10-minute smoke run and a 12-hour soak.
def _extent(bounds: BoundingBox) -> Tuple[float, float, float]:
    width = bounds.max_x - bounds.min_x
    height = bounds.max_y - bounds.min_y
    return width, height, max(width, height)


def _festival(bounds, duration_s):
    """A few festival hours: 18x demand into one venue, mid-stream."""
    width, height, extent = _extent(bounds)
    venue = (bounds.min_x + 0.68 * width, bounds.min_y + 0.62 * height)
    radius = 0.15 * extent
    w0, w1 = 0.30 * duration_s, 0.55 * duration_s
    return (
        (RatePulse(w0, w1, 18.0, center=venue, radius_m=radius),),
        (ScheduledEvent("surge", w0, w1, venue[0], venue[1], radius, 0.6),),
    )


def _stadium(bounds, duration_s):
    """Stadium letting out: 45x into a tight radius, shorter window."""
    width, height, extent = _extent(bounds)
    gate = (bounds.min_x + 0.32 * width, bounds.min_y + 0.70 * height)
    radius = 0.09 * extent
    w0, w1 = 0.35 * duration_s, 0.52 * duration_s
    return (
        (RatePulse(w0, w1, 45.0, center=gate, radius_m=radius),),
        (ScheduledEvent("surge", w0, w1, gate[0], gate[1], radius, 0.8),),
    )


def _weather(bounds, duration_s):
    """Storm shutoff to 5% of demand, then a 6x city-wide rebound,
    with a flooded district closed for the whole episode."""
    width, height, extent = _extent(bounds)
    flooded = (bounds.min_x + 0.45 * width, bounds.min_y + 0.35 * height)
    return (
        (
            RatePulse(0.25 * duration_s, 0.50 * duration_s, 0.05),
            RatePulse(0.50 * duration_s, 0.62 * duration_s, 6.0),
        ),
        (
            ScheduledEvent(
                "closure",
                0.25 * duration_s,
                0.62 * duration_s,
                flooded[0],
                flooded[1],
                0.10 * extent,
            ),
        ),
    )


def _rush(bounds, duration_s):
    """Two coordinated rush waves: everything flows into the centre."""
    width, height, extent = _extent(bounds)
    cbd = (bounds.min_x + 0.5 * width, bounds.min_y + 0.5 * height)
    radius = 0.28 * extent
    morning = (0.10 * duration_s, 0.25 * duration_s)
    evening = (0.55 * duration_s, 0.70 * duration_s)
    pulses = tuple(
        RatePulse(w0, w1, 16.0, center=cbd, radius_m=radius, direction="inbound")
        for w0, w1 in (morning, evening)
    )
    events = tuple(
        ScheduledEvent("surge", w0, w1, cbd[0], cbd[1], radius, 0.3)
        for w0, w1 in (morning, evening)
    )
    return pulses, events


def _baseline(bounds, duration_s):
    """No pulses, no events — the calibration stream."""
    return (), ()


#: Named scenario factories: ``name -> (bounds, duration_s) ->
#: (pulses, events)``.
SCENARIOS: Dict[str, Callable] = {
    "baseline": _baseline,
    "festival": _festival,
    "stadium": _stadium,
    "weather": _weather,
    "rush": _rush,
}


def make_scenario(
    name: str,
    bounds: BoundingBox,
    duration_s: float,
    t0: datetime = DEFAULT_T0,
) -> ScenarioSchedule:
    """Build a named scenario scaled to a plane and duration.

    Raises:
        ValueError: on an unknown scenario name (the message lists the
            known ones) or a non-positive duration.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (known: {', '.join(sorted(SCENARIOS))})"
        ) from None
    pulses, events = factory(bounds, duration_s)
    return ScenarioSchedule(t0=t0, bounds=bounds, pulses=pulses, events=events)
