"""End-to-end pipeline — the whole Fig. 3 loop in one run.

Exercises every box of the system architecture in sequence: ❶ the
prediction engine forecasts the test day (model selected on a validation
tail), ❷ the offline algorithm computes the anchor on predicted demand,
❸/❹ the online algorithm with the periodic KS test serves the live
request stream, ❺/❻ the incentive mechanism relocates low-energy bikes
and the operator runs its tour.  The output is the headline scorecard a
deployment would watch: Tier-1 cost vs the Meyerson baseline, Tier-2
cost vs the no-incentive baseline, plus the event-level tallies.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core import (
    DemandPoint,
    EsharingConfig,
    EsharingPlanner,
    meyerson_placement,
    offline_placement,
    uniform_facility_cost,
)
from ..datasets.pois import default_city
from ..datasets.synthetic import SyntheticConfig, mobike_like_dataset
from ..datasets.trips import TripDataset
from ..energy.fleet import Fleet
from ..forecast import (
    HoltWinters,
    LstmConfig,
    LstmForecaster,
    MovingAverage,
    SeasonalNaive,
    ValidationSelector,
)
from ..geo.grid import UniformGrid
from ..incentives.charging_cost import ChargingCostParams
from ..incentives.mechanism import IncentiveConfig
from ..incentives.user_model import UserPopulation
from ..sim.events import EventLog, OfferMade, PlacementDecided, TripExecuted
from ..sim.operator import OperatorConfig
from ..sim.simulator import SystemSimulator
from .reporting import ExperimentResult

__all__ = ["run_pipeline", "run_pipeline_sweep"]


def run_pipeline(seed: int = 0, volume: int = 1200) -> ExperimentResult:
    """Run the full two-tier pipeline on one simulated test day.

    Args:
        seed: controls the workload and every random component.
        volume: weekday trip volume of the synthetic workload.
    """
    cfg = SyntheticConfig(trips_per_weekday=volume, trips_per_weekend_day=int(volume * 0.75))
    dataset = mobike_like_dataset(seed=seed, days=9, config=cfg)
    by_day = dataset.split_by_day()
    weekdays = [d for d in by_day if d.weekday() < 5]
    history_days, test_day = weekdays[:-1], weekdays[-1]
    history = TripDataset([r for d in history_days for r in by_day[d]])
    test_trips = list(by_day[test_day])

    # ❶ Prediction engine: model selected on a validation tail.
    grid = UniformGrid(default_city().box, cell_size=150.0)
    day_totals = []
    for day in history_days:
        series, _ = by_day[day].hourly_arrival_series(grid, start=day, hours=24)
        day_totals.append(series.sum(axis=1))
    totals = np.concatenate(day_totals)
    selector = ValidationSelector(
        {
            "lstm": LstmForecaster(
                LstmConfig(lookback=12, hidden_size=16, n_layers=1, epochs=25, seed=seed)
            ),
            "snaive": SeasonalNaive(period=24),
            "holt-winters": HoltWinters(period=24),
            "ma": MovingAverage(window=3),
        },
        horizon=6,
    ).fit(totals)
    predicted_total = float(np.clip(selector.forecast(totals, 24).sum(), 1.0, None))

    # ❷ Offline anchor on predicted demand (historical shape x forecast).
    demand = history.demand_grid(grid)
    hist_daily = sum(c for _, c in demand.top_cells(10**9)) / len(history_days)
    scale = predicted_total / max(hist_daily, 1e-9)
    demands = [
        DemandPoint(grid.centroid(cell), max(count / len(history_days) * scale, 1e-9))
        for cell, count in demand.top_cells(120)
        if count > 0
    ]
    cost_fn = uniform_facility_cost(10_000.0, np.random.default_rng(seed + 5))
    anchor = offline_placement(demands, cost_fn)

    # ❸/❹ Online placement + ❺/❻ incentives and the charging tour.
    historical = history.destination_array()
    planner = EsharingPlanner(
        anchor.stations, cost_fn, historical, np.random.default_rng(seed + 7),
        EsharingConfig(),
    )
    fleet = Fleet(planner.stations, n_bikes=1200, rng=np.random.default_rng(seed + 9))
    log = EventLog()
    sim = SystemSimulator(
        planner, fleet,
        charging_params=ChargingCostParams(service_cost=60.0, delay_cost=5.0, energy_cost=2.0),
        incentive_config=IncentiveConfig(alpha=0.4, position_cap=10),
        population=UserPopulation(walk_mean=450.0, walk_std=200.0,
                                  reward_mean=3.0, reward_std=2.0),
        operator_config=OperatorConfig(
            working_hours=3.0, travel_speed_kmh=12.0, service_time_h=0.25,
            min_bikes_to_visit=2,
        ),
        rng=np.random.default_rng(seed + 11),
        event_log=log,
    )
    report = sim.run_period(test_trips)
    tier1 = planner.result()

    # Baselines for the scorecard.
    stream = [t.end for t in test_trips]
    meyerson = meyerson_placement(stream, cost_fn, np.random.default_rng(seed + 13))

    rows: List[List] = [
        ["forecast model selected", selector.best_name, ""],
        ["predicted / actual test-day trips",
         round(predicted_total, 0), len(test_trips)],
        ["anchor stations (offline on prediction)", anchor.n_stations, ""],
        ["tier-1 total cost (km)", round(tier1.total / 1000, 1),
         f"meyerson: {meyerson.total / 1000:.1f}"],
        ["stations opened online", len(tier1.online_opened), ""],
        ["offers made / accepted", report.offers_made, report.offers_accepted],
        ["tier-2 total cost ($)", round(report.service.total_cost, 0),
         f"incentives: {report.incentives_paid:.0f}"],
        ["% charged within shift", round(report.service.percent_charged, 1), ""],
        ["events logged", len(log), ""],
    ]
    from ..sim.metrics import analyze_log

    tier1_saving = 100.0 * (1.0 - tier1.total / meyerson.total)
    return ExperimentResult(
        experiment_id="Pipeline",
        title="Full two-tier pipeline on one test day (Fig. 3 end-to-end)",
        headers=["quantity", "value", "reference"],
        rows=rows,
        notes=[
            f"tier-1 total is {tier1_saving:.0f}% below the Meyerson baseline",
            f"trips executed: {report.trips_executed}/{report.trips_requested}",
            f"seed={seed}",
            "service metrics:\n" + analyze_log(log).to_text(),
        ],
        extras={
            "selector": selector,
            "tier1": tier1,
            "report": report,
            "event_log": log,
            "phase_seconds": sim.timers.snapshot(),
        },
    )


def run_pipeline_sweep(
    seeds: Sequence[int] = (0, 1, 2, 3),
    volume: int = 600,
    workers: int = 1,
) -> ExperimentResult:
    """Fan :func:`run_pipeline` over a seed grid, optionally multicore.

    Each seed is one self-contained cell
    (:func:`repro.parallel.cells.pipeline_cell`); cells fan across
    ``workers`` processes and merge in canonical seed order, so the
    table is identical for every worker count.  Per-worker
    :class:`~repro.sim.metrics.PhaseTimers` snapshots are merged into
    one whole-sweep phase breakdown (reported in the notes) instead of
    being lost with the worker processes.

    Args:
        seeds: the sweep grid, one pipeline run per seed.
        volume: weekday trip volume passed to every cell.
        workers: worker-process count (``1`` = serial in-process).
    """
    from ..parallel.cells import pipeline_cell
    from ..parallel.pool import ParallelRunner
    from ..sim.metrics import PhaseTimers

    if not seeds:
        raise ValueError("seed grid cannot be empty")
    cells = ParallelRunner(workers).map(
        pipeline_cell,
        [(int(s), volume) for s in seeds],
        labels=[f"pipeline[seed={s}]" for s in seeds],
    )
    timers = PhaseTimers()
    rows: List[List] = []
    for cell in cells:
        timers.merge(cell["phase_seconds"])
        rows.append([
            cell["seed"],
            cell["trips_requested"],
            cell["trips_executed"],
            cell["tier1_stations"],
            round(cell["tier1_total"] / 1000, 1),
            round(cell["tier2_cost"], 0),
            round(cell["incentives_paid"], 1),
        ])
    snap = timers.snapshot()
    return ExperimentResult(
        experiment_id="Pipeline sweep",
        title=f"End-to-end pipeline over seeds {list(seeds)} ({workers} worker(s))",
        headers=["seed", "requested", "executed", "tier-1 stations",
                 "tier-1 cost (km)", "tier-2 cost ($)", "incentives ($)"],
        rows=rows,
        notes=[
            f"cells merged in canonical seed order; table is identical "
            f"for any worker count (digests: "
            f"{', '.join(c['digest'][:8] for c in cells)})",
            "merged worker phase seconds: "
            + ", ".join(f"{k}={v:.3f}" for k, v in snap.items()),
        ],
        extras={"cells": cells, "phase_seconds": snap},
    )
