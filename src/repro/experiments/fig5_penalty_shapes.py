"""Fig. 5 — penalty-function shapes and their first derivatives.

Tabulates ``g(c)`` and ``g'(c)`` for Types I-III over ``c in [0, 3L]``,
the domain of the paper's plot, and verifies the qualitative ordering
(Type II plunges fastest, Type I keeps a tail above 0.2 beyond 3L).
"""

from __future__ import annotations

import numpy as np

from ..core.penalty import TypeIPenalty, TypeIIPenalty, TypeIIIPenalty
from .reporting import ExperimentResult

__all__ = ["run_fig5"]


def run_fig5(tolerance: float = 200.0, n_points: int = 13, seed: int = 0) -> ExperimentResult:
    """Tabulate the three penalty functions of Eqs. 6-8.

    Args:
        tolerance: the level ``L`` (the evaluation uses 200 m).
        n_points: samples over ``[0, 3L]``.
        seed: unused (the tabulation is deterministic); accepted for CLI parity.
    """
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    penalties = [
        TypeIPenalty(tolerance=tolerance),
        TypeIIPenalty(tolerance=tolerance),
        TypeIIIPenalty(tolerance=tolerance),
    ]
    cs = np.linspace(0.0, 3.0 * tolerance, n_points)
    rows = []
    for c in cs:
        row = [round(float(c), 1)]
        for p in penalties:
            row.append(round(p.value(float(c)), 4))
        for p in penalties:
            row.append(round(p.derivative(float(c)), 6))
        rows.append(row)
    tail_i = penalties[0].value(3.0 * tolerance)
    return ExperimentResult(
        experiment_id="Fig. 5",
        title="Penalty functions g(c) and derivatives over [0, 3L]",
        headers=[
            "c (m)",
            "g_I", "g_II", "g_III",
            "g_I'", "g_II'", "g_III'",
        ],
        rows=rows,
        notes=[
            f"L = {tolerance:.0f} m",
            f"Type I tail at 3L = {tail_i:.3f} (paper: maintained over 0.2)",
            "Type II reaches exactly 0 at c = L; Type III is the Gaussian in between",
        ],
    )
