"""Table III / Fig. 9 — penalty-function costs under synthetic distributions.

The Section V-B sector experiment: the offline-derived parking sits at
the origin; ~200 requests per trial are drawn from a *uniform*, *Poisson*
(mid-range ring) or *normal* distribution, representing increasing
similarity to the prediction; each penalty type (plus *no penalty* =
plain Meyerson) damps the opening probability.  Costs are averaged over
many trials and reported in km.

Accounting note.  The paper's Table III charges the *true* space cost per
opened station while the opening probability runs on Algorithm 2's scaled
(small) cost — that mismatch is what makes *no penalty* the worst total
despite its minimum walking cost.  We reproduce that accounting with a
probability-control cost ``F_PROB`` and a charged cost ``F_TRUE``.

Reproduction status: uniform -> Type I and normal -> Type II match the
paper, and *no penalty* wins walking everywhere as reported.  For the
Poisson ring our accounting makes Type III a close *second* behind
Type I: ``g_III = exp(-c^2/L^2)`` is pointwise more lenient than Type I
below ~0.55 L and harsher above, so whenever far openings are worth their
cost Type I edges it out.  See EXPERIMENTS.md for the discussion.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import constant_facility_cost, meyerson_placement
from ..core.penalty import (
    NoPenalty,
    PenaltyFunction,
    TypeIPenalty,
    TypeIIPenalty,
    TypeIIIPenalty,
)
from ..geo.points import Point
from ..stats.distributions import sample_normal, sample_poisson_ring, sample_uniform
from .reporting import ExperimentResult

__all__ = ["run_table3", "PENALTY_SET"]

PENALTY_SET = {
    "no_penalty": NoPenalty,
    "type_i": TypeIPenalty,
    "type_ii": TypeIIPenalty,
    "type_iii": TypeIIIPenalty,
}

N_REQUESTS = 200
F_PROB = 200.0
"""Scaled opening cost driving the probability (Algorithm 2, line 4)."""
F_TRUE = 500.0
"""True space-occupation cost charged per opened station."""
TOLERANCE_M = 200.0

_SAMPLERS = {
    "uniform": lambda rng: sample_uniform(rng, N_REQUESTS, 500.0),
    "poisson": lambda rng: sample_poisson_ring(rng, N_REQUESTS, rate=9.0, scale=25.0),
    "normal": lambda rng: sample_normal(rng, N_REQUESTS, 60.0),
}


def _run_cell(
    distribution: str,
    penalty: PenaltyFunction,
    seed: int,
    trials: int,
) -> Dict[str, float]:
    sampler = _SAMPLERS[distribution]
    cost_fn = constant_facility_cost(F_PROB)
    walking = stations = 0.0
    for t in range(trials):
        rng = np.random.default_rng(seed + t)
        stream = sampler(rng)
        res = meyerson_placement(
            stream,
            cost_fn,
            np.random.default_rng(seed + 10_000 + t),
            initial_stations=[Point(0.0, 0.0)],
            penalty=None if isinstance(penalty, NoPenalty) else penalty,
        )
        walking += res.walking
        stations += res.n_stations
    walking /= trials
    stations /= trials
    space = stations * F_TRUE
    return {
        "walking_km": walking / 1000.0,
        "space_km": space / 1000.0,
        "total_km": (walking + space) / 1000.0,
        "stations": stations,
    }


def run_table3(seed: int = 0, trials: int = 30) -> ExperimentResult:
    """Reproduce Table III (averaged over ``trials`` random streams).

    Args:
        seed: base RNG seed.
        trials: trials per (distribution, penalty) cell — the paper
            averages over 100.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rows: List[List] = []
    winners: Dict[str, str] = {}
    min_walking: Dict[str, str] = {}
    for dist in ("uniform", "poisson", "normal"):
        best_total = float("inf")
        best_walk = float("inf")
        for name, cls in PENALTY_SET.items():
            cell = _run_cell(dist, cls(tolerance=TOLERANCE_M), seed, trials)
            rows.append(
                [
                    dist,
                    name,
                    round(cell["walking_km"], 2),
                    round(cell["space_km"], 2),
                    round(cell["total_km"], 2),
                    round(cell["stations"], 1),
                ]
            )
            if cell["total_km"] < best_total:
                best_total = cell["total_km"]
                winners[dist] = name
            if cell["walking_km"] < best_walk:
                best_walk = cell["walking_km"]
                min_walking[dist] = name
    return ExperimentResult(
        experiment_id="Table III",
        title="Penalty-function costs under uniform / Poisson / normal requests",
        headers=["distribution", "penalty", "walking (km)", "space (km)", "total (km)", "# stations"],
        rows=rows,
        notes=[
            f"min-total winners: {winners} (paper: uniform->type_i, "
            f"poisson->type_iii, normal->type_ii; see module docstring on "
            f"the poisson case)",
            f"min-walking winners: {min_walking} (paper: no_penalty everywhere)",
            f"{N_REQUESTS} requests/trial, F_prob = {F_PROB:.0f} m, "
            f"F_true = {F_TRUE:.0f} m, L = {TOLERANCE_M:.0f} m, "
            f"{trials} trials, seed={seed}",
        ],
        extras={"winners": winners, "min_walking": min_walking},
    )
