"""Table II — RMSE of LSTM vs MA vs ARIMA on hourly request counts.

The paper trains per-grid predictors on the two-week Mobike window
(weekdays: 7 train / 3 test days) and reports walk-forward RMSE for 1-6 h
horizons.  LSTM is swept over depth (1-3 layers) and backward window
(1-24 h), MA over window size, ARIMA over lag order and differencing.
Headline shape to match: 2-layer LSTM with back=12 wins, and LSTM beats
the statistical baselines by ~30% on average.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..datasets.pois import default_city
from ..datasets.synthetic import SyntheticConfig, mobike_like_dataset
from ..forecast import (
    Arima,
    HoltWinters,
    LstmConfig,
    LstmForecaster,
    MovingAverage,
    SeasonalNaive,
    build_demand_series,
    rolling_rmse,
    weekday_weekend_split,
)
from ..geo.grid import UniformGrid
from .reporting import ExperimentResult

__all__ = ["run_table2", "demand_train_test"]


def demand_train_test(seed: int = 0, volume: int = 900) -> Tuple[np.ndarray, np.ndarray]:
    """The weekday train/test series used across the prediction experiments."""
    cfg = SyntheticConfig(trips_per_weekday=volume, trips_per_weekend_day=int(volume * 0.75))
    dataset = mobike_like_dataset(seed=seed, days=14, config=cfg)
    grid = UniformGrid(default_city().box, cell_size=300.0)
    series = build_demand_series(dataset, grid)
    (wd_train, wd_test), _ = weekday_weekend_split(series)
    return wd_train, wd_test


def run_table2(
    seed: int = 0,
    fast: bool = True,
    horizon: int = 6,
    include_seasonal: bool = False,
) -> ExperimentResult:
    """Reproduce the Table II RMSE grid.

    Args:
        seed: dataset / initialisation seed.
        fast: trim the hyperparameter grid and epochs so the experiment
            runs in minutes on a laptop (the full grid matches the paper's
            sweep exactly).
        horizon: forecast horizon in hours (the paper evaluates 1-6 h).
        include_seasonal: extend the paper's grid with seasonal-naive and
            Holt-Winters rows — the *fair* statistical baselines for a
            strongly diurnal series (beyond-the-paper extension).
    """
    train, test = demand_train_test(seed=seed)
    rows: List[List] = []

    if fast:
        layer_grid = [1, 2]
        back_grid = [12, 3]
        epochs = 30
        hidden = 24
        ma_grid = [1, 3, 5]
        arima_p = [2, 6]
        arima_d = [0, 1]
    else:
        layer_grid = [1, 2, 3]
        back_grid = [24, 12, 6, 3, 1]
        epochs = 80
        hidden = 32
        ma_grid = [1, 2, 3, 4, 5]
        arima_p = [2, 4, 6, 8, 10]
        arima_d = [0, 1, 2]

    lstm_rmse: Dict[Tuple[int, int], float] = {}
    for layers in layer_grid:
        for back in back_grid:
            model = LstmForecaster(
                LstmConfig(
                    lookback=back, hidden_size=hidden, n_layers=layers,
                    epochs=epochs, seed=seed,
                )
            )
            err = rolling_rmse(model, train, test, horizon=horizon)
            lstm_rmse[(layers, back)] = err
            rows.append([f"LSTM {layers}-layer", f"back={back}", round(err, 2)])

    ma_rmse: Dict[int, float] = {}
    for wz in ma_grid:
        err = rolling_rmse(MovingAverage(window=wz), train, test, horizon=horizon)
        ma_rmse[wz] = err
        rows.append(["MA", f"wz={wz}", round(err, 2)])

    arima_rmse: Dict[Tuple[int, int], float] = {}
    for d in arima_d:
        for p in arima_p:
            err = rolling_rmse(Arima(p=p, d=d), train, test, horizon=horizon)
            arima_rmse[(p, d)] = err
            rows.append(["ARIMA", f"p={p} d={d}", round(err, 2)])

    seasonal_rmse: Dict[str, float] = {}
    if include_seasonal:
        for window in (1, 3):
            err = rolling_rmse(
                SeasonalNaive(period=24, window=window), train, test, horizon=horizon
            )
            seasonal_rmse[f"snaive w={window}"] = err
            rows.append(["SeasonalNaive", f"window={window}", round(err, 2)])
        err = rolling_rmse(HoltWinters(period=24), train, test, horizon=horizon)
        seasonal_rmse["holt-winters"] = err
        rows.append(["HoltWinters", "period=24", round(err, 2)])

    best_lstm_cfg = min(lstm_rmse, key=lstm_rmse.get)
    best_lstm = lstm_rmse[best_lstm_cfg]
    best_stat = min(min(ma_rmse.values()), min(arima_rmse.values()))
    if seasonal_rmse:
        best_stat = min(best_stat, min(seasonal_rmse.values()))
    improvement = 100.0 * (1.0 - best_lstm / best_stat)
    return ExperimentResult(
        experiment_id="Table II",
        title=f"Prediction RMSE over the next {horizon} h (weekday series)",
        headers=["model", "hyperparameters", "RMSE"],
        rows=rows,
        notes=[
            f"best LSTM: {best_lstm_cfg[0]}-layer back={best_lstm_cfg[1]} "
            f"RMSE={best_lstm:.2f} (paper: 2-layer back=12, 29.1)",
            f"LSTM improves {improvement:.0f}% over the best statistical "
            f"baseline (paper: ~30% on average)",
            f"fast={fast} seed={seed}",
        ],
        extras={"best_lstm_config": best_lstm_cfg},
    )
