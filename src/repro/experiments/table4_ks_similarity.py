"""Table IV — day-of-week similarity of request distributions (2-D KS).

For every pair of weekdays, compare the destination distributions of the
same hour interval across the two days with Peacock's 2-D KS test and
average ``100 (1 - D)`` over the 24 hours.  The paper finds a clear block
structure: weekdays ~90-97% similar among themselves, weekends ~89%, and
weekday-weekend pairs down at ~58-80%.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..datasets.synthetic import SyntheticConfig, mobike_like_dataset
from ..datasets.trips import TripDataset
from ..stats.ks2d import ks2d_fast

__all__ = ["run_table4"]

from .reporting import ExperimentResult

_DAY_NAMES = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"]


def _hourly_samples(dataset: TripDataset) -> Dict[int, Dict[int, np.ndarray]]:
    """weekday -> hour -> destination sample (pooled across weeks)."""
    out: Dict[int, Dict[int, List]] = {d: {h: [] for h in range(24)} for d in range(7)}
    for r in dataset:
        out[r.start_time.weekday()][r.start_time.hour].append((r.end.x, r.end.y))
    return {
        d: {h: np.asarray(pts, dtype=float) for h, pts in hours.items()}
        for d, hours in out.items()
    }


def run_table4(
    seed: int = 0,
    volume: int = 4000,
    min_sample: int = 8,
    dataset: Optional[TripDataset] = None,
) -> ExperimentResult:
    """Reproduce the Table IV similarity matrix.

    Args:
        seed: synthetic-dataset seed.
        volume: weekday trip volume (larger = tighter KS estimates).
        min_sample: hours where either day has fewer destinations are
            skipped (too noisy for a two-sample test).
        dataset: optionally score a caller-provided dataset (e.g. the
            real Mobike CSV) instead of the synthetic workload.
    """
    if dataset is None:
        cfg = SyntheticConfig(
            trips_per_weekday=volume, trips_per_weekend_day=int(volume * 0.8)
        )
        dataset = mobike_like_dataset(seed=seed, days=14, config=cfg)
    samples = _hourly_samples(dataset)

    matrix = np.full((7, 7), np.nan)
    for a in range(7):
        for b in range(a + 1, 7):
            sims = []
            for h in range(24):
                sa, sb = samples[a][h], samples[b][h]
                if len(sa) < min_sample or len(sb) < min_sample:
                    continue
                sims.append(ks2d_fast(sa, sb).similarity)
            if sims:
                matrix[a, b] = matrix[b, a] = float(np.mean(sims))

    rows = []
    for a in range(7):
        row: List = [_DAY_NAMES[a]]
        for b in range(7):
            row.append("" if a == b or np.isnan(matrix[a, b]) else round(matrix[a, b], 1))
        rows.append(row)

    wd_pairs = [matrix[a, b] for a in range(5) for b in range(a + 1, 5)]
    we_pair = matrix[5, 6]
    cross = [matrix[a, b] for a in range(5) for b in (5, 6)]

    # Bootstrap uncertainty on one representative pair per block.
    from ..stats.bootstrap import ks_similarity_ci

    rng = np.random.default_rng(seed + 1)
    cap = 600  # keep the resampled KS calls cheap

    def pooled(day: int) -> np.ndarray:
        pts = np.vstack([samples[day][h] for h in range(24) if len(samples[day][h])])
        if pts.shape[0] > cap:
            idx = np.linspace(0, pts.shape[0] - 1, cap).astype(int)
            pts = pts[idx]
        return pts

    _, wd_lo, wd_hi = ks_similarity_ci(pooled(0), pooled(1), rng, n_resamples=60)
    _, x_lo, x_hi = ks_similarity_ci(pooled(0), pooled(5), rng, n_resamples=60)
    separated = "disjoint" if x_hi < wd_lo else "overlapping"
    ci_note = (
        f"bootstrap 95% CIs (pooled days): Mon-Tue [{wd_lo:.1f}, {wd_hi:.1f}]%, "
        f"Mon-Sat [{x_lo:.1f}, {x_hi:.1f}]% ({separated})"
    )
    return ExperimentResult(
        experiment_id="Table IV",
        title="Similarity (%) between day-of-week request distributions",
        headers=["day"] + _DAY_NAMES,
        rows=rows,
        notes=[
            f"weekday-weekday mean = {np.nanmean(wd_pairs):.1f}% "
            f"(paper block: ~90-97%)",
            f"Sat-Sun = {we_pair:.1f}% (paper: 88.9%)",
            f"weekday-weekend mean = {np.nanmean(cross):.1f}% (paper block: ~58-80%)",
            "hour-by-hour Peacock 2-D KS, averaged over 24 h",
            ci_note,
        ],
        extras={"matrix": matrix},
    )
