"""Fig. 9 — where each penalty function establishes parking.

The paper visualises the parking generated under uniform / Poisson /
normal request distributions, one sector per penalty type (no penalty,
Type I-III clockwise), with the offline-derived parking at the origin.
This runner reproduces the data behind that figure: for each
(distribution, penalty) pair it collects the opened station coordinates
and summarises their spatial spread; the notes carry ASCII density maps
of the stations, one per penalty, mirroring the paper's panels.

Uses the Table III accounting (probability-control cost vs true space
cost — see :mod:`repro.experiments.table3_penalty_costs`).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import constant_facility_cost, meyerson_placement
from ..core.penalty import NoPenalty
from ..geo.points import Point
from .ascii_plots import heatmap
from .reporting import ExperimentResult
from .table3_penalty_costs import F_PROB, N_REQUESTS, PENALTY_SET, TOLERANCE_M, _SAMPLERS

__all__ = ["run_fig9"]

_MAP_EXTENT = 600.0
_MAP_CELLS = 13


def _station_density(stations: List[Point]) -> np.ndarray:
    mat = np.zeros((_MAP_CELLS, _MAP_CELLS))
    step = 2 * _MAP_EXTENT / _MAP_CELLS
    for p in stations:
        if abs(p.x) > _MAP_EXTENT or abs(p.y) > _MAP_EXTENT:
            continue
        col = min(int((p.x + _MAP_EXTENT) / step), _MAP_CELLS - 1)
        row = min(int((p.y + _MAP_EXTENT) / step), _MAP_CELLS - 1)
        mat[row, col] += 1
    return mat


def run_fig9(seed: int = 0, distribution: str = "poisson") -> ExperimentResult:
    """Reproduce one Fig. 9 panel set: station scatter per penalty.

    Args:
        seed: RNG seed for the request stream and coin flips.
        distribution: ``uniform``, ``poisson`` or ``normal``.

    Raises:
        ValueError: on an unknown distribution.
    """
    if distribution not in _SAMPLERS:
        raise ValueError(
            f"unknown distribution {distribution!r}; choose from {sorted(_SAMPLERS)}"
        )
    sampler = _SAMPLERS[distribution]
    stream = sampler(np.random.default_rng(seed))
    cost_fn = constant_facility_cost(F_PROB)

    rows: List[List] = []
    notes: List[str] = [
        f"{N_REQUESTS} requests from the {distribution} distribution, "
        f"offline parking at the origin, L = {TOLERANCE_M:.0f} m, seed={seed}",
    ]
    scatters: Dict[str, List[Point]] = {}
    for name, cls in PENALTY_SET.items():
        penalty = cls(tolerance=TOLERANCE_M)
        res = meyerson_placement(
            stream,
            cost_fn,
            np.random.default_rng(seed + 1),
            initial_stations=[Point(0.0, 0.0)],
            penalty=None if isinstance(penalty, NoPenalty) else penalty,
        )
        opened = [res.stations[i] for i in res.online_opened]
        scatters[name] = opened
        radii = [p.distance_to(Point(0, 0)) for p in opened]
        rows.append(
            [
                name,
                len(opened),
                round(float(np.mean(radii)), 1) if radii else 0.0,
                round(float(np.max(radii)), 1) if radii else 0.0,
            ]
        )
        notes.append(f"stations opened, {name}:\n" + heatmap(_station_density(opened)))

    return ExperimentResult(
        experiment_id="Fig. 9",
        title=f"Parking generated per penalty function ({distribution} requests)",
        headers=["penalty", "# opened", "mean radius (m)", "max radius (m)"],
        rows=rows,
        notes=notes,
        extras={"scatters": scatters},
    )
