"""Table V — the main Tier-1 comparison on the city workload.

Five solutions of the same PLP instance (a full weekday's request stream
over the 3x3 km^2 field, uniform-random space costs with mean 10 km):

* **Offline*** — Algorithm 1 with perfect knowledge of the test demand
  (the near-optimal reference; paper: 16 stations, total 393.5 km).
* **Meyerson** — online baseline [25] (paper: 32.9 / 609.3).
* **Online k-means** — [26] with k anchored to the offline count
  (paper: 45.2 / 1754.3).
* **E-sharing (actual)** — Algorithm 2 anchored to the offline solution
  of the *actual historical* demand (paper: 25.3 / 460.0, within ~17% of
  offline and 25% below Meyerson).
* **E-sharing (predicted)** — same, but the anchor is computed on
  LSTM-*predicted* demand (paper: 26.0 / 487.6, ~6% above the actual
  anchor).

Candidate-space note: following Section III-A ("the space of N can be
reduced to filter out those less popular locations"), offline candidates
are the busiest demand cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Dict, List, Tuple

import numpy as np

from ..core import (
    DemandPoint,
    EsharingConfig,
    esharing_placement,
    evaluate_placement,
    meyerson_placement,
    offline_placement,
    online_kmeans_placement,
    uniform_facility_cost,
)
from ..core.result import PlacementResult
from ..datasets.pois import default_city
from ..datasets.synthetic import SyntheticConfig, mobike_like_dataset
from ..datasets.trips import TripDataset
from ..forecast import LstmConfig, LstmForecaster
from ..geo.grid import UniformGrid
from .reporting import ExperimentResult

__all__ = ["run_table5", "Table5Instance", "build_instance"]

MEAN_SPACE_COST_M = 10_000.0
CELL_SIZE_M = 150.0
MAX_CANDIDATES = 120


@dataclass
class Table5Instance:
    """Everything needed to run the five algorithms on one test day."""

    historical_demands: List[DemandPoint]
    predicted_demands: List[DemandPoint]
    test_stream: List
    test_demands: List[DemandPoint]
    historical_sample: np.ndarray
    facility_cost: object
    grid: UniformGrid


def _binned_demands(dataset: TripDataset, grid: UniformGrid, cap: int) -> List[DemandPoint]:
    demand = dataset.demand_grid(grid)
    top = demand.top_cells(cap)
    return [DemandPoint(grid.centroid(cell), float(count)) for cell, count in top if count > 0]


def build_instance(seed: int = 0, volume: int = 1500, train_days: int = 7) -> Table5Instance:
    """Build the shared Table V instance.

    The first ``train_days`` weekdays are history; the next weekday is
    the test day.  Predicted demand scales each historical cell share by
    an LSTM forecast of the test day's total hourly volume, so the
    anchor inherits the model's real prediction error.
    """
    cfg = SyntheticConfig(trips_per_weekday=volume, trips_per_weekend_day=int(volume * 0.75))
    dataset = mobike_like_dataset(seed=seed, days=14, config=cfg)
    grid = UniformGrid(default_city().box, cell_size=CELL_SIZE_M)

    by_day = dataset.split_by_day()
    weekdays = [day for day in by_day if day.weekday() < 5]
    history_days = weekdays[:train_days]
    test_day = weekdays[train_days]
    history = TripDataset([r for day in history_days for r in by_day[day]])
    test = by_day[test_day]

    historical_demands = _binned_demands(history, grid, MAX_CANDIDATES)
    # Per-day average so the historical anchor sees one day's volume.
    historical_demands = [
        DemandPoint(d.location, max(d.weight / len(history_days), 1e-9))
        for d in historical_demands
    ]
    test_demands = _binned_demands(test, grid, MAX_CANDIDATES * 4)

    # LSTM forecast of the test day's total volume, hour by hour.  The
    # series concatenates weekday hours only (the paper trains weekday and
    # weekend models separately), so the forecast continues the weekday
    # regime into the test day.
    day_totals = []
    for day in history_days:
        day_series, _ = by_day[day].hourly_arrival_series(grid, start=day, hours=24)
        day_totals.append(day_series.sum(axis=1))
    totals = np.concatenate(day_totals)
    model = LstmForecaster(
        LstmConfig(lookback=12, hidden_size=16, n_layers=1, epochs=25, seed=seed)
    )
    model.fit(totals)
    predicted_total = float(np.clip(model.forecast(totals, 24).sum(), 1.0, None))
    historical_daily_total = float(totals.sum()) / len(history_days)
    scale = predicted_total / historical_daily_total
    predicted_demands = [
        DemandPoint(d.location, max(d.weight * scale, 1e-9)) for d in historical_demands
    ]

    rng = np.random.default_rng(seed + 99)
    return Table5Instance(
        historical_demands=historical_demands,
        predicted_demands=predicted_demands,
        test_stream=test.destinations(),
        test_demands=test_demands,
        historical_sample=history.destination_array(),
        facility_cost=uniform_facility_cost(MEAN_SPACE_COST_M, rng),
        grid=grid,
    )


def _row(name: str, res: PlacementResult) -> List:
    return [
        name,
        res.n_stations,
        round(res.walking / 1000.0, 1),
        round(res.space / 1000.0, 1),
        round(res.total / 1000.0, 1),
    ]


def run_table5(seed: int = 0, volume: int = 1500) -> ExperimentResult:
    """Reproduce Table V on the synthetic city workload."""
    inst = build_instance(seed=seed, volume=volume)
    cost_fn = inst.facility_cost

    offline_test = offline_placement(inst.test_demands, cost_fn)
    anchor_actual = offline_placement(inst.historical_demands, cost_fn)
    anchor_predicted = offline_placement(inst.predicted_demands, cost_fn)

    mey = meyerson_placement(inst.test_stream, cost_fn, np.random.default_rng(seed + 1))
    # Calibration: [26]'s theoretical phase budget gamma = 3k(1+log2 n)
    # lets the squared-distance rule open a centre on essentially every
    # request before the first cost doubling (min(d^2/f, 1) saturates on
    # metric data), which is even worse than the paper reports.  A budget
    # of ~k/3 reproduces Table V's scale: k-means opens several times more
    # stations than Meyerson at a far higher total cost.
    k_anchor = max(offline_test.n_stations, 1)
    okm = online_kmeans_placement(
        inst.test_stream,
        k=k_anchor,
        facility_cost=cost_fn,
        rng=np.random.default_rng(seed + 2),
        gamma=max(2.0, k_anchor / 3.0),
    )
    es_actual = esharing_placement(
        inst.test_stream, anchor_actual.stations, cost_fn,
        inst.historical_sample, np.random.default_rng(seed + 3),
    )
    es_predicted = esharing_placement(
        inst.test_stream, anchor_predicted.stations, cost_fn,
        inst.historical_sample, np.random.default_rng(seed + 4),
    )

    rows = [
        _row("Offline*", offline_test),
        _row("Meyerson", mey),
        _row("Online k-means", okm),
        _row("E-sharing (actual)", es_actual),
        _row("E-sharing (predicted)", es_predicted),
    ]
    total = {r[0]: r[4] for r in rows}
    vs_offline = 100.0 * (total["E-sharing (actual)"] / total["Offline*"] - 1.0)
    vs_meyerson = 100.0 * (1.0 - total["E-sharing (actual)"] / total["Meyerson"])
    vs_okm = 100.0 * (1.0 - total["E-sharing (actual)"] / total["Online k-means"])
    pred_gap = 100.0 * (total["E-sharing (predicted)"] / total["E-sharing (actual)"] - 1.0)
    n_arrivals = len(inst.test_stream)
    avg_walk = es_actual.walking / max(n_arrivals, 1)
    return ExperimentResult(
        experiment_id="Table V",
        title="PLP comparison: # parking and costs (km) on one test weekday",
        headers=["algorithm", "# parking", "walking", "space", "total"],
        rows=rows,
        notes=[
            f"E-sharing (actual) is {vs_offline:+.0f}% vs offline "
            f"(paper: within ~17-25%)",
            f"E-sharing (actual) is {vs_meyerson:.0f}% below Meyerson (paper: 25%) "
            f"and {vs_okm:.0f}% below online k-means (paper: 74%)",
            f"prediction error adds {pred_gap:+.1f}% (paper: +6%)",
            f"average walking distance {avg_walk:.0f} m per user (paper: ~180 m)",
            f"{n_arrivals} test arrivals, f ~ U(mean {MEAN_SPACE_COST_M / 1000:.0f} km), seed={seed}",
        ],
        extras={
            "offline": offline_test,
            "es_actual": es_actual,
            "es_predicted": es_predicted,
            "meyerson": mey,
            "online_kmeans": okm,
        },
    )
