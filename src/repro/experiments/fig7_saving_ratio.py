"""Fig. 7 — numerical cost-saving ratios of aggregation (Eq. 11).

(a) saving vs ``m`` for fixed ``n`` (quadratic growth as ``m`` shrinks;
the paper highlights m/n = 0.65 => ~50% saving);
(b) saving vs the service/delay cost mix for several ``m``.
"""

from __future__ import annotations

import numpy as np

from ..incentives.charging_cost import ChargingCostParams, saving_ratio_vec
from .reporting import ExperimentResult

__all__ = ["run_fig7a", "run_fig7b"]


def run_fig7a(n: int = 20, seed: int = 0) -> ExperimentResult:
    """Saving ratio vs number of maintenance locations m (fixed n).

    ``seed`` is unused (Eq. 11 is deterministic); accepted for CLI parity.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    params = ChargingCostParams(service_cost=5.0, delay_cost=5.0)
    # One vectorized Eq. 11 pass over every m (bit-identical to the
    # scalar loop — see test_charging_cost's parity case).
    ms = np.arange(1, n + 1)
    ratios = saving_ratio_vec(params, n, ms)
    rows = [
        [int(m), round(int(m) / n, 2), round(float(r), 4)]
        for m, r in zip(ms, ratios)
    ]
    mid = min(rows, key=lambda r: abs(r[1] - 0.65))
    return ExperimentResult(
        experiment_id="Fig. 7a",
        title=f"Saving ratio vs m for n = {n} (Eq. 11)",
        headers=["m", "m/n", "saving ratio"],
        rows=rows,
        notes=[
            f"at m/n = {mid[1]}: saving = {100 * mid[2]:.0f}% (paper: ~50% at m/n = 0.65)",
            "saving grows quadratically as m shrinks (delay term dominates)",
        ],
    )


def run_fig7b(n: int = 20, seed: int = 0) -> ExperimentResult:
    """Saving ratio vs service cost q and delay cost d for several m.

    ``seed`` is unused (Eq. 11 is deterministic); accepted for CLI parity.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    ms = [max(1, n // 4), n // 2, 3 * n // 4]
    m_arr = np.asarray(ms)
    rows = []
    for q in (1.0, 5.0, 20.0):
        for d in (0.5, 5.0, 20.0):
            params = ChargingCostParams(service_cost=q, delay_cost=d)
            ratios = saving_ratio_vec(params, n, m_arr)
            rows.append([q, d] + [round(float(r), 4) for r in ratios])
    return ExperimentResult(
        experiment_id="Fig. 7b",
        title=f"Saving ratio vs (q, d) for n = {n}",
        headers=["q ($)", "d ($)"] + [f"m={m}" for m in ms],
        rows=rows,
        notes=[
            "saving climbs sharply as the delay cost d grows from small values,"
            " slowly as the service cost q grows (paper's Fig. 7b)",
        ],
    )
