"""Fig. 4 — offline [23] vs Meyerson [25] on a random-arrival example.

The paper's illustrative instance: a stream of 100 random arrivals in a
1000x1000 m^2 field with a uniform opening cost of 5000 m (converted from
$5 at 1 $ = 1000 m, consistent with the reported space costs: offline
opens 5 parking at space cost 25000).  Paper figures: offline ~5 stations,
costs 16795 / 25000 / 41795; Meyerson ~9 stations, 25400 / 40000 / 65400
(+56% total).
"""

from __future__ import annotations

import numpy as np

from ..core import (
    constant_facility_cost,
    demand_points_from_stream,
    meyerson_placement,
    offline_placement,
)
from ..geo.points import BoundingBox
from .reporting import ExperimentResult

__all__ = ["run_fig4"]

FIELD_SIDE_M = 1000.0
N_ARRIVALS = 100
OPEN_COST_M = 5000.0


def run_fig4(seed: int = 0, trials: int = 20) -> ExperimentResult:
    """Reproduce Fig. 4's offline-vs-Meyerson comparison.

    Args:
        seed: base RNG seed.
        trials: random instances to average over (the paper shows one
            representative instance; averaging stabilises the ratio).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    box = BoundingBox.square(FIELD_SIDE_M)
    cost_fn = constant_facility_cost(OPEN_COST_M)
    acc = {"offline": np.zeros(4), "meyerson": np.zeros(4)}
    for t in range(trials):
        rng = np.random.default_rng(seed + t)
        stream = box.sample(rng, N_ARRIVALS)
        off = offline_placement(demand_points_from_stream(stream), cost_fn)
        mey = meyerson_placement(stream, cost_fn, np.random.default_rng(seed + 1000 + t))
        for name, res in (("offline", off), ("meyerson", mey)):
            acc[name] += np.array([res.n_stations, res.walking, res.space, res.total])
    rows = []
    for name in ("offline", "meyerson"):
        n, walking, space, total = acc[name] / trials
        rows.append([name, round(n, 1), round(walking, 0), round(space, 0), round(total, 0)])
    increase = 100.0 * (rows[1][4] / rows[0][4] - 1.0)
    return ExperimentResult(
        experiment_id="Fig. 4",
        title="Offline 1.61-factor vs Meyerson online on 100 uniform arrivals",
        headers=["algorithm", "# parking", "walking", "space", "total"],
        rows=rows,
        notes=[
            f"{N_ARRIVALS} arrivals in a {FIELD_SIDE_M:.0f} m square, f = {OPEN_COST_M:.0f} m",
            f"Meyerson total is {increase:.0f}% above offline "
            f"(paper's single instance: +56%)",
            f"averaged over {trials} instances, seed={seed}",
        ],
    )
