"""Shared result containers and ASCII reporting for the experiments.

Every experiment runner returns an :class:`ExperimentResult` whose rows
mirror the corresponding paper table/figure series, so the benchmark
harness can print paper-shaped output and EXPERIMENTS.md can record
paper-vs-measured side by side.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["ExperimentResult", "format_table"]

Cell = Union[str, int, float]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e15:
            return f"{int(cell)}"
        return f"{cell:.2f}" if abs(cell) >= 0.01 else f"{cell:.4f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]]) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    if not headers:
        raise ValueError("headers cannot be empty")
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction.

    Attributes:
        experiment_id: the paper artifact this regenerates (e.g. "Table V").
        title: one-line description.
        headers: column names.
        rows: data rows in the paper's order.
        notes: free-form remarks (substitutions, parameters, seeds).
        extras: named auxiliary payloads (e.g. heatmap matrices) that do
            not fit the tabular shape.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Cell]]
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def to_text(self) -> str:
        """Full printable report."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(format_table(self.headers, self.rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def save_csv(self, path: Union[str, Path]) -> None:
        """Write the rows as CSV (headers first)."""
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(self.headers)
            writer.writerows(self.rows)

    def column(self, name: str) -> List[Cell]:
        """Extract one column by header name.

        Raises:
            KeyError: if the header is unknown.
        """
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}; have {self.headers}") from None
        return [row[idx] for row in self.rows]

    def row_by(self, key_column: str, key: Cell) -> List[Cell]:
        """First row whose ``key_column`` equals ``key``.

        Raises:
            KeyError: if no row matches.
        """
        idx = self.headers.index(key_column)
        for row in self.rows:
            if row[idx] == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r}")
