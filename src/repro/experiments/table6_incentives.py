"""Table VI / Fig. 11 / Fig. 12 — the Tier-2 incentive evaluation.

One simulated service period on the city workload: streaming trips drain
the fleet; Algorithm 3 (with incentive level ``alpha``) relocates
low-energy bikes toward aggregation sites; the operator then runs its
fixed-shift TSP tour.  Reported per ``alpha``: the Table VI cost
breakdown (service / delay / energy / incentives / total), the percentage
of low-energy bikes charged and the tour's moving distance.

Paper's shape to match: incentives collapse the service and delay cost
(fewer sites), raise the charged percentage from ~42% to 80-96%, shorten
the tour, and a *moderate* alpha = 0.4 minimises the total (-47%).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Dict, List, Optional

import numpy as np

from ..core import (
    EsharingPlanner,
    demand_points_from_stream,
    offline_placement,
    uniform_facility_cost,
)
from ..datasets.pois import default_city
from ..datasets.synthetic import SyntheticConfig, mobike_like_dataset
from ..energy.fleet import Fleet
from ..incentives.charging_cost import ChargingCostParams
from ..incentives.mechanism import IncentiveConfig
from ..incentives.user_model import UserPopulation
from ..sim.operator import OperatorConfig
from ..sim.simulator import PeriodReport, SystemSimulator
from .reporting import ExperimentResult

__all__ = ["run_incentive_scenario", "run_table6", "run_fig12", "run_fig11"]

SERVICE_COST = 60.0
N_BIKES = 800


@dataclass
class ScenarioResult:
    """One (alpha, service-cost) cell of the Tier-2 evaluation."""

    alpha: float
    report: PeriodReport
    low_map_before: Dict[int, List[int]]
    low_map_after: Dict[int, List[int]]
    stations: List


def _build_stations(seed: int, volume: int):
    from ..core import DemandPoint
    from ..geo.grid import UniformGrid

    cfg = SyntheticConfig(trips_per_weekday=volume, trips_per_weekend_day=int(volume * 0.75))
    dataset = mobike_like_dataset(seed=seed, days=6, config=cfg)
    by_day = dataset.split_by_day()
    weekdays = [d for d in by_day if d.weekday() < 5]
    history = [r for d in weekdays[:-1] for r in by_day[d]]
    test_trips = list(by_day[weekdays[-1]])
    cost_fn = uniform_facility_cost(10_000.0, np.random.default_rng(seed + 5))
    # Bin historical demand onto the 150 m grid (Section III-A reduction)
    # so the offline anchor runs on ~10^2 weighted cells, not raw trips.
    grid = UniformGrid(default_city().box, cell_size=150.0)
    from ..datasets.trips import TripDataset

    demand = TripDataset(history).demand_grid(grid)
    demands = [
        DemandPoint(grid.centroid(cell), float(count))
        for cell, count in demand.top_cells(120)
        if count > 0
    ]
    anchor = offline_placement(demands, cost_fn)
    historical = np.asarray([(r.end.x, r.end.y) for r in history])
    return anchor, historical, cost_fn, test_trips


def run_incentive_scenario(
    alpha: float,
    seed: int = 0,
    service_cost: float = SERVICE_COST,
    volume: int = 1200,
    working_hours: float = 4.0,
) -> ScenarioResult:
    """Run one full Tier-2 period at the given incentive level.

    Every call rebuilds the identical initial state (same seeds), so
    different ``alpha`` values are directly comparable.
    """
    anchor, historical, cost_fn, test_trips = _build_stations(seed, volume)
    planner = EsharingPlanner(
        anchor.stations, cost_fn, historical, np.random.default_rng(seed + 11)
    )
    fleet = Fleet(planner.stations, n_bikes=N_BIKES, rng=np.random.default_rng(seed + 13))
    params = ChargingCostParams(service_cost=service_cost, delay_cost=5.0, energy_cost=2.0)
    # Rider thresholds scaled to the offer magnitudes v ~ alpha*(q+td)/|L|:
    # a moderate alpha must win over only part of the population.
    population = UserPopulation(
        walk_mean=350.0, walk_std=150.0, reward_mean=6.0, reward_std=4.0
    )
    sim = SystemSimulator(
        planner,
        fleet,
        charging_params=params,
        incentive_config=IncentiveConfig(alpha=alpha, position_cap=10),
        population=population,
        # With incentives on, the operator skips the sparse leftovers
        # ("the operator can skip those locations with only a few ones
        # left", Section IV-C Remarks); without incentives every demand
        # site is its responsibility.
        operator_config=OperatorConfig(
            working_hours=working_hours,
            travel_speed_kmh=12.0,
            service_time_h=0.25,
            min_bikes_to_visit=1 if alpha == 0.0 else 2,
        ),
        rng=np.random.default_rng(seed + 17),
    )
    low_before = fleet.low_energy_map()
    report = sim.run_period(test_trips)
    return ScenarioResult(
        alpha=alpha,
        report=report,
        low_map_before=low_before,
        low_map_after=fleet.low_energy_map(),
        stations=list(fleet.stations),
    )


def run_table6(
    seed: int = 0,
    alphas: Optional[List[float]] = None,
    volume: int = 1200,
) -> ExperimentResult:
    """Reproduce Table VI: cost breakdown per incentive level alpha."""
    alphas = alphas if alphas is not None else [0.0, 1.0, 0.7, 0.4]
    rows = []
    totals = {}
    for alpha in alphas:
        r = run_incentive_scenario(alpha, seed=seed, volume=volume).report
        s = r.service
        rows.append(
            [
                f"alpha={alpha}",
                round(s.service_cost, 0),
                round(s.delay_cost, 0),
                round(s.energy_cost, 0),
                round(s.incentives_paid, 0),
                round(s.total_cost, 0),
                round(s.percent_charged, 1),
                round(s.moving_distance_km, 1),
            ]
        )
        totals[alpha] = s.total_cost
    baseline = totals.get(0.0)
    best_alpha = min(totals, key=totals.get)
    saving = 100.0 * (1.0 - totals[best_alpha] / baseline) if baseline else 0.0
    return ExperimentResult(
        experiment_id="Table VI",
        title="Charging cost breakdown ($) and % charged per incentive level",
        headers=[
            "level", "service", "delay", "energy", "incentives",
            "total", "% charged", "distance (km)",
        ],
        rows=rows,
        notes=[
            f"best alpha = {best_alpha} saves {saving:.0f}% of total cost "
            f"(paper: alpha=0.4 saves 47%)",
            f"q = ${SERVICE_COST:.0f}/stop, d = $5, b = $2; seed={seed}",
        ],
        extras={"totals": totals},
    )


def run_fig12(
    seed: int = 0,
    service_costs: Optional[List[float]] = None,
    alphas: Optional[List[float]] = None,
    volume: int = 1200,
) -> ExperimentResult:
    """Reproduce Fig. 12: total cost and % charged vs service cost, per alpha."""
    service_costs = service_costs if service_costs is not None else [10.0, 30.0, 60.0]
    alphas = alphas if alphas is not None else [0.0, 0.4, 0.7, 1.0]
    rows = []
    for q in service_costs:
        for alpha in alphas:
            s = run_incentive_scenario(alpha, seed=seed, service_cost=q, volume=volume).report.service
            rows.append(
                [q, alpha, round(s.total_cost, 0), round(s.percent_charged, 1)]
            )
    return ExperimentResult(
        experiment_id="Fig. 12",
        title="Total charging cost and % charged vs service cost, per alpha",
        headers=["service cost q ($)", "alpha", "total ($)", "% charged"],
        rows=rows,
        notes=[
            "incentives help most where the per-stop service cost is high "
            "(populated downtown); % charged grows with alpha",
            f"seed={seed}",
        ],
    )


def run_fig11(seed: int = 0, volume: int = 1200) -> ExperimentResult:
    """Reproduce Fig. 11: low-energy distribution before/after incentives.

    Rows give per-station low-energy counts without (alpha = 0) and with
    (alpha = 0.7) incentives at the moment the operator starts its tour;
    the notes render the two spatial densities as ASCII heatmaps and the
    extras carry the raw maps.
    """
    import numpy as np

    from .ascii_plots import heatmap

    base = run_incentive_scenario(0.0, seed=seed, volume=volume)
    inc = run_incentive_scenario(0.7, seed=seed, volume=volume)

    def pre_tour_counts(s: ScenarioResult) -> Dict[int, int]:
        """Low-energy bikes per station at the moment the tour starts:
        what the operator charged there plus what was left low."""
        counts: Dict[int, int] = {}
        service = s.report.service
        for st, charged in zip(service.served_stations, service.charged_per_station):
            counts[st] = counts.get(st, 0) + charged
        for st, bikes in s.low_map_after.items():
            counts[st] = counts.get(st, 0) + len(bikes)
        return counts

    def density(s: ScenarioResult, cells: int = 14) -> "np.ndarray":
        """At-tour-time low-energy counts binned onto a coarse map grid."""
        box = default_city().box
        mat = np.zeros((cells, cells))
        step_x = box.width / cells
        step_y = box.height / cells
        for st, count in pre_tour_counts(s).items():
            p = s.stations[st]
            col = min(int((p.x - box.min_x) / step_x), cells - 1)
            row = min(int((p.y - box.min_y) / step_y), cells - 1)
            mat[row, col] += count
        return mat

    base_counts = pre_tour_counts(base)
    inc_counts = pre_tour_counts(inc)
    rows = []
    for st in range(len(base.stations)):
        before = base_counts.get(st, 0)
        after = inc_counts.get(st, 0) if st < len(inc.stations) else 0
        if before == 0 and after == 0:
            continue
        rows.append([st, before, after])
    base_sites = base.report.service.stations_needing_service
    inc_sites = inc.report.service.stations_needing_service
    notes = [
        f"demand sites at tour time: {base_sites} (alpha=0) vs {inc_sites} (alpha=0.7)",
        f"tour distance: {base.report.service.moving_distance_km:.1f} km vs "
        f"{inc.report.service.moving_distance_km:.1f} km",
        f"seed={seed}",
        "low-energy density, alpha=0:\n" + heatmap(density(base)),
        "low-energy density, alpha=0.7 (aggregated):\n" + heatmap(density(inc)),
    ]
    return ExperimentResult(
        experiment_id="Fig. 11",
        title="Low-energy bikes per station: no incentives vs alpha = 0.7",
        headers=["station", "low bikes (alpha=0)", "low bikes (alpha=0.7)"],
        rows=rows,
        notes=notes,
        extras={"before": base.low_map_after, "after": inc.low_map_after},
    )
