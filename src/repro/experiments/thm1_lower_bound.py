"""Theorem 1 — empirical competitive-ratio growth on the adversarial instance.

Runs Meyerson's online algorithm on the geometric request sequence
``(2^-i, 2^-i)`` with ``f = 2`` and tabulates the ratio of online to
offline-optimal cost as the instance grows.  The ratio is bounded away
from 1 and the instance demonstrates why no online algorithm can be
O(1)-competitive (the proof's limit needs unbounded precision; the table
shows the finite-n trend).
"""

from __future__ import annotations

import numpy as np

from ..core import (
    THEOREM1_FACILITY_COST,
    competitive_ratio,
    constant_facility_cost,
    meyerson_placement,
    theorem1_offline_optimum,
    theorem1_requests,
)
from .reporting import ExperimentResult

__all__ = ["run_thm1"]


def run_thm1(max_n: int = 30, trials: int = 50, seed: int = 0) -> ExperimentResult:
    """Tabulate the mean competitive ratio vs instance size.

    Args:
        max_n: largest instance size.
        trials: random runs averaged per size.
        seed: base RNG seed.
    """
    if max_n < 2:
        raise ValueError(f"max_n must be >= 2, got {max_n}")
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    cost_fn = constant_facility_cost(THEOREM1_FACILITY_COST)
    rows = []
    for n in range(2, max_n + 1, max(1, (max_n - 2) // 10)):
        reqs = theorem1_requests(n)
        ratios = []
        stations = []
        for t in range(trials):
            res = meyerson_placement(reqs, cost_fn, np.random.default_rng(seed + t))
            ratios.append(competitive_ratio(res, n))
            stations.append(res.n_stations)
        rows.append(
            [
                n,
                round(theorem1_offline_optimum(n), 4),
                round(float(np.mean(ratios)), 3),
                round(float(np.mean(stations)), 2),
            ]
        )
    return ExperimentResult(
        experiment_id="Theorem 1",
        title="Competitive ratio of online placement on the adversarial instance",
        headers=["n", "offline optimum", "mean online/offline ratio", "mean # stations"],
        rows=rows,
        notes=[
            "offline optimum: single parking at the origin, cost 2 + sqrt(2) - sqrt(2)/2^n",
            f"f = {THEOREM1_FACILITY_COST}, {trials} trials per size, seed={seed}",
        ],
    )
