"""Fig. 8 — actual vs LSTM-predicted hourly requests (weekday & weekend).

Trains the best LSTM configuration on the train split of each regime and
tabulates the walk-forward predictions against the held-out actuals —
the two series the paper plots.
"""

from __future__ import annotations

import numpy as np

from ..datasets.pois import default_city
from ..datasets.synthetic import SyntheticConfig, mobike_like_dataset
from ..forecast import (
    LstmConfig,
    LstmForecaster,
    build_demand_series,
    rmse,
    rolling_forecasts,
    weekday_weekend_split,
)
from ..geo.grid import UniformGrid
from .ascii_plots import sparkline
from .reporting import ExperimentResult

__all__ = ["run_fig8"]


def run_fig8(seed: int = 0, epochs: int = 40, hours: int = 24) -> ExperimentResult:
    """Reproduce Fig. 8: one day of actual vs predicted for each regime.

    Args:
        seed: dataset / initialisation seed.
        epochs: LSTM training epochs.
        hours: how many test hours to tabulate per regime.
    """
    cfg = SyntheticConfig(trips_per_weekday=900, trips_per_weekend_day=700)
    dataset = mobike_like_dataset(seed=seed, days=14, config=cfg)
    grid = UniformGrid(default_city().box, cell_size=300.0)
    series = build_demand_series(dataset, grid)
    (wd_train, wd_test), (we_train, we_test) = weekday_weekend_split(series)

    rows = []
    errors = {}
    curves = {}
    for regime, train, test in (
        ("weekday", wd_train, wd_test),
        ("weekend", we_train, we_test),
    ):
        model = LstmForecaster(
            LstmConfig(lookback=12, hidden_size=24, n_layers=2, epochs=epochs, seed=seed)
        )
        model.fit(train)
        pred, actual = rolling_forecasts(model, train, test, horizon=1)
        errors[regime] = rmse(pred, actual)
        curves[regime] = (actual[:hours], pred[:hours])
        for h in range(min(hours, len(actual))):
            rows.append([regime, h, round(float(actual[h]), 1), round(float(pred[h]), 1)])

    notes = [
        f"weekday RMSE = {errors['weekday']:.2f}, weekend RMSE = {errors['weekend']:.2f}",
        "weekday shows the commute double peak, weekend the broad afternoon bump",
        f"LSTM: 2-layer, back=12, epochs={epochs}, seed={seed}",
    ]
    for regime, (actual, pred) in curves.items():
        notes.append(f"{regime} actual    {sparkline(actual)}")
        notes.append(f"{regime} predicted {sparkline(pred)}")
    return ExperimentResult(
        experiment_id="Fig. 8",
        title="Actual vs predicted hourly requests (best LSTM)",
        headers=["regime", "test hour", "actual", "predicted"],
        rows=rows,
        notes=notes,
        extras={"rmse": errors, "curves": curves},
    )
