"""Fig. 6 — the proposed online algorithm on the Fig. 4 instance.

(a) On arrivals from the historical distribution, Algorithm 2 opens few
stations beyond its offline anchor and lands well below Meyerson's total
(paper: 7 stations, 15542 / 35000 / 50542, a 23% reduction from [25]).

(b) When new arrivals come from an unknown distribution, the KS test
detects the shift and the algorithm opens extra online stations near the
new demand (paper: 3 more online stations).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core import (
    constant_facility_cost,
    demand_points_from_stream,
    esharing_placement,
    meyerson_placement,
    offline_placement,
    EsharingConfig,
)
from ..geo.points import BoundingBox, Point
from .reporting import ExperimentResult

__all__ = ["run_fig6"]

FIELD_SIDE_M = 1000.0
N_ARRIVALS = 100
OPEN_COST_M = 5000.0


def _clustered(rng: np.random.Generator, centers: List[Point], n: int,
               box: BoundingBox, sigma: float = 90.0) -> List[Point]:
    out = []
    for _ in range(n):
        c = centers[int(rng.integers(len(centers)))]
        off = rng.normal(0, sigma, size=2)
        out.append(box.clamp(c.translate(float(off[0]), float(off[1]))))
    return out


def run_fig6(seed: int = 0, trials: int = 20) -> ExperimentResult:
    """Reproduce Fig. 6: E-Sharing vs Meyerson, plus the unknown-distribution case."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    box = BoundingBox.square(FIELD_SIDE_M)
    cost_fn = constant_facility_cost(OPEN_COST_M)
    rng0 = np.random.default_rng(seed)
    centers = [Point(250, 250), Point(750, 300), Point(500, 800)]
    historical_pts = _clustered(rng0, centers, 300, box)
    offline = offline_placement(demand_points_from_stream(historical_pts), cost_fn)
    historical = np.asarray([(p.x, p.y) for p in historical_pts])

    acc = {"meyerson": np.zeros(4), "esharing": np.zeros(4)}
    online_opened_known = 0.0
    for t in range(trials):
        rng = np.random.default_rng(seed + 10 + t)
        stream = _clustered(rng, centers, N_ARRIVALS, box)
        mey = meyerson_placement(stream, cost_fn, np.random.default_rng(seed + 100 + t))
        es = esharing_placement(
            stream, offline.stations, cost_fn, historical,
            np.random.default_rng(seed + 200 + t),
        )
        acc["meyerson"] += np.array([mey.n_stations, mey.walking, mey.space, mey.total])
        acc["esharing"] += np.array([es.n_stations, es.walking, es.space, es.total])
        online_opened_known += len(es.online_opened)

    # (b) arrivals from an unknown hotspot.
    online_opened_unknown = 0.0
    for t in range(trials):
        rng = np.random.default_rng(seed + 300 + t)
        surge = _clustered(rng, [Point(900, 80)], N_ARRIVALS, box, sigma=40.0)
        es = esharing_placement(
            surge, offline.stations, cost_fn, historical,
            np.random.default_rng(seed + 400 + t),
        )
        online_opened_unknown += len(es.online_opened)

    rows = []
    for name in ("meyerson", "esharing"):
        n, walking, space, total = acc[name] / trials
        rows.append([name, round(n, 1), round(walking, 0), round(space, 0), round(total, 0)])
    reduction = 100.0 * (1.0 - rows[1][4] / rows[0][4])
    return ExperimentResult(
        experiment_id="Fig. 6",
        title="E-Sharing (Algorithm 2) vs Meyerson on clustered arrivals",
        headers=["algorithm", "# parking", "walking", "space", "total"],
        rows=rows,
        notes=[
            f"E-Sharing total is {reduction:.0f}% below Meyerson (paper: 23%)",
            f"(a) known distribution: {online_opened_known / trials:.1f} stations opened online on average",
            f"(b) unknown distribution: {online_opened_unknown / trials:.1f} stations opened online on average (paper: 3)",
            f"offline anchor: {offline.n_stations} stations; averaged over {trials} trials, seed={seed}",
        ],
        extras={"offline_anchor": offline},
    )
