"""Experiment runners — one per table and figure of the paper.

Each ``run_*`` function regenerates the corresponding artifact and
returns an :class:`~repro.experiments.reporting.ExperimentResult` whose
rows mirror the paper's table/series.  ``EXPERIMENTS`` maps experiment
ids to their runners for the CLI and the benchmark harness.
"""

from typing import Callable, Dict

from .reporting import ExperimentResult, format_table
from .fig4_example import run_fig4
from .fig5_penalty_shapes import run_fig5
from .fig6_esharing_example import run_fig6
from .fig7_saving_ratio import run_fig7a, run_fig7b
from .fig8_actual_vs_predicted import run_fig8
from .fig10_cost_vs_parking import run_fig10
from .table2_prediction import run_table2
from .table3_penalty_costs import run_table3
from .table4_ks_similarity import run_table4
from .table5_plp_comparison import run_table5
from .table6_incentives import run_fig11, run_fig12, run_table6
from .thm1_lower_bound import run_thm1
from .endtoend import run_pipeline, run_pipeline_sweep
from .fig9_penalty_scatter import run_fig9

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7a": run_fig7a,
    "fig7b": run_fig7b,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "thm1": run_thm1,
    "pipeline": run_pipeline,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "format_table",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7a",
    "run_fig7b",
    "run_fig8",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_thm1",
    "run_pipeline",
    "run_pipeline_sweep",
    "run_fig9",
]
