"""Fig. 10 — total cost vs number of parking, per algorithm.

The paper selects random grid sub-areas and solves an independent PLP in
each, plotting (number of parking, total cost) per algorithm — offline,
Meyerson and E-Sharing (actual and predicted demand); online k-means is
"not plotted due to its poor performance" in (b).  The expected shape:
E-Sharing's points hug the offline frontier; Meyerson sits above it;
predictions add only a small bias.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core import (
    DemandPoint,
    esharing_placement,
    demand_points_from_stream,
    meyerson_placement,
    offline_placement,
    online_kmeans_placement,
    uniform_facility_cost,
)
from ..datasets.pois import default_city
from ..datasets.synthetic import SyntheticConfig, mobike_like_dataset
from ..geo.grid import UniformGrid
from ..geo.points import BoundingBox
from .reporting import ExperimentResult

__all__ = ["run_fig10"]

WINDOW_SIDE_M = 1200.0
MEAN_SPACE_COST_M = 10_000.0


def run_fig10(seed: int = 0, n_windows: int = 8, volume: int = 1500) -> ExperimentResult:
    """Reproduce Fig. 10's per-window cost/parking scatter.

    Args:
        seed: dataset and algorithm seed.
        n_windows: number of random sub-areas (points per series).
        volume: weekday trip volume of the underlying workload.
    """
    if n_windows <= 0:
        raise ValueError(f"n_windows must be positive, got {n_windows}")
    cfg = SyntheticConfig(trips_per_weekday=volume, trips_per_weekend_day=int(volume * 0.75))
    dataset = mobike_like_dataset(seed=seed, days=8, config=cfg)
    city = default_city()
    rng = np.random.default_rng(seed)
    cost_fn = uniform_facility_cost(MEAN_SPACE_COST_M, np.random.default_rng(seed + 7))

    by_day = dataset.split_by_day()
    weekdays = [d for d in by_day if d.weekday() < 5]
    history_days = weekdays[:-1]
    history = [r for d in history_days for r in by_day[d]]
    test = by_day[weekdays[-1]]
    grid = UniformGrid(city.box, cell_size=150.0)

    def binned(points, divisor=1.0, cap=80):
        from ..geo.grid import DemandGrid

        demand = DemandGrid(grid)
        demand.add_many(points)
        return [
            DemandPoint(grid.centroid(cell), max(count / divisor, 1e-9))
            for cell, count in demand.top_cells(cap)
            if count > 0
        ]

    rows: List[List] = []
    for w in range(n_windows):
        ox = rng.uniform(city.box.min_x, city.box.max_x - WINDOW_SIDE_M)
        oy = rng.uniform(city.box.min_y, city.box.max_y - WINDOW_SIDE_M)
        window = BoundingBox(ox, oy, ox + WINDOW_SIDE_M, oy + WINDOW_SIDE_M)
        hist_stream = [r.end for r in history if window.contains(r.end)]
        test_stream = [r.end for r in test if window.contains(r.end)]
        if len(hist_stream) < 30 or len(test_stream) < 20:
            continue
        # The anchor sees one day's worth of binned historical demand —
        # same protocol as the Table V instance.
        offline = offline_placement(binned(test_stream), cost_fn)
        anchor = offline_placement(
            binned(hist_stream, divisor=float(len(history_days))), cost_fn
        )
        historical = np.asarray([(p.x, p.y) for p in hist_stream])
        mey = meyerson_placement(test_stream, cost_fn, np.random.default_rng(seed + 100 + w))
        okm = online_kmeans_placement(
            test_stream, k=max(offline.n_stations, 1), facility_cost=cost_fn,
            rng=np.random.default_rng(seed + 200 + w),
            gamma=max(2.0, offline.n_stations / 3.0),
        )
        es = esharing_placement(
            test_stream, anchor.stations, cost_fn, historical,
            np.random.default_rng(seed + 300 + w),
        )
        for name, res in (
            ("offline", offline),
            ("meyerson", mey),
            ("online_kmeans", okm),
            ("esharing", es),
        ):
            rows.append([w, name, res.n_stations, round(res.total / 1000.0, 1)])

    by_algo = {}
    for row in rows:
        by_algo.setdefault(row[1], []).append(row[3])
    means = {k: float(np.mean(v)) for k, v in by_algo.items()}
    return ExperimentResult(
        experiment_id="Fig. 10",
        title="Total cost (km) vs # parking per random sub-area",
        headers=["window", "algorithm", "# parking", "total (km)"],
        rows=rows,
        notes=[
            f"mean totals (km): " + ", ".join(f"{k}={v:.0f}" for k, v in sorted(means.items())),
            "expected shape: esharing hugs the offline frontier, meyerson above, "
            "online k-means far above",
            f"{WINDOW_SIDE_M:.0f} m windows, seed={seed}",
        ],
        extras={"means": means},
    )
