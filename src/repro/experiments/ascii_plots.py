"""Terminal-friendly renderings of the paper's figures.

The reproduction environment has no plotting stack, so the figure-shaped
experiments render as Unicode: :func:`sparkline` for time series
(Fig. 8's actual-vs-predicted curves), :func:`heatmap` for spatial
matrices (Fig. 11's low-energy density), and :func:`bar_chart` for
grouped comparisons (Table VI's cost breakdown).  All functions are pure
string builders — deterministic and easily asserted in tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["sparkline", "heatmap", "bar_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_HEAT_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a series as a one-line Unicode sparkline.

    Args:
        values: the series (at least one value).
        width: optionally resample to this many characters.

    Raises:
        ValueError: on empty input or a non-positive width.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("nothing to plot")
    if width is not None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        idx = np.linspace(0, arr.size - 1, width)
        arr = np.interp(idx, np.arange(arr.size), arr)
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return _SPARK_LEVELS[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(v))] for v in scaled)


def heatmap(matrix: np.ndarray, legend: bool = True) -> str:
    """Render a 2-D non-negative matrix as an ASCII density plot.

    Row 0 is drawn at the *bottom* (matching map coordinates where the
    y-axis grows upward).

    Raises:
        ValueError: on a non-2-D or empty matrix.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.size == 0:
        raise ValueError(f"expected a non-empty 2-D matrix, got shape {arr.shape}")
    hi = float(arr.max())
    lines: List[str] = []
    for row in arr[::-1]:
        if hi <= 0:
            lines.append(_HEAT_LEVELS[0] * arr.shape[1])
            continue
        scaled = np.clip(row / hi, 0.0, 1.0) * (len(_HEAT_LEVELS) - 1)
        lines.append("".join(_HEAT_LEVELS[int(round(v))] for v in scaled))
    if legend:
        lines.append(f"[min=0 max={hi:g}; '{_HEAT_LEVELS[0]}' low .. '{_HEAT_LEVELS[-1]}' high]")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars scaled to the largest value.

    Raises:
        ValueError: on length mismatch, empty input, non-positive width,
            or negative values.
    """
    labels = list(labels)
    vals = np.asarray(list(values), dtype=float)
    if len(labels) != vals.size:
        raise ValueError(f"{len(labels)} labels but {vals.size} values")
    if vals.size == 0:
        raise ValueError("nothing to plot")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if np.any(vals < 0):
        raise ValueError("bar_chart requires non-negative values")
    hi = float(vals.max())
    label_w = max(len(l) for l in labels)
    lines = []
    for label, v in zip(labels, vals):
        n = 0 if hi == 0 else int(round(v / hi * width))
        bar = "█" * n
        lines.append(f"{label.ljust(label_w)} | {bar} {v:g}{unit}")
    return "\n".join(lines)
