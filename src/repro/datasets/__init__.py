"""Trip datasets: Mobike CSV schema, synthetic city workloads, POI models."""

from .trips import TripDataset, TripRecord
from .pois import POI, CityModel, POICategory, default_city
from .synthetic import SyntheticConfig, generate_day, generate_trips, mobike_like_dataset
from .mobike import (
    BEIJING_CENTER,
    MOBIKE_HEADER,
    QuarantinedRow,
    QuarantineReport,
    load_mobike_csv,
    save_mobike_csv,
)
from .scenarios import DemandEvent, Scenario
from .statistics import DatasetStats, describe

__all__ = [
    "TripDataset",
    "TripRecord",
    "POI",
    "CityModel",
    "POICategory",
    "default_city",
    "SyntheticConfig",
    "generate_day",
    "generate_trips",
    "mobike_like_dataset",
    "BEIJING_CENTER",
    "MOBIKE_HEADER",
    "QuarantinedRow",
    "QuarantineReport",
    "load_mobike_csv",
    "save_mobike_csv",
    "DemandEvent",
    "Scenario",
    "DatasetStats",
    "describe",
]
