"""Points of interest and the synthetic city model.

Section II motivates E-Sharing with demand clustered around POIs — subway
stations, residential areas, universities, recreation — whose relative
pull differs between weekdays and weekends (validated by the KS test in
Table IV).  :class:`CityModel` encodes a study region with a set of POIs,
each carrying weekday/weekend attraction weights and an hourly activity
profile; the synthetic trip generator samples destinations from the
resulting mixture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..geo.points import BoundingBox, Point

__all__ = ["POICategory", "POI", "CityModel", "default_city"]


# Hourly activity profiles (fraction of daily demand per hour, un-normalised).
# Shapes follow the classic bike-share pattern: commute double peak on
# weekdays, single broad afternoon bump on weekends (cf. Fig. 8).
_WEEKDAY_PROFILE = np.array(
    [1, 1, 1, 1, 2, 4, 10, 22, 30, 18, 10, 9, 12, 10, 8, 9, 14, 26, 32, 20, 12, 8, 4, 2],
    dtype=float,
)
_WEEKEND_PROFILE = np.array(
    [2, 1, 1, 1, 1, 2, 4, 7, 11, 16, 20, 22, 22, 23, 24, 24, 22, 20, 18, 15, 12, 9, 6, 3],
    dtype=float,
)


@dataclass(frozen=True)
class POICategory:
    """A class of point-of-interest with its demand characteristics.

    Attributes:
        name: category label (e.g. ``"subway"``).
        weekday_weight: relative attraction on weekdays.
        weekend_weight: relative attraction on weekends.
        spread: standard deviation (m) of destinations around the POI.
    """

    name: str
    weekday_weight: float
    weekend_weight: float
    spread: float


SUBWAY = POICategory("subway", weekday_weight=3.0, weekend_weight=1.0, spread=120.0)
OFFICE = POICategory("office", weekday_weight=2.5, weekend_weight=0.3, spread=180.0)
RESIDENTIAL = POICategory("residential", weekday_weight=2.0, weekend_weight=1.6, spread=250.0)
UNIVERSITY = POICategory("university", weekday_weight=1.5, weekend_weight=0.8, spread=160.0)
PARK = POICategory("park", weekday_weight=0.4, weekend_weight=2.5, spread=300.0)
MALL = POICategory("mall", weekday_weight=0.8, weekend_weight=2.8, spread=200.0)
RESTAURANT = POICategory("restaurant", weekday_weight=1.0, weekend_weight=2.0, spread=140.0)


@dataclass(frozen=True)
class POI:
    """A concrete point of interest inside the study region."""

    location: Point
    category: POICategory

    def weight(self, weekend: bool) -> float:
        """Attraction weight for the given day type."""
        return self.category.weekend_weight if weekend else self.category.weekday_weight


@dataclass
class CityModel:
    """A study region plus its POIs and hourly demand profiles."""

    box: BoundingBox
    pois: List[POI] = field(default_factory=list)

    def __post_init__(self) -> None:
        for poi in self.pois:
            if not self.box.contains(poi.location):
                raise ValueError(f"POI at {poi.location} outside the study region")

    def hourly_profile(self, weekend: bool) -> np.ndarray:
        """Normalised fraction of daily demand per hour (sums to 1)."""
        profile = _WEEKEND_PROFILE if weekend else _WEEKDAY_PROFILE
        return profile / profile.sum()

    def poi_weights(self, weekend: bool) -> np.ndarray:
        """Normalised attraction weights of all POIs for the day type.

        Raises:
            ValueError: if the city has no POIs.
        """
        if not self.pois:
            raise ValueError("city model has no POIs")
        w = np.asarray([p.weight(weekend) for p in self.pois], dtype=float)
        total = w.sum()
        if total <= 0:
            raise ValueError("all POI weights are zero for this day type")
        return w / total

    def sample_destination(
        self, rng: np.random.Generator, weekend: bool, noise_floor: float = 0.08
    ) -> Point:
        """Sample one destination from the POI mixture.

        With probability ``noise_floor`` the destination is uniform in the
        region (background demand); otherwise it is Gaussian around a POI
        drawn by attraction weight.
        """
        if rng.uniform() < noise_floor:
            return self.box.sample(rng, 1)[0]
        weights = self.poi_weights(weekend)
        poi = self.pois[int(rng.choice(len(self.pois), p=weights))]
        offset = rng.normal(0.0, poi.category.spread, size=2)
        return self.box.clamp(poi.location.translate(float(offset[0]), float(offset[1])))


def default_city(side: float = 3000.0, seed: int = 7) -> CityModel:
    """A Beijing-downtown-like 3x3 km^2 synthetic city (Section V field).

    Lays out a deterministic arrangement of subway stops, office blocks,
    residential clusters, a university, parks, malls and restaurants whose
    weekday/weekend weights reproduce the demand-regime shift that Table IV
    measures on the real Mobike data.
    """
    rng = np.random.default_rng(seed)
    box = BoundingBox.square(side)

    def at(fx: float, fy: float) -> Point:
        return Point(box.min_x + fx * side, box.min_y + fy * side)

    pois = [
        POI(at(0.22, 0.30), SUBWAY),
        POI(at(0.68, 0.72), SUBWAY),
        POI(at(0.50, 0.10), SUBWAY),
        POI(at(0.30, 0.65), OFFICE),
        POI(at(0.42, 0.58), OFFICE),
        POI(at(0.58, 0.62), OFFICE),
        POI(at(0.12, 0.80), RESIDENTIAL),
        POI(at(0.85, 0.25), RESIDENTIAL),
        POI(at(0.80, 0.88), RESIDENTIAL),
        POI(at(0.15, 0.15), RESIDENTIAL),
        POI(at(0.62, 0.35), UNIVERSITY),
        POI(at(0.35, 0.90), PARK),
        POI(at(0.90, 0.55), PARK),
        POI(at(0.48, 0.40), MALL),
        POI(at(0.75, 0.10), MALL),
        POI(at(0.25, 0.48), RESTAURANT),
        POI(at(0.55, 0.80), RESTAURANT),
    ]
    # Jitter the layout slightly so different seeds give different cities
    # while the default stays deterministic.
    jittered = []
    for poi in pois:
        offset = rng.normal(0.0, side * 0.01, size=2)
        loc = box.clamp(poi.location.translate(float(offset[0]), float(offset[1])))
        jittered.append(POI(loc, poi.category))
    return CityModel(box=box, pois=jittered)
