"""Trip records and trip datasets.

The Mobike dataset schema (Section V) is::

    (order id, user id, bike id, bike type, starting time,
     starting location, ending location)

with locations geohashed.  :class:`TripRecord` mirrors that schema with
locations decoded into planar metres via a study-region projection, and
:class:`TripDataset` adds the slicing/binning operations the experiments
need (day/hour windows, destination extraction, per-grid arrival series).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from datetime import datetime, timedelta
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.grid import DemandGrid, UniformGrid
from ..geo.points import BoundingBox, Point

__all__ = ["TripRecord", "TripDataset"]


@dataclass(frozen=True)
class TripRecord:
    """One bike trip, locations already projected to planar metres.

    ``geodesic_m`` is the great-circle trip length when the source
    carried geographic coordinates (the Mobike CSV reader fills it in
    one vectorized pass); ``None`` for synthetic planar-native trips.

    ``battery`` is the bike's self-reported charge fraction at pickup
    when the feed carries telemetry; ``None`` when absent.  It is
    advisory (the fleet model owns the authoritative battery state) but
    validated at the ingest boundary — real feeds occasionally report
    impossible levels, and :class:`repro.guard.TripValidator` rejects
    anything outside ``[0, 1]``.
    """

    order_id: int
    user_id: int
    bike_id: int
    bike_type: int
    start_time: datetime
    start: Point
    end: Point
    geodesic_m: Optional[float] = None
    battery: Optional[float] = None

    @property
    def distance(self) -> float:
        """Straight-line trip length in metres."""
        return self.start.distance_to(self.end)

    def with_end(self, end: Point) -> "TripRecord":
        """Copy of the record with a different destination."""
        return replace(self, end=end)


class TripDataset:
    """An ordered collection of :class:`TripRecord`.

    Records are kept sorted by ``start_time`` so streaming consumers (the
    online algorithms) see trips in arrival order.
    """

    def __init__(self, records: Iterable[TripRecord]) -> None:
        self._records: List[TripRecord] = sorted(records, key=lambda r: r.start_time)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TripRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TripRecord:
        return self._records[index]

    @property
    def records(self) -> List[TripRecord]:
        """The underlying (sorted) record list — treat as read-only."""
        return self._records

    @property
    def span(self) -> Tuple[datetime, datetime]:
        """``(first, last)`` start times.

        Raises:
            ValueError: if the dataset is empty.
        """
        if not self._records:
            raise ValueError("empty dataset has no time span")
        return self._records[0].start_time, self._records[-1].start_time

    def filter(self, predicate: Callable[[TripRecord], bool]) -> "TripDataset":
        """A new dataset keeping records where ``predicate`` holds."""
        return TripDataset(r for r in self._records if predicate(r))

    def between(self, start: datetime, end: datetime) -> "TripDataset":
        """Records with ``start <= start_time < end``."""
        return self.filter(lambda r: start <= r.start_time < end)

    def on_weekday(self, weekday: int) -> "TripDataset":
        """Records on a given weekday (0=Mon .. 6=Sun).

        Raises:
            ValueError: if ``weekday`` is outside 0..6.
        """
        if not 0 <= weekday <= 6:
            raise ValueError(f"weekday must be 0..6, got {weekday}")
        return self.filter(lambda r: r.start_time.weekday() == weekday)

    def in_hour(self, hour: int) -> "TripDataset":
        """Records starting within a given hour of day (0..23)."""
        if not 0 <= hour <= 23:
            raise ValueError(f"hour must be 0..23, got {hour}")
        return self.filter(lambda r: r.start_time.hour == hour)

    def destinations(self) -> List[Point]:
        """Trip destinations in arrival order — the request stream of P1."""
        return [r.end for r in self._records]

    def origins(self) -> List[Point]:
        """Trip origins in arrival order."""
        return [r.start for r in self._records]

    def destination_array(self) -> np.ndarray:
        """Destinations as an ``(n, 2)`` array for the KS test."""
        if not self._records:
            return np.empty((0, 2), dtype=float)
        return np.asarray([(r.end.x, r.end.y) for r in self._records], dtype=float)

    def bounding_box(self, margin: float = 0.0) -> BoundingBox:
        """Tightest box around all origins and destinations, plus margin."""
        pts = [r.start for r in self._records] + [r.end for r in self._records]
        return BoundingBox.from_points(pts).expand(margin)

    def demand_grid(self, grid: UniformGrid) -> DemandGrid:
        """Bin destinations into ``grid`` cells (the ``a_j`` weights).

        Destinations falling outside the grid's box are clamped onto it,
        matching the paper's aggregation of the geohashed field.
        """
        demand = DemandGrid(grid)
        for r in self._records:
            demand.add(grid.box.clamp(r.end))
        return demand

    def hourly_arrival_series(
        self,
        grid: UniformGrid,
        start: Optional[datetime] = None,
        hours: Optional[int] = None,
    ) -> Tuple[np.ndarray, List[datetime]]:
        """Per-cell hourly arrival counts.

        Returns:
            ``(series, timestamps)`` where ``series`` has shape
            ``(hours, n_cells)`` in row-major cell order and
            ``timestamps[i]`` is the start of hour ``i``.  This is the
            supervised time series the prediction engine learns from.
        """
        if not self._records:
            raise ValueError("cannot build a series from an empty dataset")
        first, last = self.span
        t0 = (start or first).replace(minute=0, second=0, microsecond=0)
        if hours is None:
            hours = int((last - t0).total_seconds() // 3600) + 1
        if hours <= 0:
            raise ValueError(f"hours must be positive, got {hours}")
        n_cells = len(grid)
        series = np.zeros((hours, n_cells), dtype=float)
        for r in self._records:
            offset = int((r.start_time - t0).total_seconds() // 3600)
            if not 0 <= offset < hours:
                continue
            cell = grid.cell_of(grid.box.clamp(r.end))
            series[offset, cell.row * grid.n_cols + cell.col] += 1.0
        stamps = [t0 + timedelta(hours=h) for h in range(hours)]
        return series, stamps

    def split_by_day(self) -> Dict[datetime, "TripDataset"]:
        """Partition records by calendar day (keyed by midnight)."""
        buckets: Dict[datetime, List[TripRecord]] = {}
        for r in self._records:
            day = r.start_time.replace(hour=0, minute=0, second=0, microsecond=0)
            buckets.setdefault(day, []).append(r)
        return {day: TripDataset(recs) for day, recs in sorted(buckets.items())}

    def sample(self, rng: np.random.Generator, n: int) -> "TripDataset":
        """A random subsample of ``n`` records (without replacement).

        Raises:
            ValueError: if ``n`` exceeds the dataset size.
        """
        if n > len(self._records):
            raise ValueError(f"cannot sample {n} from {len(self._records)} records")
        idx = rng.choice(len(self._records), size=n, replace=False)
        return TripDataset(self._records[i] for i in idx)
