"""Synthetic Mobike-like trip generation.

The paper evaluates on the Mobike Big Data Challenge dataset: 3.2M trips,
2017-05-10 .. 2017-05-24, Beijing, geohashed endpoints.  That dataset is
not redistributable and unavailable offline, so this module generates a
statistically equivalent workload from a :class:`~repro.datasets.pois.CityModel`:

* destinations drawn from POI mixtures with weekday/weekend regimes, so
  the day-of-week similarity structure of Table IV emerges;
* hourly volumes following commute double peaks on weekdays and a broad
  afternoon bump on weekends (Fig. 8);
* origins correlated with the *previous* regime's hotspots (people ride
  from home to work in the morning), with trip lengths around the ~1-3 km
  short-trip regime of [1];
* the Mobike record schema (order/user/bike ids, bike type, start time,
  geohash-able coordinates).

DESIGN.md Section 2 documents why this substitution preserves the paper's
behaviour: every algorithm consumes only destination coordinates,
timestamps and per-grid counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import List, Optional

import numpy as np

from ..geo.points import Point
from .pois import CityModel, default_city
from .trips import TripDataset, TripRecord

__all__ = ["SyntheticConfig", "generate_trips", "generate_day", "mobike_like_dataset"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic workload.

    Attributes:
        trips_per_weekday: expected trips on a weekday.
        trips_per_weekend_day: expected trips on a weekend day.
        n_users: size of the user population.
        n_bikes: size of the bike fleet.
        mean_trip_m: mean straight-line trip length in metres.
        surge_probability: chance per day of a localized demand surge
            (concert / road-work style events, Section III-C motivation).
        surge_fraction: fraction of that day's trips redirected to the
            surge hotspot when a surge occurs.
    """

    trips_per_weekday: int = 2000
    trips_per_weekend_day: int = 1600
    n_users: int = 5000
    n_bikes: int = 800
    mean_trip_m: float = 1500.0
    surge_probability: float = 0.0
    surge_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.trips_per_weekday <= 0 or self.trips_per_weekend_day <= 0:
            raise ValueError("daily trip volumes must be positive")
        if self.n_users <= 0 or self.n_bikes <= 0:
            raise ValueError("population sizes must be positive")
        if not 0.0 <= self.surge_probability <= 1.0:
            raise ValueError(f"surge_probability must be in [0,1], got {self.surge_probability}")
        if not 0.0 <= self.surge_fraction <= 1.0:
            raise ValueError(f"surge_fraction must be in [0,1], got {self.surge_fraction}")


def _sample_origin(
    rng: np.random.Generator, city: CityModel, destination: Point, mean_trip_m: float
) -> Point:
    """Sample a trip origin consistent with a short ride to ``destination``.

    Origins sit at a log-normal-ish distance from the destination in a
    uniform direction, clamped to the region — matching the observation
    that an average ride lasts within three miles [1].
    """
    length = float(rng.gamma(shape=2.0, scale=mean_trip_m / 2.0))
    angle = float(rng.uniform(0.0, 2.0 * np.pi))
    origin = destination.translate(length * np.cos(angle), length * np.sin(angle))
    return city.box.clamp(origin)


def generate_day(
    rng: np.random.Generator,
    city: CityModel,
    day: datetime,
    n_trips: int,
    config: SyntheticConfig,
    order_base: int = 0,
    surge_center: Optional[Point] = None,
) -> List[TripRecord]:
    """Generate one day of trips.

    Args:
        rng: randomness source.
        city: the study region model.
        day: midnight of the target day.
        n_trips: expected trip count (actual is Poisson around it).
        config: workload configuration.
        order_base: starting order id.
        surge_center: if given, ``config.surge_fraction`` of trips end in
            a tight cluster around this point regardless of POI weights —
            the "unknown distribution" events of Section III-C.

    Returns:
        Unsorted list of trip records for the day.
    """
    weekend = day.weekday() >= 5
    profile = city.hourly_profile(weekend)
    actual = int(rng.poisson(n_trips))
    hours = rng.choice(24, size=actual, p=profile)
    records: List[TripRecord] = []
    for i, hour in enumerate(hours):
        ts = day + timedelta(
            hours=int(hour),
            minutes=int(rng.integers(0, 60)),
            seconds=int(rng.integers(0, 60)),
        )
        if surge_center is not None and rng.uniform() < config.surge_fraction:
            offset = rng.normal(0.0, 100.0, size=2)
            dest = city.box.clamp(surge_center.translate(float(offset[0]), float(offset[1])))
        else:
            dest = city.sample_destination(rng, weekend)
        origin = _sample_origin(rng, city, dest, config.mean_trip_m)
        records.append(
            TripRecord(
                order_id=order_base + i,
                user_id=int(rng.integers(0, config.n_users)),
                bike_id=int(rng.integers(0, config.n_bikes)),
                bike_type=int(rng.integers(1, 3)),
                start_time=ts,
                start=origin,
                end=dest,
            )
        )
    return records


def generate_trips(
    city: CityModel,
    start: datetime,
    days: int,
    config: Optional[SyntheticConfig] = None,
    seed: int = 0,
) -> TripDataset:
    """Generate a multi-day trip dataset.

    Args:
        city: the study region model.
        start: midnight of the first day.
        days: number of consecutive days.
        config: workload configuration (defaults to :class:`SyntheticConfig`).
        seed: RNG seed; identical seeds give identical datasets.

    Raises:
        ValueError: if ``days`` is not positive.
    """
    if days <= 0:
        raise ValueError(f"days must be positive, got {days}")
    cfg = config or SyntheticConfig()
    rng = np.random.default_rng(seed)
    start = start.replace(hour=0, minute=0, second=0, microsecond=0)
    records: List[TripRecord] = []
    order_base = 0
    for d in range(days):
        day = start + timedelta(days=d)
        weekend = day.weekday() >= 5
        volume = cfg.trips_per_weekend_day if weekend else cfg.trips_per_weekday
        surge_center = None
        if cfg.surge_probability > 0 and rng.uniform() < cfg.surge_probability:
            surge_center = city.box.sample(rng, 1)[0]
        day_records = generate_day(
            rng, city, day, volume, cfg, order_base=order_base, surge_center=surge_center
        )
        records.extend(day_records)
        order_base += len(day_records)
    return TripDataset(records)


def mobike_like_dataset(
    seed: int = 0,
    days: int = 14,
    config: Optional[SyntheticConfig] = None,
    city: Optional[CityModel] = None,
) -> TripDataset:
    """The default two-week workload mirroring the Mobike study window.

    Starts on Wednesday 2017-05-10 like the real dataset, so weekday and
    weekend day counts match the paper's train/test splits (Section V-A:
    weekdays 7 train / 3 test, weekends 3 train / 1 test).
    """
    return generate_trips(
        city or default_city(),
        start=datetime(2017, 5, 10),
        days=days,
        config=config,
        seed=seed,
    )
