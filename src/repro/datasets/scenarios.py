"""Demand scenarios: scheduled events layered over the base workload.

Section III-C motivates the online algorithm with temporary fluctuations
— "events such as concerts or sports games might lead to short-time
demand surge at previously unexpected locations.  Traffic reroute due to
road work or accident may not be reflected by historical data either."
This module turns those into first-class objects: a
:class:`DemandEvent` redirects a share of trips within its time window
toward (surge) or away from (closure) a location, and a
:class:`Scenario` composes events over the simulation horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import List, Optional

import numpy as np

from ..geo.points import Point
from .pois import CityModel
from .synthetic import SyntheticConfig, generate_day
from .trips import TripDataset, TripRecord

__all__ = ["DemandEvent", "Scenario"]


@dataclass(frozen=True)
class DemandEvent:
    """One scheduled disturbance of the demand field.

    Attributes:
        start: beginning of the event window.
        end: end of the window (exclusive).
        location: centre of the affected area.
        radius_m: spatial extent of the effect.
        kind: ``"surge"`` pulls destinations toward the location;
            ``"closure"`` pushes destinations that would land inside the
            area out to its boundary (road work / impound zone).
        intensity: for surges, the fraction of in-window trips redirected
            to the venue; ignored for closures.
    """

    start: datetime
    end: datetime
    location: Point
    radius_m: float = 250.0
    kind: str = "surge"
    intensity: float = 0.4

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"event ends ({self.end}) before it starts ({self.start})")
        if self.radius_m <= 0:
            raise ValueError(f"radius_m must be positive, got {self.radius_m}")
        if self.kind not in ("surge", "closure"):
            raise ValueError(f"kind must be 'surge' or 'closure', got {self.kind!r}")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {self.intensity}")

    def active_at(self, when: datetime) -> bool:
        """Whether ``when`` falls inside the event window."""
        return self.start <= when < self.end


@dataclass
class Scenario:
    """A base workload plus scheduled demand events.

    Args:
        city: the study-region model.
        config: base workload parameters.
        events: scheduled disturbances (may overlap).
    """

    city: CityModel
    config: SyntheticConfig = field(default_factory=SyntheticConfig)
    events: List[DemandEvent] = field(default_factory=list)

    def add_event(self, event: DemandEvent) -> "Scenario":
        """Append an event; returns self for chaining."""
        self.events.append(event)
        return self

    # ------------------------------------------------------------------
    def _apply_events(
        self, rng: np.random.Generator, record: TripRecord
    ) -> TripRecord:
        for event in self.events:
            if not event.active_at(record.start_time):
                continue
            if event.kind == "surge":
                if rng.uniform() < event.intensity:
                    offset = rng.normal(0.0, event.radius_m / 2.5, size=2)
                    dest = self.city.box.clamp(
                        event.location.translate(float(offset[0]), float(offset[1]))
                    )
                    record = record.with_end(dest)
            else:  # closure
                d = record.end.distance_to(event.location)
                if d < event.radius_m:
                    if d == 0:
                        angle = rng.uniform(0, 2 * np.pi)
                        direction = Point(float(np.cos(angle)), float(np.sin(angle)))
                    else:
                        direction = Point(
                            (record.end.x - event.location.x) / d,
                            (record.end.y - event.location.y) / d,
                        )
                    pushed = event.location.translate(
                        direction.x * event.radius_m * 1.05,
                        direction.y * event.radius_m * 1.05,
                    )
                    record = record.with_end(self.city.box.clamp(pushed))
        return record

    def generate(self, start: datetime, days: int, seed: int = 0) -> TripDataset:
        """Generate the scenario's trips.

        Raises:
            ValueError: if ``days`` is not positive.
        """
        if days <= 0:
            raise ValueError(f"days must be positive, got {days}")
        rng = np.random.default_rng(seed)
        start = start.replace(hour=0, minute=0, second=0, microsecond=0)
        records: List[TripRecord] = []
        order_base = 0
        from datetime import timedelta

        for d in range(days):
            day = start + timedelta(days=d)
            weekend = day.weekday() >= 5
            volume = (
                self.config.trips_per_weekend_day
                if weekend
                else self.config.trips_per_weekday
            )
            day_records = generate_day(
                rng, self.city, day, volume, self.config, order_base=order_base
            )
            records.extend(self._apply_events(rng, r) for r in day_records)
            order_base += len(day_records)
        return TripDataset(records)
