"""Descriptive statistics of a trip dataset.

A drop-in sanity report for any workload — the synthetic generator or
the real Mobike CSV — covering the properties the paper's pipeline
relies on: trip-length distribution ("an average ride usually lasts
within three miles" [1]), the diurnal profile (Fig. 8's peaks),
weekday/weekend volumes, and spatial concentration (the top-cell mass
that justifies Section III-A's candidate reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..geo.grid import UniformGrid
from .trips import TripDataset

__all__ = ["DatasetStats", "describe"]


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of one trip dataset.

    Attributes:
        n_trips: total records.
        n_days: calendar days spanned.
        trips_per_weekday: mean volume on weekdays.
        trips_per_weekend_day: mean volume on weekend days.
        trip_length_percentiles: metres at the 25/50/75/95th percentiles.
        hourly_profile: fraction of trips per hour of day (sums to 1).
        peak_hours: the two busiest hours.
        top_cell_mass: fraction of destinations inside the busiest 10% of
            occupied grid cells (spatial concentration).
        n_occupied_cells: grid cells receiving at least one destination.
    """

    n_trips: int
    n_days: int
    trips_per_weekday: float
    trips_per_weekend_day: float
    trip_length_percentiles: Dict[int, float]
    hourly_profile: Tuple[float, ...]
    peak_hours: Tuple[int, int]
    top_cell_mass: float
    n_occupied_cells: int

    def to_text(self) -> str:
        """Human-readable report."""
        p = self.trip_length_percentiles
        lines = [
            f"trips: {self.n_trips} over {self.n_days} days "
            f"(weekday mean {self.trips_per_weekday:.0f}, "
            f"weekend mean {self.trips_per_weekend_day:.0f})",
            f"trip length (m): p25={p[25]:.0f} p50={p[50]:.0f} "
            f"p75={p[75]:.0f} p95={p[95]:.0f}",
            f"peak hours: {self.peak_hours[0]:02d}:00 and {self.peak_hours[1]:02d}:00",
            f"spatial concentration: {100 * self.top_cell_mass:.0f}% of demand "
            f"in the busiest 10% of {self.n_occupied_cells} occupied cells",
        ]
        return "\n".join(lines)


def describe(dataset: TripDataset, grid: UniformGrid) -> DatasetStats:
    """Compute :class:`DatasetStats` for a dataset on a grid.

    Raises:
        ValueError: if the dataset is empty.
    """
    if len(dataset) == 0:
        raise ValueError("cannot describe an empty dataset")

    by_day = dataset.split_by_day()
    weekday_counts = [len(d) for day, d in by_day.items() if day.weekday() < 5]
    weekend_counts = [len(d) for day, d in by_day.items() if day.weekday() >= 5]

    lengths = np.asarray([r.distance for r in dataset])
    percentiles = {
        q: float(np.percentile(lengths, q)) for q in (25, 50, 75, 95)
    }

    hour_counts = np.zeros(24)
    for r in dataset:
        hour_counts[r.start_time.hour] += 1
    profile = hour_counts / hour_counts.sum()
    top_two = np.argsort(-hour_counts)[:2]
    peak_hours = (int(min(top_two)), int(max(top_two)))

    demand = dataset.demand_grid(grid)
    cell_counts = sorted(
        (count for _, count in demand.weighted_points()), reverse=True
    )
    n_occupied = len(cell_counts)
    top_n = max(1, n_occupied // 10)
    top_mass = sum(cell_counts[:top_n]) / sum(cell_counts)

    return DatasetStats(
        n_trips=len(dataset),
        n_days=len(by_day),
        trips_per_weekday=float(np.mean(weekday_counts)) if weekday_counts else 0.0,
        trips_per_weekend_day=float(np.mean(weekend_counts)) if weekend_counts else 0.0,
        trip_length_percentiles=percentiles,
        hourly_profile=tuple(float(v) for v in profile),
        peak_hours=peak_hours,
        top_cell_mass=float(top_mass),
        n_occupied_cells=n_occupied,
    )
