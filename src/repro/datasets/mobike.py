"""Reading and writing trip data in the Mobike CSV schema.

The Mobike Big Data Challenge CSV has the header::

    orderid,userid,bikeid,biketype,starttime,geohashed_start_loc,geohashed_end_loc

Locations are precision-7 geohashes and ``starttime`` is
``YYYY-MM-DD HH:MM:SS``.  :func:`load_mobike_csv` parses that format
(tolerating extra columns) and projects coordinates into planar metres so
a user holding the real dataset can feed it straight into the library;
:func:`save_mobike_csv` writes a :class:`~repro.datasets.trips.TripDataset`
back out in the same schema, which is how the synthetic generator can
materialise a drop-in replacement file.
"""

from __future__ import annotations

import csv
from datetime import datetime
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..geo import geohash
from ..geo.distance import LocalProjection, haversine_m_vec
from ..geo.points import Point
from .trips import TripDataset, TripRecord

__all__ = ["MOBIKE_HEADER", "load_mobike_csv", "save_mobike_csv", "BEIJING_CENTER"]

MOBIKE_HEADER = [
    "orderid",
    "userid",
    "bikeid",
    "biketype",
    "starttime",
    "geohashed_start_loc",
    "geohashed_end_loc",
]

BEIJING_CENTER = (39.9042, 116.4074)
"""Reference (lat, lon) used to project Beijing geohashes to metres."""

_TIME_FORMATS = ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y/%m/%d %H:%M:%S")


def _parse_time(text: str) -> datetime:
    for fmt in _TIME_FORMATS:
        try:
            return datetime.strptime(text, fmt)
        except ValueError:
            continue
    raise ValueError(f"unparseable starttime: {text!r}")


def load_mobike_csv(
    path: Union[str, Path],
    projection: Optional[LocalProjection] = None,
    limit: Optional[int] = None,
) -> TripDataset:
    """Load a Mobike-schema CSV into a :class:`TripDataset`.

    Args:
        path: CSV file with the :data:`MOBIKE_HEADER` columns.
        projection: projection to planar metres; defaults to one centred
            on Beijing (:data:`BEIJING_CENTER`).
        limit: optional cap on the number of rows read.

    Raises:
        ValueError: on a missing required column or malformed row.
        FileNotFoundError: if the file does not exist.
    """
    proj = projection or LocalProjection(*BEIJING_CENTER)
    fields = []
    coords = []
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        missing = [c for c in MOBIKE_HEADER if c not in (reader.fieldnames or [])]
        if missing:
            raise ValueError(f"CSV missing required columns: {missing}")
        for row_no, row in enumerate(reader):
            if limit is not None and row_no >= limit:
                break
            fields.append(
                (
                    int(row["orderid"]),
                    int(row["userid"]),
                    int(row["bikeid"]),
                    int(row["biketype"]),
                    _parse_time(row["starttime"]),
                )
            )
            coords.append(
                geohash.decode(row["geohashed_start_loc"])
                + geohash.decode(row["geohashed_end_loc"])
            )
    if not fields:
        return TripDataset([])
    # The coordinate math runs once over the whole file: projection and
    # great-circle length per row both come from single vectorized
    # passes instead of one scalar trig round per CSV row.
    arr = np.asarray(coords, dtype=float)
    start_xy = proj.to_plane_vec(arr[:, 0], arr[:, 1])
    end_xy = proj.to_plane_vec(arr[:, 2], arr[:, 3])
    geodesic = haversine_m_vec(arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])
    records = [
        TripRecord(
            order_id=order_id,
            user_id=user_id,
            bike_id=bike_id,
            bike_type=bike_type,
            start_time=start_time,
            start=Point(float(start_xy[i, 0]), float(start_xy[i, 1])),
            end=Point(float(end_xy[i, 0]), float(end_xy[i, 1])),
            geodesic_m=float(geodesic[i]),
        )
        for i, (order_id, user_id, bike_id, bike_type, start_time) in enumerate(fields)
    ]
    return TripDataset(records)


def save_mobike_csv(
    dataset: TripDataset,
    path: Union[str, Path],
    projection: Optional[LocalProjection] = None,
    precision: int = 7,
) -> None:
    """Write a dataset in the Mobike CSV schema (geohashed endpoints).

    The inverse of :func:`load_mobike_csv` up to geohash-cell quantisation
    (~76 m at precision 7, below the paper's 100 m grid granularity).
    """
    proj = projection or LocalProjection(*BEIJING_CENTER)

    def to_hash(p: Point) -> str:
        lat, lon = proj.to_geo(p)
        return geohash.encode(lat, lon, precision=precision)

    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(MOBIKE_HEADER)
        for r in dataset:
            writer.writerow(
                [
                    r.order_id,
                    r.user_id,
                    r.bike_id,
                    r.bike_type,
                    r.start_time.strftime("%Y-%m-%d %H:%M:%S"),
                    to_hash(r.start),
                    to_hash(r.end),
                ]
            )
