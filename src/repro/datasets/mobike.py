"""Reading and writing trip data in the Mobike CSV schema.

The Mobike Big Data Challenge CSV has the header::

    orderid,userid,bikeid,biketype,starttime,geohashed_start_loc,geohashed_end_loc

Locations are precision-7 geohashes and ``starttime`` is
``YYYY-MM-DD HH:MM:SS``.  :func:`load_mobike_csv` parses that format
(tolerating extra columns) and projects coordinates into planar metres so
a user holding the real dataset can feed it straight into the library;
:func:`save_mobike_csv` writes a :class:`~repro.datasets.trips.TripDataset`
back out in the same schema, which is how the synthetic generator can
materialise a drop-in replacement file.

A multi-million-row export always contains a few damaged rows, and
aborting the whole load on row N is unacceptable for a production
ingest.  ``on_error="quarantine"`` therefore diverts each malformed row
— bad geohash, unparseable ``starttime``, non-integer id — into a
:class:`QuarantineReport` (row number, offending field, reason) and
keeps going; the strict default preserves the historical fail-fast
behaviour.  Writes go through the atomic tmp+fsync+rename helper so a
partially-written CSV can never be mistaken for a complete one.

``workers=N`` shards the parse across worker processes: the file is cut
into line-aligned byte ranges
(:func:`repro.parallel.ingest.chunk_byte_ranges`), each range is parsed
and quarantined in a worker, and the per-chunk outputs are concatenated
in file order with row numbers rebased on the preceding chunks' row
counts.  The resulting :class:`~repro.datasets.trips.TripDataset` and
:class:`QuarantineReport` are byte-for-byte equal to the serial load's
— strict mode even raises on the globally earliest malformed row, as
the serial scan would.  The one semantic carve-out is ``limit``, which
bounds sequential I/O and therefore always takes the serial path.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..geo import geohash
from ..geo.distance import LocalProjection, haversine_m_vec
from ..geo.points import Point
from ..ioutil import atomic_write_text
from .trips import TripDataset, TripRecord

__all__ = [
    "MOBIKE_HEADER",
    "QuarantinedRow",
    "QuarantineReport",
    "load_mobike_csv",
    "save_mobike_csv",
    "BEIJING_CENTER",
]

MOBIKE_HEADER = [
    "orderid",
    "userid",
    "bikeid",
    "biketype",
    "starttime",
    "geohashed_start_loc",
    "geohashed_end_loc",
]

BEIJING_CENTER = (39.9042, 116.4074)
"""Reference (lat, lon) used to project Beijing geohashes to metres."""

_TIME_FORMATS = ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y/%m/%d %H:%M:%S")

_INT_FIELDS = ("orderid", "userid", "bikeid", "biketype")
_GEO_FIELDS = ("geohashed_start_loc", "geohashed_end_loc")


@dataclass(frozen=True)
class QuarantinedRow:
    """One malformed CSV row diverted from a quarantine-mode load.

    Attributes:
        row: 1-based data-row number (the header does not count).
        field: name of the column that failed to parse.
        reason: human-readable parse failure.
    """

    row: int
    field: str
    reason: str


class QuarantineReport:
    """Collected malformed rows from a ``on_error="quarantine"`` load."""

    def __init__(self) -> None:
        self.rows: List[QuarantinedRow] = []

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def add(self, row: int, field: str, reason: str) -> None:
        """Record one diverted row."""
        self.rows.append(QuarantinedRow(row=row, field=field, reason=reason))

    def to_text(self, limit: int = 20) -> str:
        """Human-readable summary, at most ``limit`` detail lines."""
        lines = [f"{len(self.rows)} row(s) quarantined"]
        for entry in self.rows[:limit]:
            lines.append(f"  row {entry.row}: {entry.field}: {entry.reason}")
        if len(self.rows) > limit:
            lines.append(f"  ... and {len(self.rows) - limit} more")
        return "\n".join(lines)


class _MalformedRow(ValueError):
    """Internal: a row failed to parse; carries the field and reason."""

    def __init__(self, field: str, reason: str) -> None:
        super().__init__(f"{field}: {reason}")
        self.field = field
        self.reason = reason


def _parse_time(text: str) -> datetime:
    """Parse a ``starttime`` cell into a *naive* UTC-normalised datetime.

    The challenge export uses ``YYYY-MM-DD HH:MM:SS``, but real feeds
    mix in ISO-8601 variants: ``T`` separators, fractional seconds,
    trailing ``Z`` and explicit UTC offsets.  Those parse here too —
    timezone-aware values are converted to UTC and the tzinfo dropped,
    so every loaded timestamp lives on one naive UTC timeline and
    comparisons across rows stay meaningful.  Anything else raises (and
    is quarantined by the loader in ``on_error="quarantine"`` mode)
    rather than being guessed at.

    Raises:
        ValueError: on an unparseable cell.
    """
    for fmt in _TIME_FORMATS:
        try:
            return datetime.strptime(text, fmt)
        except ValueError:
            continue
    iso = text.strip()
    # Pre-3.11 fromisoformat rejects the military-Z suffix; normalise it.
    if iso.endswith(("Z", "z")):
        iso = iso[:-1] + "+00:00"
    try:
        parsed = datetime.fromisoformat(iso)
    except ValueError:
        raise ValueError(f"unparseable starttime: {text!r}") from None
    if parsed.tzinfo is not None:
        parsed = parsed.astimezone(timezone.utc).replace(tzinfo=None)
    return parsed


def _parse_row(row: dict) -> Tuple[Tuple[int, int, int, int, datetime], List[float]]:
    """Parse one DictReader row; raises :class:`_MalformedRow` on damage."""
    ints = []
    for field in _INT_FIELDS:
        raw = row.get(field)
        try:
            ints.append(int(raw))
        except (TypeError, ValueError):
            raise _MalformedRow(field, f"non-integer value {raw!r}") from None
    raw_time = row.get("starttime")
    try:
        start_time = _parse_time(raw_time if raw_time is not None else "")
    except ValueError as exc:
        raise _MalformedRow("starttime", str(exc)) from None
    coords: List[float] = []
    for field in _GEO_FIELDS:
        raw = row.get(field)
        try:
            coords.extend(geohash.decode(raw if raw is not None else ""))
        except ValueError as exc:
            raise _MalformedRow(field, str(exc)) from None
    order_id, user_id, bike_id, bike_type = ints
    return (order_id, user_id, bike_id, bike_type, start_time), coords


def _parse_chunk(
    path: Union[str, Path], start: int, end: int, fieldnames: List[str]
) -> Tuple[List[tuple], List[List[float]], List[Tuple[int, str, str]], int]:
    """Parse one byte range of a Mobike CSV (worker-side).

    Returns ``(fields, coords, quarantined, n_rows)`` where
    ``quarantined`` carries chunk-local 1-based row numbers and
    ``n_rows`` counts every CSV record the range yielded (parsed or
    quarantined) so the parent can rebase row numbers of later chunks.
    """
    with open(path, "rb") as f:
        f.seek(start)
        blob = f.read(end - start)
    # TextIOWrapper resolves the same locale default encoding and the
    # same newline handling as the serial ``open(path, newline="")``.
    text = io.TextIOWrapper(io.BytesIO(blob), newline="")
    reader = csv.DictReader(text, fieldnames=fieldnames)
    fields: List[tuple] = []
    coords: List[List[float]] = []
    quarantined: List[Tuple[int, str, str]] = []
    n_rows = 0
    for row in reader:
        n_rows += 1
        try:
            parsed, row_coords = _parse_row(row)
        except _MalformedRow as exc:
            quarantined.append((n_rows, exc.field, exc.reason))
            continue
        fields.append(parsed)
        coords.append(row_coords)
    return fields, coords, quarantined, n_rows


def _load_sharded(
    path: Union[str, Path], workers: int, on_error: str, report: QuarantineReport
) -> Tuple[List[tuple], List[List[float]]]:
    """Fan the CSV parse across workers; merge chunks in file order.

    The concatenated ``(fields, coords)`` — and the row numbers fed to
    ``report`` — are exactly what one serial scan would produce, because
    chunks are line-aligned, cover the data bytes once, and are reduced
    in canonical order.
    """
    from ..parallel.ingest import chunk_byte_ranges
    from ..parallel.pool import ParallelRunner

    with open(path, "rb") as f:
        header_line = f.readline()
        data_start = f.tell()
    header = next(csv.reader(io.TextIOWrapper(io.BytesIO(header_line), newline="")), [])
    missing = [c for c in MOBIKE_HEADER if c not in header]
    if missing:
        raise ValueError(f"CSV missing required columns: {missing}")
    ranges = chunk_byte_ranges(path, workers, data_start=data_start)
    chunks = ParallelRunner(workers).map(
        _parse_chunk, [(path, s, e, header) for s, e in ranges]
    )
    fields: List[tuple] = []
    coords: List[List[float]] = []
    rows_before = 0
    for chunk_fields, chunk_coords, quarantined, n_rows in chunks:
        for local_no, field, reason in quarantined:
            row_no = rows_before + local_no
            if on_error == "raise":
                raise ValueError(f"row {row_no}: {field}: {reason}")
            report.add(row_no, field, reason)
        fields.extend(chunk_fields)
        coords.extend(chunk_coords)
        rows_before += n_rows
    return fields, coords


def load_mobike_csv(
    path: Union[str, Path],
    projection: Optional[LocalProjection] = None,
    limit: Optional[int] = None,
    on_error: str = "raise",
    quarantine: Optional[QuarantineReport] = None,
    workers: int = 1,
    as_block: bool = False,
) -> TripDataset:
    """Load a Mobike-schema CSV into a :class:`TripDataset`.

    Args:
        path: CSV file with the :data:`MOBIKE_HEADER` columns.
        projection: projection to planar metres; defaults to one centred
            on Beijing (:data:`BEIJING_CENTER`).
        limit: optional cap on the number of rows read (quarantined rows
            count toward it — the cap bounds I/O, not yield).
        on_error: ``"raise"`` (default) aborts on the first malformed
            row, preserving the historical strict behaviour;
            ``"quarantine"`` diverts malformed rows into ``quarantine``
            and keeps loading.
        quarantine: the report malformed rows are collected into under
            ``"quarantine"`` mode; a fresh one is created (and discarded
            with the return) when not supplied — pass your own to
            inspect what was diverted.
        workers: parse worker processes.  ``> 1`` shards the file into
            line-aligned byte ranges and parses them concurrently; the
            returned dataset and quarantine report are byte-for-byte
            identical to the serial load (see the module docstring).
            Ignored when ``limit`` is set — a row cap is inherently
            sequential I/O.
        as_block: return a columnar
            :class:`~repro.core.tripblock.TripBlock` instead of a
            :class:`TripDataset`.  The vectorized projection / haversine
            outputs feed the block's arrays directly — no per-row
            :class:`TripRecord` objects are built — and the block is
            sorted by ``start_time`` with the same stable order the
            dataset constructor uses, so
            ``load_mobike_csv(p, as_block=True).to_trips()`` equals
            ``load_mobike_csv(p).records``.

    Raises:
        ValueError: on a missing required column, an unknown ``on_error``
            mode, a non-positive ``workers``, or (strict mode) a
            malformed row — the message names the data-row number and
            offending field.
        FileNotFoundError: if the file does not exist.
    """
    if on_error not in ("raise", "quarantine"):
        raise ValueError(
            f"on_error must be 'raise' or 'quarantine', got {on_error!r}"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    report = quarantine if quarantine is not None else QuarantineReport()
    proj = projection or LocalProjection(*BEIJING_CENTER)
    if workers > 1 and limit is None:
        fields, coords = _load_sharded(path, workers, on_error, report)
    else:
        fields = []
        coords = []
        with open(path, newline="") as f:
            reader = csv.DictReader(f)
            missing = [c for c in MOBIKE_HEADER if c not in (reader.fieldnames or [])]
            if missing:
                raise ValueError(f"CSV missing required columns: {missing}")
            for row_no, row in enumerate(reader, start=1):
                if limit is not None and row_no > limit:
                    break
                try:
                    parsed, row_coords = _parse_row(row)
                except _MalformedRow as exc:
                    if on_error == "raise":
                        raise ValueError(f"row {row_no}: {exc}") from None
                    report.add(row_no, exc.field, exc.reason)
                    continue
                fields.append(parsed)
                coords.append(row_coords)
    if as_block:
        # Deferred: repro.core pulls in repro.datasets at package level.
        from ..core.tripblock import TripBlock, datetime_to_us

        if not fields:
            return TripBlock.empty()
    elif not fields:
        return TripDataset([])
    # The coordinate math runs once over the whole file: projection and
    # great-circle length per row both come from single vectorized
    # passes instead of one scalar trig round per CSV row.
    arr = np.asarray(coords, dtype=float)
    start_xy = proj.to_plane_vec(arr[:, 0], arr[:, 1])
    end_xy = proj.to_plane_vec(arr[:, 2], arr[:, 3])
    geodesic = haversine_m_vec(arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3])
    if as_block:
        block = TripBlock(
            order_id=np.asarray([f[0] for f in fields], dtype=np.int64),
            user_id=np.asarray([f[1] for f in fields], dtype=np.int64),
            bike_id=np.asarray([f[2] for f in fields], dtype=np.int64),
            bike_type=np.asarray([f[3] for f in fields], dtype=np.int64),
            start_us=np.asarray(
                [datetime_to_us(f[4]) for f in fields], dtype=np.int64
            ),
            start_x=start_xy[:, 0],
            start_y=start_xy[:, 1],
            end_x=end_xy[:, 0],
            end_y=end_xy[:, 1],
            geodesic_m=np.asarray(geodesic, dtype=np.float64),
            has_geodesic=np.ones(len(fields), dtype=bool),
        )
        return block.sorted_by_time()
    records = [
        TripRecord(
            order_id=order_id,
            user_id=user_id,
            bike_id=bike_id,
            bike_type=bike_type,
            start_time=start_time,
            start=Point(float(start_xy[i, 0]), float(start_xy[i, 1])),
            end=Point(float(end_xy[i, 0]), float(end_xy[i, 1])),
            geodesic_m=float(geodesic[i]),
        )
        for i, (order_id, user_id, bike_id, bike_type, start_time) in enumerate(fields)
    ]
    return TripDataset(records)


def save_mobike_csv(
    dataset: TripDataset,
    path: Union[str, Path],
    projection: Optional[LocalProjection] = None,
    precision: int = 7,
) -> None:
    """Write a dataset in the Mobike CSV schema (geohashed endpoints).

    The inverse of :func:`load_mobike_csv` up to geohash-cell quantisation
    (~76 m at precision 7, below the paper's 100 m grid granularity).
    The file is written atomically (tmp + fsync + rename), so a crash
    mid-export can never leave a truncated CSV under ``path``.
    """
    proj = projection or LocalProjection(*BEIJING_CENTER)

    def to_hash(p: Point) -> str:
        lat, lon = proj.to_geo(p)
        return geohash.encode(lat, lon, precision=precision)

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(MOBIKE_HEADER)
    for r in dataset:
        writer.writerow(
            [
                r.order_id,
                r.user_id,
                r.bike_id,
                r.bike_type,
                r.start_time.strftime("%Y-%m-%d %H:%M:%S"),
                to_hash(r.start),
                to_hash(r.end),
            ]
        )
    atomic_write_text(path, buffer.getvalue())
