"""Pickle-free read-only NumPy arrays for worker processes.

Fanning a sweep whose cells all read the same large array (a historical
destination sample, a demand grid) through a process pool normally
pickles that array into every task message.  :class:`SharedNDArray`
places one copy in POSIX shared memory instead; tasks carry only a
:class:`SharedArrayHandle` (name + shape + dtype, a few bytes) and
attach a read-only view on the worker side.

Lifecycle: the parent ``create()``s from a source array, passes
``handle()`` in task kwargs, and calls ``unlink()`` once the fan-in
completes.  Workers call :func:`attach_readonly` (or
``SharedArrayHandle.open``) per task; the view is marked non-writeable
so a task cannot corrupt its siblings' input.  Values are byte-for-byte
the source array's, so sharing is invisible to the bit-identical
contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Tuple

import numpy as np

__all__ = ["SharedArrayHandle", "SharedNDArray", "attach_readonly"]


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable descriptor of a shared array (name, shape, dtype)."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    def open(self) -> "SharedNDArray":
        """Attach to the existing shared block this handle describes."""
        shm = shared_memory.SharedMemory(name=self.name, create=False)
        return SharedNDArray(shm, self.shape, self.dtype, owner=False)


class SharedNDArray:
    """A NumPy array whose buffer lives in ``multiprocessing.shared_memory``.

    Build with :meth:`create` in the parent; re-open from a
    :class:`SharedArrayHandle` in workers.  The owning side must call
    :meth:`unlink` when the fan-out is done or the OS object leaks until
    interpreter exit.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: Tuple[int, ...],
        dtype: str,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._shape = tuple(shape)
        self._dtype = np.dtype(dtype)
        self._owner = owner

    @classmethod
    def create(cls, source: np.ndarray) -> "SharedNDArray":
        """Copy ``source`` into a fresh shared-memory block."""
        arr = np.ascontiguousarray(source)
        shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        return cls(shm, arr.shape, arr.dtype.str, owner=True)

    def handle(self) -> SharedArrayHandle:
        """The picklable descriptor workers attach through."""
        return SharedArrayHandle(self._shm.name, self._shape, str(self._dtype))

    def array(self) -> np.ndarray:
        """A read-only ndarray view over the shared buffer."""
        view = np.ndarray(self._shape, dtype=self._dtype, buffer=self._shm.buf)
        view.flags.writeable = False
        return view

    def close(self) -> None:
        """Detach this process's mapping (the block itself survives)."""
        self._shm.close()

    def unlink(self) -> None:
        """Detach and destroy the OS object (owner side, after fan-in)."""
        self._shm.close()
        if self._owner:
            self._shm.unlink()

    def __enter__(self) -> "SharedNDArray":
        """Context-manager entry; returns self."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: unlink (owner) or close (worker)."""
        if self._owner:
            self.unlink()
        else:
            self.close()


def attach_readonly(handle: SharedArrayHandle) -> np.ndarray:
    """Worker-side one-shot attach: a private *copy* of the shared array.

    Copying decouples the returned array's lifetime from the shared
    block (no dangling view once the parent unlinks) while still moving
    the bytes across the process boundary exactly once per worker task
    instead of once per pickle.  Use ``handle.open()``/``array()`` when
    a zero-copy view is safe.
    """
    shared = handle.open()
    try:
        return shared.array().copy()
    finally:
        shared.close()
