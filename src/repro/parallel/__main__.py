"""Parity smoke for the parallel execution layer (CI job).

Usage::

    PYTHONPATH=src python -m repro.parallel [--workers 2]

Proves the bit-identical fan-out/fan-in contract end to end on real
work, in seconds:

1. offline placement cells — serial vs pooled digests must match;
2. sharded Mobike CSV ingest (malformed rows included) — records and
   the quarantine report must equal the serial load's;
3. the worker-crash path — a dying worker must surface
   :class:`~repro.errors.WorkerCrashError`, not hang the pool.

Exits non-zero on the first violated contract.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from .cells import offline_cell
from .pool import ParallelRunner, TaskSpec, spawn_seeds


def _crash(_: int) -> None:
    """Kill the worker process without returning (crash-path probe)."""
    os._exit(13)


def _placement_parity(workers: int) -> None:
    seeds = spawn_seeds(2024, 6)
    tasks = [
        TaskSpec(offline_cell, kwargs={"seed": ss, "n_demands": 150}, label=f"cell{i}")
        for i, ss in enumerate(seeds)
    ]
    serial = ParallelRunner(workers=1).run(tasks)
    pooled = ParallelRunner(workers=workers).run(tasks)
    if [c["digest"] for c in serial] != [c["digest"] for c in pooled]:
        raise SystemExit(
            f"FAIL: placement digests diverged between serial and "
            f"{workers}-worker runs"
        )
    print(
        f"placement parity OK: {len(tasks)} cells bit-identical at "
        f"workers=1 and workers={workers}"
    )


def _ingest_parity(workers: int) -> None:
    import numpy as np

    from ..datasets import load_mobike_csv, mobike_like_dataset, save_mobike_csv
    from ..datasets.mobike import QuarantineReport
    from ..datasets.synthetic import SyntheticConfig

    dataset = mobike_like_dataset(
        seed=7, days=2, config=SyntheticConfig(trips_per_weekday=400,
                                               trips_per_weekend_day=300)
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "trips.csv")
        save_mobike_csv(dataset, path)
        # Damage a few rows scattered across the future chunks.
        lines = open(path).read().splitlines(keepends=True)
        rng = np.random.default_rng(0)
        for row in sorted(rng.choice(len(lines) - 1, size=5, replace=False)):
            parts = lines[row + 1].split(",")
            parts[4] = "not-a-time"
            lines[row + 1] = ",".join(parts)
        open(path, "w").writelines(lines)
        serial_q, pooled_q = QuarantineReport(), QuarantineReport()
        serial = load_mobike_csv(path, on_error="quarantine", quarantine=serial_q)
        pooled = load_mobike_csv(
            path, on_error="quarantine", quarantine=pooled_q, workers=workers
        )
    if list(serial) != list(pooled) or serial_q.rows != pooled_q.rows:
        raise SystemExit(
            f"FAIL: sharded ingest diverged from serial at workers={workers}"
        )
    print(
        f"ingest parity OK: {len(serial)} records + {len(serial_q)} quarantined "
        f"rows bit-identical at workers={workers}"
    )


def _crash_path(workers: int) -> None:
    from ..errors import WorkerCrashError

    runner = ParallelRunner(workers=max(workers, 2))
    try:
        runner.map(_crash, [(0,)])
    except WorkerCrashError as exc:
        print(f"crash path OK: typed error surfaced ({exc})")
        return
    raise SystemExit("FAIL: dead worker did not raise WorkerCrashError")


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers", type=int, default=2, help="pool size for the parallel side"
    )
    args = parser.parse_args(argv)
    if args.workers < 2:
        parser.error("--workers must be >= 2 to exercise the pool")
    _placement_parity(args.workers)
    _ingest_parity(args.workers)
    _crash_path(args.workers)
    print("parallel smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
