"""Self-contained sweep cells for deterministic fan-out.

A *cell* is one grid point of an evaluation sweep — one
(seed × size × scenario) combination — packaged as a module-level
function a :class:`~repro.parallel.pool.ParallelRunner` worker can
import and run.  Every cell derives all of its randomness from the seed
material in its arguments, so its output is a pure function of the task
spec: the prerequisite for serial ≡ 2 workers ≡ N workers.

The workload generators here are the single source of truth for the
benchmark sweep shapes; ``benchmarks/_workloads.py`` re-exports them so
``bench_placement`` and ``bench_throughput`` draw identical instances.

Cells return plain dicts of JSON-friendly scalars plus a
:func:`placement_digest` — a SHA-256 over the exact float bits of the
placement — so fan-in can assert bit-identity across worker counts
without shipping whole :class:`~repro.core.result.PlacementResult`
objects back through the pool.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core import (
    DemandPoint,
    EsharingConfig,
    EsharingPlanner,
    constant_facility_cost,
    offline_placement,
    uniform_facility_cost,
)
from ..geo.points import Point
from .shared import SharedArrayHandle, attach_readonly

__all__ = [
    "SeedLike",
    "random_points",
    "random_demand_points",
    "placement_digest",
    "offline_cell",
    "replay_cell",
    "pipeline_cell",
    "experiment_cell",
]

SeedLike = Union[int, np.random.SeedSequence]
"""Seed material a cell accepts: an int or a spawned ``SeedSequence``."""

EXTENT_M = 8_000.0


def _rng(seed: SeedLike) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_points(rng: np.random.Generator, n: int, extent_m: float) -> List[Point]:
    """``n`` uniform points on the ``[0, extent)^2`` study square."""
    return [
        Point(float(x), float(y)) for x, y in rng.uniform(0, extent_m, size=(n, 2))
    ]


def random_demand_points(
    rng: np.random.Generator, n: int, extent_m: float = EXTENT_M
) -> List[DemandPoint]:
    """``n`` uniform demand points with integer weights in ``[1, 5]``.

    The draw order (positions, then weights) is the benchmark sweep
    shape; keep it stable or every recorded BENCH baseline shifts.
    """
    pts = rng.uniform(0, extent_m, size=(n, 2))
    weights = rng.integers(1, 6, size=n)
    return [
        DemandPoint(Point(float(x), float(y)), float(w))
        for (x, y), w in zip(pts, weights)
    ]


def placement_digest(stations: Sequence[Point], assignment: Sequence[int],
                     walking: float, space: float) -> str:
    """SHA-256 over the exact bits of a placement outcome.

    Floats are hashed via ``float.hex()`` so two placements get the same
    digest **iff** they are bit-identical — the currency the parity
    gates trade in.
    """
    h = hashlib.sha256()
    for p in stations:
        h.update(p.x.hex().encode())
        h.update(p.y.hex().encode())
    h.update(",".join(str(int(a)) for a in assignment).encode())
    h.update(float(walking).hex().encode())
    h.update(float(space).hex().encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
def offline_cell(
    seed: SeedLike,
    n_demands: int,
    extent_m: float = EXTENT_M,
    facility_cost: float = 6_000.0,
    strategy: str = "lazy",
) -> Dict[str, object]:
    """Solve one offline JMS placement instance (Algorithm 1).

    The instance is generated from ``seed`` alone, so the cell is a pure
    function of its arguments.  Returns summary scalars, the placement
    digest, and the in-worker solve time.
    """
    demands = random_demand_points(_rng(seed), n_demands, extent_m)
    start = time.perf_counter()
    result = offline_placement(
        demands, constant_facility_cost(facility_cost), strategy=strategy
    )
    seconds = time.perf_counter() - start
    return {
        "demands": n_demands,
        "stations": result.n_stations,
        "walking": result.walking,
        "space": result.space,
        "total": result.total,
        "digest": placement_digest(
            result.stations, result.assignment, result.walking, result.space
        ),
        "seconds": seconds,
    }


def replay_cell(
    stream_seed: SeedLike,
    n_arrivals: int,
    anchor_seed: int = 0,
    n_anchors: int = 80,
    extent_m: float = EXTENT_M,
    facility_cost: float = 800.0,
    historical: Optional[SharedArrayHandle] = None,
) -> Dict[str, object]:
    """Replay one online arrival stream through Algorithm 2.

    ``historical`` may be a :class:`~repro.parallel.shared.SharedArrayHandle`
    to a parent-owned ``(n, 2)`` destination sample — the pickle-free
    path for the one large input every cell of a sweep shares; when
    absent an equivalent sample is drawn locally from ``anchor_seed``.
    """
    anchor_rng = np.random.default_rng(anchor_seed)
    anchors = random_points(anchor_rng, n_anchors, extent_m)
    if historical is not None:
        hist = attach_readonly(historical)
    else:
        hist = anchor_rng.uniform(0, extent_m, size=(5_000, 2))
    stream = random_points(_rng(stream_seed), n_arrivals, extent_m)
    planner = EsharingPlanner(
        anchors,
        uniform_facility_cost(facility_cost, np.random.default_rng(anchor_seed + 1)),
        hist,
        np.random.default_rng(anchor_seed + 2),
        EsharingConfig(),
    )
    start = time.perf_counter()
    planner.replay(stream)
    seconds = time.perf_counter() - start
    result = planner.result()
    return {
        "arrivals": n_arrivals,
        "stations": result.n_stations,
        "total": result.total,
        "digest": placement_digest(
            result.stations, result.assignment, result.walking, result.space
        ),
        "seconds": seconds,
    }


def pipeline_cell(seed: int, volume: int) -> Dict[str, object]:
    """Run the full Fig. 3 end-to-end pipeline for one seed.

    Returns the scorecard scalars plus the worker-side
    :class:`~repro.sim.metrics.PhaseTimers` snapshot, which the parent
    folds into its own timers (``PhaseTimers.merge``) so a fanned sweep
    still reports where the compute went.
    """
    from ..experiments.endtoend import run_pipeline

    result = run_pipeline(seed=seed, volume=volume)
    tier1 = result.extras["tier1"]
    report = result.extras["report"]
    return {
        "seed": seed,
        "tier1_total": tier1.total,
        "tier1_stations": tier1.n_stations,
        "tier2_cost": report.service.total_cost,
        "trips_requested": report.trips_requested,
        "trips_executed": report.trips_executed,
        "incentives_paid": report.incentives_paid,
        "phase_seconds": dict(result.extras["phase_seconds"]),
        "digest": placement_digest(
            tier1.stations, tier1.assignment, tier1.walking, tier1.space
        ),
    }


def experiment_cell(experiment_id: str, seed: int) -> Dict[str, object]:
    """Run one registered experiment for one seed; return its table.

    The picklable projection of an
    :class:`~repro.experiments.reporting.ExperimentResult` (``extras``
    hold live objects and stay worker-side).  Used by the CLI ``sweep``
    subcommand to fan a seed grid across workers.
    """
    from ..experiments import EXPERIMENTS

    if experiment_id not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(sorted(EXPERIMENTS))}"
        )
    result = EXPERIMENTS[experiment_id](seed=seed)
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "notes": list(result.notes),
        "seed": seed,
    }
