"""Byte-range sharding of line-oriented files.

Splitting a multi-million-row CSV for parallel parsing must not change
what gets parsed: :func:`chunk_byte_ranges` cuts the file into
contiguous, non-overlapping byte ranges that each start exactly at the
beginning of a line and together cover every data byte once.  Workers
parse their range independently; concatenating the per-chunk outputs in
range order therefore yields the byte-for-byte serial result.

The newline-snapping assumes records do not contain embedded newlines
(true of the Mobike schema, whose fields are bare integers, timestamps
and geohashes).  A quoted field spanning lines would be split mid-record
— callers owning such data must stay on the serial path.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Tuple, Union

__all__ = ["chunk_byte_ranges"]


def chunk_byte_ranges(
    path: Union[str, Path], n_chunks: int, data_start: int = 0
) -> List[Tuple[int, int]]:
    """Split ``path[data_start:]`` into up to ``n_chunks`` line-aligned ranges.

    Args:
        path: the file to shard.
        n_chunks: desired number of ranges (fewer come back when the
            file is too small to cut that often).
        data_start: byte offset where records begin — pass the offset
            just past the header line so no chunk re-parses it.

    Returns:
        ``(start, end)`` byte ranges, in file order, covering
        ``[data_start, filesize)`` exactly once.  Empty list when there
        are no data bytes.

    Raises:
        ValueError: if ``n_chunks`` is not positive or ``data_start`` is
            negative.
    """
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    if data_start < 0:
        raise ValueError(f"data_start must be >= 0, got {data_start}")
    size = os.path.getsize(path)
    if size <= data_start:
        return []
    approx = max(1, (size - data_start) // n_chunks)
    bounds = [data_start]
    with open(path, "rb") as f:
        for i in range(1, n_chunks):
            target = data_start + i * approx
            if target <= bounds[-1]:
                continue
            if target >= size:
                break
            f.seek(target)
            f.readline()  # snap forward to the start of the next line
            pos = f.tell()
            if pos >= size:
                break
            if pos > bounds[-1]:
                bounds.append(pos)
    bounds.append(size)
    return list(zip(bounds[:-1], bounds[1:]))
