"""Deterministic process-pool fan-out/fan-in.

The execution contract every fast path in this repo honours is
*bit-identical outputs*: the lazy offline solver matches the reference
rescan, the batched replay matches the per-call loop, recovery matches
the uncrashed run.  :class:`ParallelRunner` extends that contract to
multicore execution: a sweep fanned across ``N`` worker processes
returns **exactly** the results of running the same tasks serially, for
every ``N``.

Three rules make that hold:

1. **Self-contained tasks.**  A :class:`TaskSpec` carries a module-level
   callable plus its arguments; a task never reads mutable state shared
   with its siblings.  Per-task randomness is derived *in the parent* in
   canonical task order via :func:`spawn_seeds`
   (``numpy.random.SeedSequence.spawn``), so the seed a task receives
   does not depend on which worker runs it or when.
2. **Canonical-order reduction.**  Results are collected in *task*
   order, never completion order.  Workers may finish in any
   interleaving; the reduce step cannot observe it.
3. **Serial short-circuit.**  ``workers <= 1`` runs the tasks in-process
   with no pool, no pickling and no forking — the baseline every
   parallel run is compared against.

Failures stay typed: an exception raised *inside* a task is re-raised
in the parent (the earliest failing task in canonical order wins, again
independent of scheduling); a worker that dies without returning — or a
task that exceeds ``task_timeout`` — surfaces as
:class:`~repro.errors.WorkerCrashError` instead of hanging the pool.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkerCrashError

__all__ = ["TaskSpec", "ParallelRunner", "spawn_seeds", "usable_cores"]


def usable_cores() -> int:
    """CPU cores this process may actually run on.

    Respects the scheduler affinity mask when the platform exposes one
    (cgroup-limited containers routinely show fewer usable cores than
    ``os.cpu_count()``), so worker defaults and benchmark gates reflect
    the hardware the job really has.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def spawn_seeds(root_seed: int, n: int) -> List[np.random.SeedSequence]:
    """Derive ``n`` independent child seeds from one root seed.

    Thin wrapper over ``numpy.random.SeedSequence.spawn`` — the
    parent spawns all children up front, in canonical task order, so
    task ``i`` receives the same entropy no matter how many workers the
    sweep later runs on.  Feed each child to
    ``numpy.random.default_rng`` inside the task.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    return np.random.SeedSequence(root_seed).spawn(n)


@dataclass(frozen=True)
class TaskSpec:
    """One unit of a deterministic fan-out.

    Attributes:
        fn: a **module-level** callable (workers import it by qualified
            name; lambdas and closures cannot cross the process
            boundary).
        args: positional arguments, pickled to the worker.
        kwargs: keyword arguments, pickled to the worker.
        label: optional human-readable tag for logs and error messages.
    """

    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def run(self) -> Any:
        """Execute the task in the current process."""
        return self.fn(*self.args, **self.kwargs)


def _run_task(task: TaskSpec) -> Any:
    """Module-level trampoline so TaskSpecs pickle through the pool."""
    return task.run()


class ParallelRunner:
    """Fan tasks across worker processes; merge results in task order.

    Args:
        workers: worker-process count.  ``<= 1`` executes in-process
            (the serial reference path); ``None`` uses
            :func:`usable_cores`.
        start_method: multiprocessing start method; defaults to
            ``"fork"`` where available (cheap on Linux; worker callables
            in script-local modules resolve without re-import) and the
            platform default elsewhere.
        task_timeout: optional per-task wall-clock limit in seconds;
            exceeding it raises :class:`~repro.errors.WorkerCrashError`
            rather than waiting forever on a wedged worker.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        start_method: Optional[str] = None,
        task_timeout: Optional[float] = None,
    ) -> None:
        if workers is None:
            workers = usable_cores()
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.workers = workers
        self.start_method = start_method
        self.task_timeout = task_timeout

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[TaskSpec]) -> List[Any]:
        """Execute every task; return their results in task order.

        The returned list is position-aligned with ``tasks`` regardless
        of completion order or worker count — the deterministic-reduce
        half of the bit-identical contract.

        Raises:
            WorkerCrashError: a worker process died or a task timed out.
            Exception: the first (in task order) exception a task raised.
        """
        for t in tasks:
            if not isinstance(t, TaskSpec):
                raise TypeError(f"expected TaskSpec, got {type(t).__name__}")
        if self.workers <= 1:
            return [t.run() for t in tasks]
        ctx = mp.get_context(self.start_method)
        n_workers = min(self.workers, max(len(tasks), 1))
        out: List[Any] = []
        with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as pool:
            futures = [pool.submit(_run_task, t) for t in tasks]
            for task, fut in zip(tasks, futures):
                try:
                    out.append(fut.result(timeout=self.task_timeout))
                except BrokenExecutor as exc:
                    for f in futures:
                        f.cancel()
                    raise WorkerCrashError(
                        f"worker died running task {task.label or task.fn.__name__!r}"
                        f" ({type(exc).__name__}: {exc})"
                    ) from exc
                except FutureTimeoutError as exc:
                    for f in futures:
                        f.cancel()
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise WorkerCrashError(
                        f"task {task.label or task.fn.__name__!r} exceeded "
                        f"{self.task_timeout}s; treating the worker as hung"
                    ) from exc
        return out

    def map(
        self,
        fn: Callable[..., Any],
        arg_tuples: Sequence[Tuple],
        labels: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """Run ``fn(*args)`` for each tuple; results in input order.

        Convenience wrapper building one :class:`TaskSpec` per tuple.
        """
        if labels is not None and len(labels) != len(arg_tuples):
            raise ValueError(
                f"{len(labels)} labels for {len(arg_tuples)} tasks"
            )
        tasks = [
            TaskSpec(fn=fn, args=tuple(args), label=labels[i] if labels else "")
            for i, args in enumerate(arg_tuples)
        ]
        return self.run(tasks)
