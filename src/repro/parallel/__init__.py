"""Deterministic multicore execution layer.

The paper's evaluation is an embarrassingly parallel grid of
(seed × scenario × penalty type × algorithm) cells, and a production
ingest chews through millions of CSV rows — yet correctness work in this
repo is defined by *bit-identical outputs*.  This package makes the two
compatible: process-pool fan-out whose fan-in is guaranteed to equal the
serial run, for any worker count.

* :class:`ParallelRunner` / :class:`TaskSpec` — pool lifecycle plus the
  canonical-order reducer; per-task RNG derives from
  ``SeedSequence.spawn`` in task order (:func:`spawn_seeds`).
* :mod:`repro.parallel.cells` — self-contained sweep cells (offline
  solves, online replays, full pipeline runs, registered experiments).
* :func:`chunk_byte_ranges` — line-aligned byte-range sharding backing
  ``load_mobike_csv(workers=N)``.
* :class:`SharedNDArray` — pickle-free read-only NumPy arrays via
  ``multiprocessing.shared_memory`` for inputs every cell shares.

``python -m repro.parallel`` runs the serial-vs-parallel parity smoke
(CI's 2-worker job); ``benchmarks/bench_parallel.py`` records the
scaling curve to ``BENCH_parallel.json``.  See DESIGN.md §9.
"""

from ..errors import WorkerCrashError
from .ingest import chunk_byte_ranges
from .pool import ParallelRunner, TaskSpec, spawn_seeds, usable_cores
from .shared import SharedArrayHandle, SharedNDArray, attach_readonly

__all__ = [
    "ParallelRunner",
    "TaskSpec",
    "spawn_seeds",
    "usable_cores",
    "chunk_byte_ranges",
    "SharedArrayHandle",
    "SharedNDArray",
    "attach_readonly",
    "WorkerCrashError",
]
