"""Fleet-level energy state.

Tier 2 operates on *sets of low-energy bikes per station* (the sets
``L_i`` of Section IV).  :class:`Fleet` tracks every bike's battery and
current station, replays trips to evolve the energy state, and reports the
station -> low-energy-bike map that the incentive mechanism and the
operator's tour planner consume.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..geo.points import Point
from ..serialize import rng_from_state, rng_to_state
from .battery import Battery, BatteryConfig, LOW_ENERGY_THRESHOLD

__all__ = ["Bike", "Fleet", "StationEnergySnapshot"]


@dataclass
class Bike:
    """One E-bike: identity, battery, and where it is parked."""

    bike_id: int
    battery: Battery
    station: int

    @property
    def is_low(self) -> bool:
        return self.battery.is_low


@dataclass(frozen=True)
class StationEnergySnapshot:
    """Energy census of one station at a point in time.

    Attributes:
        station: station index.
        location: station coordinates.
        total_bikes: bikes parked there.
        low_bikes: ids of bikes below the service threshold (the set L_i).
        levels: charge level of every parked bike.
    """

    station: int
    location: Point
    total_bikes: int
    low_bikes: tuple
    levels: tuple

    @property
    def needs_service(self) -> bool:
        return len(self.low_bikes) > 0


class Fleet:
    """All bikes of the system, with per-station energy accounting.

    Args:
        stations: coordinates of the parking locations (index = station id).
        n_bikes: fleet size; bikes start distributed round-robin.
        config: battery parameters shared by the fleet.
        rng: randomness for initial charge levels and ride noise.
        threshold: charge level below which a bike counts as low-energy.
    """

    def __init__(
        self,
        stations: Sequence[Point],
        n_bikes: int,
        config: Optional[BatteryConfig] = None,
        rng: Optional[np.random.Generator] = None,
        threshold: float = LOW_ENERGY_THRESHOLD,
    ) -> None:
        if not stations:
            raise ValueError("fleet needs at least one station")
        if n_bikes <= 0:
            raise ValueError(f"n_bikes must be positive, got {n_bikes}")
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        self.stations = list(stations)
        self.threshold = threshold
        self._rng = rng or np.random.default_rng(0)
        cfg = config or BatteryConfig()
        self.bikes: List[Bike] = []
        for i in range(n_bikes):
            # Initial charge: most bikes healthy, plus an explicit tail of
            # low-energy bikes — the steady-state shape of Fig. 2(d)
            # (a majority with sufficient residual energy and a tail that
            # "necessitates energy replenishment at each station").
            if self._rng.uniform() < 0.15:
                level = float(self._rng.uniform(0.05, threshold))
            else:
                level = float(np.clip(self._rng.beta(5.0, 1.5), threshold, 1.0))
            self.bikes.append(
                Bike(bike_id=i, battery=Battery(cfg, level), station=i % len(self.stations))
            )

    def __len__(self) -> int:
        return len(self.bikes)

    def state_dict(self) -> dict:
        """Checkpointable state: racks, every bike, and the ride-noise RNG.

        Charge levels are exact floats and the RNG bit stream is captured
        in full, so a fleet rebuilt by :meth:`from_state` drains batteries
        bit-identically to the uninterrupted run.
        """
        return {
            "stations": [[p.x, p.y] for p in self.stations],
            "threshold": self.threshold,
            "rng": rng_to_state(self._rng),
            "bikes": [
                {
                    "bike_id": b.bike_id,
                    "station": b.station,
                    "level": b.battery.level,
                    "config": asdict(b.battery.config),
                }
                for b in self.bikes
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "Fleet":
        """Rebuild a fleet from :meth:`state_dict` output.

        Raises:
            KeyError: on a missing field.
            ValueError: on out-of-range levels or battery parameters.
        """
        fleet = cls.__new__(cls)
        fleet.stations = [Point(float(x), float(y)) for x, y in state["stations"]]
        fleet.threshold = float(state["threshold"])
        fleet._rng = rng_from_state(state["rng"])
        fleet.bikes = [
            Bike(
                bike_id=int(b["bike_id"]),
                battery=Battery(BatteryConfig(**b["config"]), float(b["level"])),
                station=int(b["station"]),
            )
            for b in state["bikes"]
        ]
        return fleet

    def add_station(self, location: Point) -> int:
        """Register a new (empty) station rack; returns its index.

        The index matches the stable id handed out by the planner's
        :class:`~repro.core.station_set.StationSet` when this is wired as
        its ``on_add`` inventory hook, which is how stations opened online
        join the fleet with no bikes.
        """
        self.stations.append(location)
        return len(self.stations) - 1

    def bikes_at(self, station: int) -> List[Bike]:
        """Bikes currently parked at ``station``."""
        self._check_station(station)
        return [b for b in self.bikes if b.station == station]

    def low_energy_map(self) -> Dict[int, List[int]]:
        """Station -> list of low-energy bike ids (the L_i sets)."""
        out: Dict[int, List[int]] = {}
        for b in self.bikes:
            if b.battery.level < self.threshold:
                out.setdefault(b.station, []).append(b.bike_id)
        return {s: sorted(ids) for s, ids in sorted(out.items())}

    def stations_needing_service(self) -> List[int]:
        """Stations holding at least one low-energy bike."""
        return sorted(self.low_energy_map())

    def snapshot(self, station: int) -> StationEnergySnapshot:
        """Energy census of one station."""
        bikes = self.bikes_at(station)
        low = tuple(b.bike_id for b in bikes if b.battery.level < self.threshold)
        return StationEnergySnapshot(
            station=station,
            location=self.stations[station],
            total_bikes=len(bikes),
            low_bikes=low,
            levels=tuple(b.battery.level for b in bikes),
        )

    def snapshots(self) -> List[StationEnergySnapshot]:
        """Census of every station."""
        return [self.snapshot(s) for s in range(len(self.stations))]

    def ride(self, bike_id: int, to_station: int, distance_m: float) -> float:
        """Move a bike to ``to_station``, draining its battery.

        Returns:
            The bike's new charge level.

        Raises:
            KeyError: if the bike id is unknown.
            ValueError: if the target station is invalid.
        """
        self._check_station(to_station)
        bike = self._bike(bike_id)
        level = bike.battery.ride(distance_m, rng=self._rng)
        bike.station = to_station
        return level

    def pick_bike(self, station: int, prefer_low: bool = False) -> Optional[Bike]:
        """A rider's bike choice at ``station``.

        Riders naturally prefer the highest-charge bike; the incentive
        mechanism instead asks for a *low*-energy one (``prefer_low``).
        Returns ``None`` when the station is empty, or when ``prefer_low``
        is set and no low-energy bike is present.
        """
        bikes = self.bikes_at(station)
        if not bikes:
            return None
        if prefer_low:
            low = [b for b in bikes if b.battery.level < self.threshold]
            if not low:
                return None
            return min(low, key=lambda b: (b.battery.level, b.bike_id))
        return max(bikes, key=lambda b: (b.battery.level, -b.bike_id))

    def recharge_station(self, station: int) -> int:
        """Operator services a station: recharge all low-energy bikes there.

        Returns:
            Number of bikes recharged.
        """
        count = 0
        for b in self.bikes_at(station):
            if b.battery.level < self.threshold:
                b.battery.recharge()
                count += 1
        return count

    def charge_levels(self) -> np.ndarray:
        """Charge level of every bike, indexed by bike id."""
        return np.asarray([b.battery.level for b in self.bikes], dtype=float)

    def low_energy_count(self) -> int:
        """Total bikes below the service threshold."""
        return int(np.count_nonzero(self.charge_levels() < self.threshold))

    def _bike(self, bike_id: int) -> Bike:
        if not 0 <= bike_id < len(self.bikes):
            raise KeyError(f"unknown bike id {bike_id}")
        return self.bikes[bike_id]

    def _check_station(self, station: int) -> None:
        if not 0 <= station < len(self.stations):
            raise ValueError(f"station {station} out of range 0..{len(self.stations) - 1}")


def replay_trips_onto_fleet(
    fleet: Fleet,
    station_of_point,
    trips: Iterable,
) -> int:
    """Replay trip records through the fleet to evolve energy state.

    Args:
        fleet: the fleet to mutate.
        station_of_point: callable mapping a :class:`Point` to the nearest
            station index (e.g. built from a placement result).
        trips: iterable of :class:`~repro.datasets.trips.TripRecord`.

    Returns:
        Number of trips actually executed (trips from empty stations are
        skipped).
    """
    executed = 0
    for trip in trips:
        origin_station = station_of_point(trip.start)
        dest_station = station_of_point(trip.end)
        bike = fleet.pick_bike(origin_station)
        if bike is None:
            continue
        fleet.ride(bike.bike_id, dest_station, trip.distance)
        executed += 1
    return executed
