"""E-bike battery model.

The paper builds "an energy model based on the data crawled from XQbike
App" to trace residual energy per bike (Section V).  Without that crawl we
model the battery from first principles: a fixed capacity drained by ride
distance (with rider/terrain noise) plus a small idle self-discharge.
Fig. 2(d) shows the resulting steady-state shape to match: most bikes hold
high charge with a tail of low-energy bikes below the service threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["BatteryConfig", "Battery", "LOW_ENERGY_THRESHOLD"]

LOW_ENERGY_THRESHOLD = 0.20
"""Default service threshold: operators refill bikes below 20% (Section II-B)."""


@dataclass(frozen=True)
class BatteryConfig:
    """Physical parameters of an E-bike battery.

    Attributes:
        capacity_wh: usable capacity in watt-hours.
        wh_per_km: mean consumption per kilometre of assisted riding.
        consumption_noise: multiplicative lognormal sigma on per-ride
            consumption (rider weight, assist level, terrain).
        idle_drain_per_day: fraction of capacity lost per idle day.
    """

    capacity_wh: float = 360.0
    wh_per_km: float = 9.0
    consumption_noise: float = 0.25
    idle_drain_per_day: float = 0.005

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0:
            raise ValueError(f"capacity_wh must be positive, got {self.capacity_wh}")
        if self.wh_per_km <= 0:
            raise ValueError(f"wh_per_km must be positive, got {self.wh_per_km}")
        if self.consumption_noise < 0:
            raise ValueError("consumption_noise must be non-negative")
        if not 0.0 <= self.idle_drain_per_day < 1.0:
            raise ValueError("idle_drain_per_day must be in [0, 1)")

    @property
    def range_km(self) -> float:
        """Nominal full-charge range in kilometres."""
        return self.capacity_wh / self.wh_per_km


@dataclass
class Battery:
    """Mutable battery state of one bike.

    ``level`` is the state of charge in [0, 1].
    """

    config: BatteryConfig = field(default_factory=BatteryConfig)
    level: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.level <= 1.0:
            raise ValueError(f"level must be in [0, 1], got {self.level}")

    @property
    def is_low(self) -> bool:
        """Whether the bike needs charging under the default policy."""
        return self.level < LOW_ENERGY_THRESHOLD

    def remaining_range_km(self) -> float:
        """Kilometres ridable on the current charge (mean consumption)."""
        return self.level * self.config.range_km

    def can_ride(self, distance_m: float, margin: float = 1.2) -> bool:
        """Whether a trip of ``distance_m`` fits in the residual charge.

        ``margin`` inflates the nominal consumption so the incentive
        mechanism's "mileage must not deplete the battery" check
        (Section IV-C) holds even for heavy riders.
        """
        needed = (distance_m / 1000.0) * self.config.wh_per_km * margin
        return needed <= self.level * self.config.capacity_wh

    def ride(self, distance_m: float, rng: Optional[np.random.Generator] = None) -> float:
        """Drain the battery for a ride of ``distance_m`` metres.

        Returns:
            The new charge level.

        Raises:
            ValueError: if ``distance_m`` is negative.
        """
        if distance_m < 0:
            raise ValueError(f"distance_m must be non-negative, got {distance_m}")
        noise = 1.0
        if rng is not None and self.config.consumption_noise > 0:
            noise = float(rng.lognormal(mean=0.0, sigma=self.config.consumption_noise))
        used_wh = (distance_m / 1000.0) * self.config.wh_per_km * noise
        self.level = max(0.0, self.level - used_wh / self.config.capacity_wh)
        return self.level

    def idle(self, days: float) -> float:
        """Apply self-discharge for ``days`` idle days."""
        if days < 0:
            raise ValueError(f"days must be non-negative, got {days}")
        self.level = max(0.0, self.level - self.config.idle_drain_per_day * days)
        return self.level

    def recharge(self) -> None:
        """Full recharge / battery swap (the operator's service action)."""
        self.level = 1.0
