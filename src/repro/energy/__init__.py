"""E-bike energy substrate: batteries and fleet-level accounting."""

from .battery import LOW_ENERGY_THRESHOLD, Battery, BatteryConfig
from .fleet import Bike, Fleet, StationEnergySnapshot, replay_trips_onto_fleet

__all__ = [
    "LOW_ENERGY_THRESHOLD",
    "Battery",
    "BatteryConfig",
    "Bike",
    "Fleet",
    "StationEnergySnapshot",
    "replay_trips_onto_fleet",
]
