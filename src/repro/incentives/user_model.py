"""User acceptance behaviour (Eq. 13).

A user offered an incentive ``v`` to ride a low-energy bike to a
neighbouring site ``k`` accepts iff

* the *extra walking* from ``k`` to her true destination ``j*`` is below
  her personal maximum ``c_u``, and
* the incentive covers her personal minimum reward ``v_u*``.

Populations of ``(c_u, v_u*)`` pairs model the demand-side regimes the
paper discusses (rush hour: short walks, high reward demands; weekends:
relaxed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["UserPreferences", "UserPopulation", "accepts_offer"]


@dataclass(frozen=True)
class UserPreferences:
    """One user's private thresholds.

    Attributes:
        max_walk_m: ``c_u`` — largest acceptable extra walk (metres).
        min_reward: ``v_u*`` — smallest acceptable incentive ($).
    """

    max_walk_m: float
    min_reward: float

    def __post_init__(self) -> None:
        if self.max_walk_m < 0:
            raise ValueError(f"max_walk_m cannot be negative, got {self.max_walk_m}")
        if self.min_reward < 0:
            raise ValueError(f"min_reward cannot be negative, got {self.min_reward}")


def accepts_offer(prefs: UserPreferences, extra_walk_m: float, incentive: float) -> bool:
    """Eq. 13: accept iff ``extra_walk < c_u`` and ``v >= v_u*``.

    Raises:
        ValueError: if the extra walk is negative.
    """
    if extra_walk_m < 0:
        raise ValueError(f"extra_walk_m cannot be negative, got {extra_walk_m}")
    return extra_walk_m < prefs.max_walk_m and incentive >= prefs.min_reward


@dataclass(frozen=True)
class UserPopulation:
    """A distribution of user preferences to sample riders from.

    Defaults model an off-peak population: acceptable walks around 250 m
    and reward thresholds around $0.6.  Rush-hour populations should use
    smaller ``walk_mean`` and larger ``reward_mean`` (Section IV-C).

    Attributes:
        walk_mean: mean of the (truncated-normal) ``c_u`` distribution.
        walk_std: its standard deviation.
        reward_mean: mean of the ``v_u*`` distribution.
        reward_std: its standard deviation.
    """

    walk_mean: float = 250.0
    walk_std: float = 100.0
    reward_mean: float = 0.6
    reward_std: float = 0.3

    def __post_init__(self) -> None:
        if self.walk_mean <= 0 or self.reward_mean < 0:
            raise ValueError("population means must be positive (walk) / non-negative (reward)")
        if self.walk_std < 0 or self.reward_std < 0:
            raise ValueError("population deviations cannot be negative")

    def sample(self, rng: np.random.Generator) -> UserPreferences:
        """Draw one rider's private thresholds (truncated at zero)."""
        walk = max(0.0, float(rng.normal(self.walk_mean, self.walk_std)))
        reward = max(0.0, float(rng.normal(self.reward_mean, self.reward_std)))
        return UserPreferences(max_walk_m=walk, min_reward=reward)

    @classmethod
    def rush_hour(cls) -> "UserPopulation":
        """Impatient riders: short walks, higher reward demands."""
        return cls(walk_mean=150.0, walk_std=60.0, reward_mean=1.0, reward_std=0.4)

    @classmethod
    def weekend(cls) -> "UserPopulation":
        """Relaxed riders: longer walks, lower reward demands."""
        return cls(walk_mean=350.0, walk_std=120.0, reward_mean=0.4, reward_std=0.2)
