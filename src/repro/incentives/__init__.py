"""Tier 2: charging-cost model and the online incentive mechanism."""

from .charging_cost import (
    ChargingCostParams,
    per_bike_cost,
    saving_ratio,
    saving_ratio_vec,
    tour_charging_cost,
)
from .user_model import UserPopulation, UserPreferences, accepts_offer
from .mechanism import IncentiveConfig, IncentiveMechanism, OfferOutcome
from .adaptive import AdaptiveAlphaController

__all__ = [
    "ChargingCostParams",
    "per_bike_cost",
    "saving_ratio",
    "saving_ratio_vec",
    "tour_charging_cost",
    "UserPopulation",
    "UserPreferences",
    "accepts_offer",
    "IncentiveConfig",
    "IncentiveMechanism",
    "OfferOutcome",
    "AdaptiveAlphaController",
]
