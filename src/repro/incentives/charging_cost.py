"""Charging-cost model of Tier 2 (Section IV-A / IV-B).

Serving ``n`` stations holding ``l = sum l_i`` low-energy bikes costs

    C = n*q + l*b + (n^2 - n)/2 * d                     (Eq. 10)

where ``q`` is the per-stop service cost (parking tickets, setup), ``b``
the per-bike charging cost and ``d`` the per-position delay cost: the
station served ``t``-th in the sequence accrues ``t*d`` of monetised
missed demand.  Aggregating the same bikes onto ``m < n`` sites saves

    (C - C*) / C = 1 - (m*q + (m^2-m)/2*d) / (n*q + (n^2-n)/2*d)   (Eq. 11)

(the ``l*b`` term cancels — every bike still gets charged once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

__all__ = [
    "ChargingCostParams",
    "tour_charging_cost",
    "saving_ratio",
    "saving_ratio_vec",
    "per_bike_cost",
]


@dataclass(frozen=True)
class ChargingCostParams:
    """Unit costs of the charging operation.

    The evaluation (Section V) uses a unit delay cost of $5 and a unit
    energy cost of $2 per charge; the per-stop service cost is swept in
    Fig. 12.

    Attributes:
        service_cost: ``q`` — cost per station visit ($).
        delay_cost: ``d`` — cost per position of delay in the sequence ($).
        energy_cost: ``b`` — cost of charging one bike ($).
    """

    service_cost: float = 5.0
    delay_cost: float = 5.0
    energy_cost: float = 2.0

    def __post_init__(self) -> None:
        if self.service_cost < 0 or self.delay_cost < 0 or self.energy_cost < 0:
            raise ValueError("unit costs cannot be negative")


def tour_charging_cost(params: ChargingCostParams, bikes_per_station: Sequence[int]) -> float:
    """Total charging cost ``C`` of one service tour (Eq. 10).

    Args:
        params: unit costs.
        bikes_per_station: ``l_i`` for each of the ``n`` stations visited,
            in any order (Eq. 10 depends only on ``n`` and ``sum l_i``).

    Raises:
        ValueError: if any station count is negative.
    """
    n = len(bikes_per_station)
    if any(l < 0 for l in bikes_per_station):
        raise ValueError("bike counts cannot be negative")
    total_bikes = sum(bikes_per_station)
    return (
        n * params.service_cost
        + total_bikes * params.energy_cost
        + (n * n - n) / 2.0 * params.delay_cost
    )


def per_bike_cost(params: ChargingCostParams, l_i: int, position: int) -> float:
    """Average cost per bike at a station served ``position``-th.

    ``b + q/l_i + t*d/l_i`` (Section IV-A) — decreasing in ``l_i``, the
    economics behind aggregation.

    Raises:
        ValueError: if ``l_i`` is not positive or ``position`` is not
            positive.
    """
    if l_i <= 0:
        raise ValueError(f"l_i must be positive, got {l_i}")
    if position <= 0:
        raise ValueError(f"position must be positive, got {position}")
    return (
        params.energy_cost
        + params.service_cost / l_i
        + position * params.delay_cost / l_i
    )


def saving_ratio(params: ChargingCostParams, n: int, m: int) -> float:
    """Relative saving of aggregating ``n`` service sites down to ``m`` (Eq. 11).

    Raises:
        ValueError: unless ``0 < m <= n``.
    """
    if not 0 < m <= n:
        raise ValueError(f"need 0 < m <= n, got m={m} n={n}")
    q, d = params.service_cost, params.delay_cost
    denom = n * q + (n * n - n) / 2.0 * d
    if denom == 0:
        return 0.0
    numer = m * q + (m * m - m) / 2.0 * d
    return 1.0 - numer / denom


def saving_ratio_vec(
    params: ChargingCostParams,
    n: Union[int, np.ndarray],
    m: Union[int, np.ndarray],
) -> np.ndarray:
    """Vectorized :func:`saving_ratio` over broadcast ``n``/``m`` arrays.

    One call replaces a Python loop of scalar Eq. 11 evaluations (the
    Fig. 7 saving-ratio grids are the Tier-2 hot loop); every element is
    bit-identical to the scalar path because the arithmetic runs in the
    same order on the same float64 operations.

    Raises:
        ValueError: if any element violates ``0 < m <= n``.
    """
    n_arr = np.asarray(n)
    m_arr = np.asarray(m)
    if np.any((m_arr <= 0) | (m_arr > n_arr)):
        raise ValueError(f"need 0 < m <= n elementwise, got m={m!r} n={n!r}")
    q, d = params.service_cost, params.delay_cost
    denom = n_arr * q + (n_arr * n_arr - n_arr) / 2.0 * d
    numer = m_arr * q + (m_arr * m_arr - m_arr) / 2.0 * d
    safe = np.where(denom == 0, 1.0, denom)
    return np.asarray(np.where(denom == 0, 0.0, 1.0 - numer / safe), dtype=float)
