"""The online incentive mechanism (Algorithm 3, Section IV-C).

When a rider departs station ``i`` (which holds low-energy bikes
``L_i``) toward destination parking ``j``, the system offers a uniform
incentive

    v = alpha * (q + t*d) / |L_i|,   0 < alpha < 1

to ride a *low-energy* bike to a neighbouring aggregation site ``k``
instead.  ``k`` is chosen mileage-equivalent to the original trip (so no
extra metered charge) and reachable on the bike's residual battery; ``t``
is the station's position in the prospective charging sequence.  The
rider accepts per Eq. 13.  Since at most ``|L_i|`` riders are paid and
``v * |L_i| = alpha * (q + t*d) < Delta_i`` (Eq. 12), the mechanism never
pays more than the cost it saves per station.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.station_set import StationSet
from ..energy.fleet import Fleet
from ..geo.points import Point
from .adaptive import AdaptiveAlphaController
from .charging_cost import ChargingCostParams
from .user_model import UserPopulation, accepts_offer

__all__ = ["IncentiveConfig", "OfferOutcome", "IncentiveMechanism"]


@dataclass(frozen=True)
class IncentiveConfig:
    """Parameters of Algorithm 3.

    Attributes:
        alpha: fraction of the saveable cost paid out as incentives
            (``0`` disables the mechanism; ``< 1`` guarantees a net
            saving per relocated station).
        mileage_slack: relative tolerance when matching the aggregation
            site's distance to the original trip mileage.
        battery_margin: consumption safety factor for the relocation ride.
        position_cap: cap on the service position ``t`` used in the offer
            ``v = alpha * (q + t*d) / |L_i|``.  Eq. 12's saving bound uses
            the station's true sequence position, but budgeting offers on
            the *post-aggregation* tour length (a small cap) keeps the
            payout below the realised saving when stations are only
            partially emptied.  ``None`` uses the uncapped position.
    """

    alpha: float = 0.4
    mileage_slack: float = 0.35
    battery_margin: float = 1.2
    position_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.mileage_slack < 0:
            raise ValueError(f"mileage_slack cannot be negative, got {self.mileage_slack}")
        if self.battery_margin < 1.0:
            raise ValueError(f"battery_margin must be >= 1, got {self.battery_margin}")
        if self.position_cap is not None and self.position_cap < 1:
            raise ValueError(f"position_cap must be >= 1, got {self.position_cap}")


@dataclass(frozen=True)
class OfferOutcome:
    """Result of one incentive interaction."""

    offered: bool
    accepted: bool
    incentive_paid: float = 0.0
    bike_id: Optional[int] = None
    aggregation_station: Optional[int] = None
    reason: str = ""

    @classmethod
    def no_offer(cls, reason: str) -> "OfferOutcome":
        """The neutral outcome: nothing offered, fleet untouched.

        The single fallback shape shared by the mechanism's own early
        exits and by :class:`repro.guard.GuardedIncentives` when its
        circuit breaker is open — degrading the incentive tier always
        means "make no offer", never a half-applied relocation.
        """
        return cls(offered=False, accepted=False, reason=reason)


class IncentiveMechanism:
    """Stateful Algorithm 3 bound to a fleet.

    Args:
        fleet: the bike fleet (stations indexed as in ``fleet.stations``).
        params: charging unit costs (``q``, ``d``, ``b``).
        config: mechanism parameters.
        population: rider-preference distribution.
        rng: randomness for sampling rider preferences.
        aggregation_targets: per-station preferred aggregation site; when
            absent the mechanism picks the mileage-matching neighbour
            holding the most low-energy bikes (greedy consolidation).
        alpha_controller: optional adaptive controller; when given, the
            live ``alpha`` it maintains overrides ``config.alpha`` and is
            updated from every offer outcome (Section IV-C Remarks).
        stations: the indexed station store answering the
            mileage-equivalent neighbour search.  Pass the planner's
            :class:`StationSet` to share one spatial index across tiers
            (the simulator does); when absent a private store is built
            over the fleet's stations and kept in sync lazily.
    """

    def __init__(
        self,
        fleet: Fleet,
        params: ChargingCostParams,
        config: Optional[IncentiveConfig] = None,
        population: Optional[UserPopulation] = None,
        rng: Optional[np.random.Generator] = None,
        aggregation_targets: Optional[Dict[int, int]] = None,
        alpha_controller: Optional[AdaptiveAlphaController] = None,
        stations: Optional[StationSet] = None,
    ) -> None:
        self.fleet = fleet
        self.params = params
        self.config = config or IncentiveConfig()
        self.population = population or UserPopulation()
        self._rng = rng or np.random.default_rng(0)
        self._targets = dict(aggregation_targets or {})
        self.alpha_controller = alpha_controller
        self.stations = stations if stations is not None else StationSet(fleet.stations)
        self.total_incentives_paid = 0.0
        self.offers_made = 0
        self.offers_accepted = 0
        self.relocations: List[OfferOutcome] = []

    def _sync_stations(self) -> None:
        """Index any fleet racks added since the last query (only relevant
        for a private store; a shared planner set is already current)."""
        for point in self.fleet.stations[self.stations.total_assigned:]:
            self.stations.add(point)

    # ------------------------------------------------------------------
    @property
    def alpha(self) -> float:
        """The live incentive level (controller-driven when one is set)."""
        if self.alpha_controller is not None:
            return self.alpha_controller.alpha
        return self.config.alpha

    def service_position(self, station: int) -> int:
        """Prospective 1-based service position ``t`` of ``station``.

        Uses the station's rank among stations currently needing service
        (a cheap stand-in for its position in the eventual TSP tour; the
        bound of Eq. 12 holds for any consistent ordering).
        """
        needing = self.fleet.stations_needing_service()
        if station in needing:
            return needing.index(station) + 1
        return len(needing) + 1

    def incentive_for(self, station: int) -> float:
        """The uniform offer ``v = alpha * (q + t*d) / |L_i|``.

        Returns 0 when the station holds no low-energy bikes.
        """
        low = self.fleet.low_energy_map().get(station, [])
        if not low:
            return 0.0
        t = self.service_position(station)
        if self.config.position_cap is not None:
            t = min(t, self.config.position_cap)
        return (
            self.alpha
            * (self.params.service_cost + t * self.params.delay_cost)
            / len(low)
        )

    def choose_aggregation_site(
        self, origin: int, destination: int
    ) -> Optional[int]:
        """Pick the neighbour ``k`` for a rider going ``origin -> destination``.

        Mileage-equivalence: ``|origin -> k|`` must match
        ``|origin -> destination|`` within the configured slack, so the
        rider pays no extra metered distance.  Among valid sites, prefer
        the one already holding the most low-energy bikes (consolidation),
        then the closest match, then the lowest id.  Returns ``None``
        when no site qualifies.

        This is the per-rider hot loop of Tier 2, so the candidate scan
        is batched: masks and the four-way preference key run as NumPy
        array operations over the whole annulus instead of one Python
        tuple comparison per candidate.  The selection is bit-identical
        to the scalar reference
        (:meth:`choose_aggregation_site_reference`) — same float
        expressions, and ``lexsort``'s last-key-primary order mirrors
        the tuple comparison exactly.
        """
        origin_point = self.fleet.stations[origin]
        trip_len = origin_point.distance_to(self.fleet.stations[destination])
        if trip_len <= 0:
            return None
        self._sync_stations()
        candidates = self.stations.within(
            origin_point, trip_len * (1.0 + self.config.mileage_slack) + 1e-9
        )
        if not candidates:
            return None
        ids = np.fromiter((k for k, _ in candidates), dtype=np.int64,
                          count=len(candidates))
        legs = np.fromiter((d for _, d in candidates), dtype=float,
                           count=len(candidates))
        mismatch = np.abs(legs - trip_len)
        valid = (
            (ids != origin)
            & (ids != destination)
            & (mismatch <= self.config.mileage_slack * trip_len)
        )
        if not valid.any():
            return None
        ids, mismatch = ids[valid], mismatch[valid]
        low_map = self.fleet.low_energy_map()
        low_here = np.fromiter(
            (len(low_map.get(int(k), ())) for k in ids), dtype=np.int64,
            count=ids.size,
        )
        explicit = self._targets.get(origin)
        not_explicit = (
            (ids != explicit).astype(np.int8)
            if explicit is not None
            else np.ones(ids.size, dtype=np.int8)
        )
        # Minimize (k != explicit, -low_here, |leg - trip|, k): lexsort
        # takes its keys least-significant first.
        order = np.lexsort((ids, mismatch, -low_here, not_explicit))
        return int(ids[order[0]])

    def choose_aggregation_site_reference(
        self, origin: int, destination: int
    ) -> Optional[int]:
        """Scalar reference of :meth:`choose_aggregation_site`.

        One Python-level key comparison per candidate — the historical
        implementation, kept as the parity oracle for the batched scan
        (the vectorized path must match it on every input).
        """
        origin_point = self.fleet.stations[origin]
        trip_len = origin_point.distance_to(self.fleet.stations[destination])
        if trip_len <= 0:
            return None
        self._sync_stations()
        low_map = self.fleet.low_energy_map()
        explicit = self._targets.get(origin)
        best: Optional[int] = None
        best_key = None
        # The mileage-equivalent sites form an annulus around the origin;
        # one radius query replaces the scan over every station (the tiny
        # epsilon keeps boundary sites that exactly meet the slack from
        # being lost to the radius rounding differently than |leg - trip|).
        radius = trip_len * (1.0 + self.config.mileage_slack) + 1e-9
        for k, leg in self.stations.within(origin_point, radius):
            if k in (origin, destination):
                continue
            if abs(leg - trip_len) > self.config.mileage_slack * trip_len:
                continue
            low_here = len(low_map.get(k, []))
            key = (k != explicit, -low_here, abs(leg - trip_len), k)
            if best_key is None or key < best_key:
                best_key = key
                best = k
        return best

    # ------------------------------------------------------------------
    def offer_ride(
        self, origin: int, destination: int, final_destination: Point
    ) -> OfferOutcome:
        """Run one incentive interaction for a departing rider.

        Args:
            origin: station ``i`` the rider picks up from.
            destination: parking ``j`` assigned for the trip (Algorithm 2).
            final_destination: the rider's true destination ``j*``.

        Returns:
            An :class:`OfferOutcome`; on acceptance the fleet is mutated
            (low bike ridden to the aggregation site, incentive paid).
        """
        if self.alpha == 0.0:
            return OfferOutcome.no_offer("alpha=0")
        low = self.fleet.low_energy_map().get(origin, [])
        if not low:
            return OfferOutcome.no_offer("no low-energy bikes")
        k = self.choose_aggregation_site(origin, destination)
        if k is None:
            return OfferOutcome.no_offer("no mileage-equivalent site")
        bike = self.fleet.pick_bike(origin, prefer_low=True)
        if bike is None:
            return OfferOutcome.no_offer("no low-energy bikes")
        leg = self.fleet.stations[origin].distance_to(self.fleet.stations[k])
        if not bike.battery.can_ride(leg, margin=self.config.battery_margin):
            return OfferOutcome.no_offer("battery too low for relocation")
        v = self.incentive_for(origin)
        extra_walk = self.fleet.stations[k].distance_to(final_destination)
        prefs = self.population.sample(self._rng)
        self.offers_made += 1
        if not accepts_offer(prefs, extra_walk, v):
            if self.alpha_controller is not None:
                self.alpha_controller.observe(False)
            return OfferOutcome(offered=True, accepted=False, reason="declined")
        if self.alpha_controller is not None:
            self.alpha_controller.observe(True)
        self.fleet.ride(bike.bike_id, k, leg)
        self.total_incentives_paid += v
        self.offers_accepted += 1
        outcome = OfferOutcome(
            offered=True,
            accepted=True,
            incentive_paid=v,
            bike_id=bike.bike_id,
            aggregation_station=k,
            reason="accepted",
        )
        self.relocations.append(outcome)
        return outcome

    @property
    def acceptance_rate(self) -> float:
        """Fraction of made offers that were accepted."""
        if self.offers_made == 0:
            return 0.0
        return self.offers_accepted / self.offers_made
