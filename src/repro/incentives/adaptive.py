"""Adaptive incentive levels — the Remarks of Section IV-C.

The paper sets ``alpha`` by hand per demand regime ("during rush hours
... a slightly larger alpha can be given; on weekends ... a smaller
alpha") and notes the failure mode where no user takes the offer and the
system "can raise alpha to attract more users" at the risk of exceeding
the budget.  :class:`AdaptiveAlphaController` automates exactly that
feedback loop: a multiplicative controller steers the observed acceptance
rate toward a target while clamping ``alpha`` inside a budget-safe band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["AdaptiveAlphaController"]


@dataclass
class AdaptiveAlphaController:
    """Multiplicative-feedback controller for the incentive level.

    Call :meth:`observe` after every offer; read :attr:`alpha` when
    making the next one.  Every ``window`` offers the controller compares
    the window's acceptance rate with the target and scales ``alpha`` up
    (too few acceptances) or down (over-paying) by ``step``, clamped to
    ``[alpha_min, alpha_max]``.

    Attributes:
        target_acceptance: desired fraction of accepted offers.
        alpha: the current incentive level (mutated by observations).
        alpha_min: lower clamp (0 disables incentives entirely).
        alpha_max: upper clamp; keep below 1 so every relocated station
            still nets a saving (Eq. 12).
        window: offers per adjustment.
        step: multiplicative adjustment factor (> 1).
    """

    target_acceptance: float = 0.5
    alpha: float = 0.4
    alpha_min: float = 0.05
    alpha_max: float = 0.95
    window: int = 20
    step: float = 1.25

    def __post_init__(self) -> None:
        if not 0.0 < self.target_acceptance < 1.0:
            raise ValueError(
                f"target_acceptance must be in (0, 1), got {self.target_acceptance}"
            )
        if not 0.0 <= self.alpha_min <= self.alpha <= self.alpha_max <= 1.0:
            raise ValueError(
                f"need 0 <= alpha_min <= alpha <= alpha_max <= 1, got "
                f"{self.alpha_min} / {self.alpha} / {self.alpha_max}"
            )
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.step <= 1.0:
            raise ValueError(f"step must exceed 1, got {self.step}")
        self._offers = 0
        self._accepted = 0
        self.history: List[float] = [self.alpha]

    def observe(self, accepted: bool) -> float:
        """Record one offer outcome; returns the (possibly updated) alpha."""
        self._offers += 1
        if accepted:
            self._accepted += 1
        if self._offers >= self.window:
            rate = self._accepted / self._offers
            if rate < self.target_acceptance:
                self.alpha = min(self.alpha * self.step, self.alpha_max)
            elif rate > self.target_acceptance:
                self.alpha = max(self.alpha / self.step, self.alpha_min)
            self.history.append(self.alpha)
            self._offers = 0
            self._accepted = 0
        return self.alpha

    @property
    def adjustments(self) -> int:
        """Number of completed adjustment windows."""
        return len(self.history) - 1
