"""The server backend of Fig. 3: a stateful placement service.

Trip requests "are streamed to the server backend, calculated by
E-sharing and assigned appropriate parking locations" (Section II-B).
:class:`PlacementService` is that backend: it routes each trip through
Algorithm 2, keeps the fleet inventory in sync, and implements
footnote 2 — "when customers pick up all the E-bikes from a station ...
the station is removed from P.  The algorithm can still establish a
station at this location depending on the requests later."

Station identity is owned by the planner's
:class:`~repro.core.station_set.StationSet`: ids are stable across
removals, so the service carries no id-remapping tables of its own — it
subscribes to the set's inventory hooks to grow the fleet's racks and
answers every location query straight from the shared store.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, List, Optional

from ..datasets.trips import TripRecord
from ..energy.fleet import Fleet
from ..errors import StateDriftError
from ..geo.points import Point
from .costs import FacilityCostFn
from .esharing import EsharingPlanner

__all__ = ["ServiceResponse", "PlacementService"]


@dataclass(frozen=True)
class ServiceResponse:
    """Answer to one trip request.

    Attributes:
        order_id: the request's id.
        served: whether a bike was available at the pickup station.
        origin_station: stable id of the pickup station (or -1).
        destination_station: stable id of the assigned parking (or -1).
        opened_new: the request opened a new parking online.
        removed_station: stable id of a station retired because this
            pickup emptied it (footnote 2), or None.
        walking_m: decision-time walking distance to the parking.
    """

    order_id: int
    served: bool
    origin_station: int
    destination_station: int
    opened_new: bool
    removed_station: Optional[int]
    walking_m: float


class PlacementService:
    """Stateful Tier-1 service wiring the planner to the fleet.

    Args:
        planner: an anchored Algorithm-2 planner.  Its stations carry
            stable ids ``0..k-1``; the fleet's rack list must line up
            with them (one rack per ever-assigned id).
        fleet: a fleet whose stations list matches the planner's.

    Raises:
        ValueError: if planner and fleet disagree on the station layout.
    """

    def __init__(self, planner: EsharingPlanner, fleet: Fleet) -> None:
        if planner.station_set.total_assigned != len(fleet.stations):
            raise ValueError(
                f"planner has {planner.station_set.total_assigned} station ids, "
                f"fleet has {len(fleet.stations)} racks; build the fleet on the "
                "planner's stations"
            )
        self.planner = planner
        self.fleet = fleet
        self.retired: List[int] = []
        self.responses: List[ServiceResponse] = []
        # Inventory hook: every station the planner opens online gets a
        # rack in the fleet under the same stable id.
        planner.station_set.subscribe(on_add=self._rack_for_new_station)

    def _rack_for_new_station(self, station_id: int, location: Point) -> None:
        rack = self.fleet.add_station(location)
        if rack != station_id:
            raise StateDriftError(
                f"fleet rack {rack} diverged from station id {station_id}"
            )

    # ------------------------------------------------------------------
    @property
    def active_station_ids(self) -> List[int]:
        """Stable ids of stations currently in the planner's set P."""
        return self.planner.station_set.ids()

    def station_location(self, station_id: int) -> Point:
        """Location of a stable station id (active or retired).

        Raises:
            KeyError: for an unknown id.
        """
        return self.planner.station_set.location(station_id)

    # ------------------------------------------------------------------
    def _pickup_station(self, origin: Point) -> Optional[int]:
        """Stable id of the nearest *active* station holding a bike."""
        hit = self.planner.station_set.nearest_where(
            origin, lambda sid: self.fleet.pick_bike(sid) is not None
        )
        return None if hit is None else hit[0]

    def handle_trip(self, trip: TripRecord) -> ServiceResponse:
        """Serve one trip end to end.

        Pickup: nearest active station with a bike (the trip is refused
        when none exists anywhere).  Drop-off: Algorithm 2's decision.
        If the pickup empties its station, the station retires from P.
        """
        origin_id = self._pickup_station(trip.start)
        if origin_id is None:
            response = ServiceResponse(
                order_id=trip.order_id, served=False,
                origin_station=-1, destination_station=-1,
                opened_new=False, removed_station=None, walking_m=0.0,
            )
            self.responses.append(response)
            return response

        decision = self.planner.offer(trip.end)
        dest_id = decision.station_index

        bike = self.fleet.pick_bike(origin_id)
        if bike is None:  # guaranteed by _pickup_station
            raise StateDriftError(
                f"station {origin_id} emptied between selection and pickup "
                f"for order {trip.order_id}"
            )
        self.fleet.ride(bike.bike_id, dest_id, trip.distance)

        removed: Optional[int] = None
        if not self.fleet.bikes_at(origin_id) and origin_id != dest_id:
            self.planner.remove_station(origin_id)
            self.retired.append(origin_id)
            removed = origin_id

        response = ServiceResponse(
            order_id=trip.order_id, served=True,
            origin_station=origin_id, destination_station=dest_id,
            opened_new=decision.opened, removed_station=removed,
            walking_m=decision.walking_cost,
        )
        self.responses.append(response)
        return response

    def degraded_assign(self, trip: TripRecord) -> ServiceResponse:
        """Serve a trip in degraded mode: nearest existing station, no
        state mutation.

        The graceful-degradation answer when the planner is marked
        unhealthy: the rider is pointed at the nearest *active* station
        for both pickup and drop-off, nothing is opened or retired, no
        bike moves, and the response is **not** recorded in
        :attr:`responses` — the caller (the guarded runtime) owns the
        degraded-decision ledger, because these answers are outside the
        journaled history and must not contaminate bit-identical replay.

        Raises:
            StateDriftError: when no station is active at all (nothing
                sane can be served; the supervisor must halt).
        """
        store = self.planner.station_set
        if not store.ids():
            raise StateDriftError(
                f"degraded mode has no active station for order {trip.order_id}"
            )
        origin = store.nearest(trip.start)
        dest = store.nearest(trip.end)
        return ServiceResponse(
            order_id=trip.order_id, served=True,
            origin_station=origin[0], destination_station=dest[0],
            opened_new=False, removed_station=None, walking_m=dest[1],
        )

    def serve(self, trips: Iterable[TripRecord]) -> List[ServiceResponse]:
        """Serve a batch of trips in arrival order.

        The service cannot route a whole batch through the planner's
        vectorized :meth:`~repro.core.esharing.EsharingPlanner.replay`:
        each pickup may empty a rack and retire its station (footnote 2),
        which invalidates the nearest-station cache mid-batch, so trips
        stay sequential here.  Drop-off-only streams — no fleet in the
        loop — should call ``planner.replay`` directly.

        Returns:
            The responses for this batch, in order (also appended to
            :attr:`responses`).
        """
        return [self.handle_trip(t) for t in trips]

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state of the whole service: planner + fleet +
        the response stream and retired-id ledger.

        Everything needed to continue the run bit-identically after a
        crash, except the planner's opening-cost callable — pass that to
        :meth:`from_state` again.
        """
        return {
            "planner": self.planner.state_dict(),
            "fleet": self.fleet.state_dict(),
            "retired": list(self.retired),
            "responses": [asdict(r) for r in self.responses],
        }

    @classmethod
    def from_state(
        cls, state: dict, facility_cost: FacilityCostFn
    ) -> "PlacementService":
        """Rebuild a service from :meth:`state_dict` output.

        The planner and fleet are restored first, then the service is
        constructed around them — which re-wires the rack-growth
        subscription exactly as the original construction did.

        Raises:
            KeyError: on a missing field.
            ValueError: if the restored planner and fleet disagree on the
                station layout (a corrupt or hand-edited snapshot).
        """
        planner = EsharingPlanner.from_state(state["planner"], facility_cost)
        fleet = Fleet.from_state(state["fleet"])
        service = cls(planner, fleet)
        service.retired = [int(sid) for sid in state["retired"]]
        service.responses = [
            ServiceResponse(**response) for response in state["responses"]
        ]
        return service

    # ------------------------------------------------------------------
    def consistency_check(self) -> None:
        """Verify the planner/fleet/id bookkeeping is coherent.

        Raises:
            StateDriftError: on any drift between the views (real
                exceptions, not ``assert``, so the guard also holds under
                ``python -O``).
        """
        store = self.planner.station_set
        if store.total_assigned != len(self.fleet.stations):
            raise StateDriftError(
                f"planner knows {store.total_assigned} station ids but the "
                f"fleet has {len(self.fleet.stations)} racks"
            )
        for sid in store.ids():
            if store.location(sid) != self.fleet.stations[sid]:
                raise StateDriftError(
                    f"station id {sid} diverged between planner and fleet"
                )
        for sid in self.retired:
            if store.is_active(sid):
                raise StateDriftError(
                    f"station id {sid} is on the retired ledger but still "
                    "active in the planner"
                )
