"""The server backend of Fig. 3: a stateful placement service.

Trip requests "are streamed to the server backend, calculated by
E-sharing and assigned appropriate parking locations" (Section II-B).
:class:`PlacementService` is that backend: it owns stable station ids,
routes each trip through Algorithm 2, keeps the fleet inventory in sync,
and implements footnote 2 — "when customers pick up all the E-bikes from
a station ... the station is removed from P.  The algorithm can still
establish a station at this location depending on the requests later."

The planner's internal station list re-indexes on removal; the service
maintains the stable-id mapping so callers never see indices move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..datasets.trips import TripRecord
from ..energy.fleet import Fleet
from ..geo.distance import nearest_point_index
from ..geo.points import Point
from .esharing import EsharingPlanner

__all__ = ["ServiceResponse", "PlacementService"]


@dataclass(frozen=True)
class ServiceResponse:
    """Answer to one trip request.

    Attributes:
        order_id: the request's id.
        served: whether a bike was available at the pickup station.
        origin_station: stable id of the pickup station (or -1).
        destination_station: stable id of the assigned parking (or -1).
        opened_new: the request opened a new parking online.
        removed_station: stable id of a station retired because this
            pickup emptied it (footnote 2), or None.
        walking_m: decision-time walking distance to the parking.
    """

    order_id: int
    served: bool
    origin_station: int
    destination_station: int
    opened_new: bool
    removed_station: Optional[int]
    walking_m: float


class PlacementService:
    """Stateful Tier-1 service wiring the planner to the fleet.

    Args:
        planner: an anchored Algorithm-2 planner.  Its current stations
            become stations ``0..k-1``.
        fleet: a fleet whose stations list matches the planner's.

    Raises:
        ValueError: if planner and fleet disagree on the station layout.
    """

    def __init__(self, planner: EsharingPlanner, fleet: Fleet) -> None:
        if len(planner.stations) != len(fleet.stations):
            raise ValueError(
                f"planner has {len(planner.stations)} stations, fleet has "
                f"{len(fleet.stations)}"
            )
        self.planner = planner
        self.fleet = fleet
        self.locations: List[Point] = list(fleet.stations)
        # planner index -> stable id, kept aligned with planner.stations.
        self._planner_ids: List[int] = list(range(len(self.locations)))
        self.retired: List[int] = []
        self.responses: List[ServiceResponse] = []

    # ------------------------------------------------------------------
    @property
    def active_station_ids(self) -> List[int]:
        """Stable ids of stations currently in the planner's set P."""
        return list(self._planner_ids)

    def station_location(self, station_id: int) -> Point:
        """Location of a stable station id (active or retired).

        Raises:
            KeyError: for an unknown id.
        """
        if not 0 <= station_id < len(self.locations):
            raise KeyError(f"unknown station id {station_id}")
        return self.locations[station_id]

    # ------------------------------------------------------------------
    def _pickup_station(self, origin: Point) -> Optional[int]:
        """Stable id of the nearest *active* station holding a bike."""
        candidates = [
            (sid, self.locations[sid].distance_to(origin))
            for sid in self._planner_ids
            if self.fleet.pick_bike(sid) is not None
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda t: (t[1], t[0]))[0]

    def handle_trip(self, trip: TripRecord) -> ServiceResponse:
        """Serve one trip end to end.

        Pickup: nearest active station with a bike (the trip is refused
        when none exists anywhere).  Drop-off: Algorithm 2's decision.
        If the pickup empties its station, the station retires from P.
        """
        origin_id = self._pickup_station(trip.start)
        if origin_id is None:
            response = ServiceResponse(
                order_id=trip.order_id, served=False,
                origin_station=-1, destination_station=-1,
                opened_new=False, removed_station=None, walking_m=0.0,
            )
            self.responses.append(response)
            return response

        decision = self.planner.offer(trip.end)
        if decision.opened:
            new_id = len(self.locations)
            new_location = self.planner.stations[decision.station_index]
            self.locations.append(new_location)
            self._planner_ids.append(new_id)
            self.fleet.stations.append(new_location)
            dest_id = new_id
        else:
            dest_id = self._planner_ids[decision.station_index]

        bike = self.fleet.pick_bike(origin_id)
        assert bike is not None  # guaranteed by _pickup_station
        self.fleet.ride(bike.bike_id, dest_id, trip.distance)

        removed: Optional[int] = None
        if not self.fleet.bikes_at(origin_id) and origin_id != dest_id:
            planner_idx = self._planner_ids.index(origin_id)
            self.planner.remove_station(planner_idx)
            del self._planner_ids[planner_idx]
            self.retired.append(origin_id)
            removed = origin_id

        response = ServiceResponse(
            order_id=trip.order_id, served=True,
            origin_station=origin_id, destination_station=dest_id,
            opened_new=decision.opened, removed_station=removed,
            walking_m=decision.walking_cost,
        )
        self.responses.append(response)
        return response

    # ------------------------------------------------------------------
    def consistency_check(self) -> None:
        """Assert the planner/fleet/id bookkeeping is coherent.

        Raises:
            AssertionError: on any drift between the three views.
        """
        assert len(self._planner_ids) == len(self.planner.stations)
        for idx, sid in enumerate(self._planner_ids):
            assert self.planner.stations[idx] == self.locations[sid], (
                f"planner slot {idx} diverged from stable id {sid}"
            )
        assert len(self.fleet.stations) == len(self.locations)
        for sid in self.retired:
            assert sid not in self._planner_ids
