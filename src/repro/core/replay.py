"""Shared machinery for the batched ``replay`` paths of the online planners.

Every online planner (Algorithm 2, Meyerson, online k-means) spends its
per-arrival budget on the same two things: a nearest-station query and a
handful of scalar cost/probability operations.  The per-call APIs pay a
Python-level ``StationSet.nearest`` per arrival; the batched replay paths
instead maintain a :class:`NearestCache` — the nearest active station of
every *future* arrival, computed once with blocked NumPy broadcasting and
patched incrementally when a station opens (only strictly-closer entries
change, and a new station can never steal a tie because its id is the
highest).

Bit-identity contract (see DESIGN.md "Performance"):

* The cache is only used to *select* the winning station.  The decision
  distance is then recomputed per arrival with the same scalar
  ``Point.distance_to`` (``math.hypot``) the per-call path uses, because
  vectorized distance math (``np.hypot``, or the squared distances the
  cache ranks by) is not bitwise interchangeable with ``math.hypot``.  A
  selection flip would need two true distances within ~1 ulp of each
  other that are *not* bitwise-equal under both formulas; exact ties
  (duplicate points) produce identical bits under both and resolve to the
  lowest id either way.
* RNG draws happen one per arrival in arrival order.  Replay fetches them
  in blocks via ``rng.uniform(size=m)``, which NumPy guarantees consumes
  the stream exactly like ``m`` scalar ``rng.uniform()`` calls.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..geo.points import Point
from .offline import DEFAULT_BLOCK_ELEMS

__all__ = ["NearestCache", "UniformStream", "checkpoint_schedule"]


class NearestCache:
    """Nearest active station per future arrival, patched on openings.

    The cache ranks stations by *squared* distance — monotone in the
    true distance, cheaper by a 15M-element sqrt on big blocks, and
    exact ties (duplicate coordinates) are still bitwise-equal, so the
    lowest-id tie-break is preserved.

    Args:
        arrivals: the remaining request destinations, in arrival order —
            either a sequence of :class:`Point` or an ``(xs, ys)`` tuple
            of 1-D coordinate arrays (the columnar fast path: no
            per-point Python objects are materialised).
        station_ids: stable ids of the currently active stations,
            ascending (the tie-break order).
        station_points: locations matching ``station_ids``.
        block_elems: cap on the ``arrivals x stations`` broadcast block.

    Attributes:
        best_id: per-arrival id of the nearest station (-1 when no
            station is active yet).
        best_d2: per-arrival squared distance to it (``inf`` when none).
    """

    def __init__(
        self,
        arrivals,
        station_ids: Sequence[int],
        station_points: Sequence[Point],
        block_elems: int = DEFAULT_BLOCK_ELEMS,
    ) -> None:
        if isinstance(arrivals, tuple):
            xs, ys = arrivals
            self._x = np.asarray(xs, dtype=float)
            self._y = np.asarray(ys, dtype=float)
            n = int(self._x.size)
        else:
            n = len(arrivals)
            self._x = np.asarray([p.x for p in arrivals], dtype=float)
            self._y = np.asarray([p.y for p in arrivals], dtype=float)
        self.best_id = np.full(n, -1, dtype=np.int64)
        self.best_d2 = np.full(n, np.inf, dtype=float)
        k = len(station_points)
        if n == 0 or k == 0:
            return
        ids = np.asarray(station_ids, dtype=np.int64)
        sx = np.asarray([p.x for p in station_points], dtype=float)
        sy = np.asarray([p.y for p in station_points], dtype=float)
        chunk = max(1, min(k, block_elems // max(n, 1)))
        rows = np.arange(n)
        for lo in range(0, k, chunk):
            hi = min(lo + chunk, k)
            d2 = self._x[:, None] - sx[None, lo:hi]
            d2 *= d2
            dy = self._y[:, None] - sy[None, lo:hi]
            dy *= dy
            d2 += dy
            col = d2.argmin(axis=1)  # first occurrence -> lowest id in chunk
            dmin = d2[rows, col]
            # Strict < keeps earlier (lower-id) chunks on ties.
            better = dmin < self.best_d2
            self.best_d2[better] = dmin[better]
            self.best_id[better] = ids[lo:hi][col[better]]

    def open(self, t: int, point: Point, station_id: int) -> None:
        """A station opened at arrival ``t``; update later arrivals.

        Only strictly-closer entries switch: the new id is the highest
        ever assigned, so distance ties must keep the incumbent.
        """
        tail_d2 = self.best_d2[t + 1 :]
        if tail_d2.size == 0:
            return
        d2 = self._x[t + 1 :] - point.x
        d2 *= d2
        dy = self._y[t + 1 :] - point.y
        dy *= dy
        d2 += dy
        closer = d2 < tail_d2
        tail_d2[closer] = d2[closer]
        self.best_id[t + 1 :][closer] = station_id


class UniformStream:
    """Block-buffered ``rng.uniform()`` draws, one per arrival in order.

    ``rng.uniform(size=m)`` consumes the bit stream exactly like ``m``
    scalar calls, so fetching in blocks keeps replay on the same RNG
    trajectory as the per-call API while skipping per-call overhead.
    """

    _BLOCK = 8192

    def __init__(self, rng: np.random.Generator, total: int) -> None:
        self._rng = rng
        self._left = total
        self._buf: np.ndarray = np.empty(0)
        self._pos = 0

    def next(self) -> float:
        """The next uniform draw, refilling the block buffer as needed.

        Raises:
            RuntimeError: when more than ``total`` draws are requested.
        """
        if self._pos >= self._buf.size:
            if self._left <= 0:
                raise RuntimeError("uniform stream exhausted")
            take = min(self._BLOCK, self._left)
            self._buf = self._rng.uniform(size=take)
            self._left -= take
            self._pos = 0
        u = float(self._buf[self._pos])
        self._pos += 1
        return u


def checkpoint_schedule(counter: float, n: int, period: float) -> List[int]:
    """Arrival indices (0-based) where a ``counter >= period`` checkpoint
    fires, given the per-call contract: increment the counter once per
    arrival, fire when it reaches ``period``, reset it to zero.

    ``counter`` is the value carried in from arrivals already processed.
    The schedule is exact because ``period`` never changes mid-stream
    (``beta`` and ``k`` are fixed for a planner's lifetime).
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    fires: List[int] = []
    step = max(1, math.ceil(period))
    nxt = max(1, math.ceil(period - counter))
    while nxt <= n:
        fires.append(nxt - 1)
        nxt += step
    return fires
