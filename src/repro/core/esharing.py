"""E-Sharing's online placement with deviation penalty (Algorithm 2).

The paper's Tier-1 contribution: an online algorithm anchored to the
offline near-optimal solution.  Per streaming request with destination
``i``:

1. measure the walking cost ``c_ij`` to the nearest existing parking ``j``;
2. open a new parking at ``i`` with probability
   ``min(g(i, j) * c_ij / f_i, 1)``, otherwise assign to ``j``;
3. every ``beta * k`` arrivals the opening cost doubles (so openings grow
   exponentially harder) and a Peacock 2-D KS test compares the live
   destination distribution against the historical one, switching the
   penalty function per the Section V-C thresholds.

Initialisation follows Algorithm 2 exactly: ``w* = min pairwise distance
in P / 2`` and the opening cost is scaled to ``f_i * w* / k`` — small at
first so early dynamics can be absorbed, prohibitive later.  The space
cost *charged* for an opened parking is the unscaled ``f_i``: the scaled
value only controls the opening probability.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..geo.points import Point
from ..serialize import rng_from_state, rng_to_state
from ..stats.ks2d import CachedKS2D, LiveWindow, ks2d_peacock
from .costs import DemandPoint, FacilityCostFn
from .penalty import (
    PENALTY_REGISTRY,
    SIMILAR_THRESHOLD,
    PenaltyFunction,
    TypeIIPenalty,
    select_penalty,
)
from .replay import NearestCache, UniformStream, checkpoint_schedule
from .result import PlacementResult
from .station_set import BACKENDS, StationSet
from .tripblock import TripBlock

__all__ = ["EsharingConfig", "EsharingDecision", "esharing_placement", "EsharingPlanner"]


@dataclass(frozen=True)
class EsharingConfig:
    """Knobs of Algorithm 2.

    Attributes:
        beta: opening-budget ratio; every ``beta * k`` arrivals the
            opening cost doubles and the KS test re-runs (``beta >= 1``).
        tolerance_m: penalty tolerance level ``L`` (paper uses 200 m).
        adaptive_tolerance: widen ``L`` when the live distribution
            diverges from history (Section III-D: "the system could
            increase L and fit such shift"), scale back when it returns.
        exact_ks: use the exact Peacock enumeration instead of the fast
            variant for the periodic test.
        history_window: cap on the samples (both the historical reference
            and the live window) used in the KS comparison; larger is
            more accurate but the test is quadratic in the sample size.
        initial_open_cost_m: the probability-control opening cost (metres)
            a *typical* location starts at.  ``None`` uses ``w*`` (half
            the minimum anchor spacing); see the calibration note in the
            class docstring.
        reset_on_shift: when the periodic KS test detects a *less
            similar* regime (below the Section V-C 80% threshold), reset
            the opening cost to its initial value so the system can
            re-adapt.  Without this, the exponential doubling eventually
            makes openings impossible and a late demand surge (the
            concert case of Section III-C) could never be absorbed.
        fixed_penalty: pin the penalty function to one type (a name from
            :data:`repro.core.penalty.PENALTY_REGISTRY`) instead of
            switching by KS similarity — the ablation of Section V-B.
        nn_backend: nearest-neighbour backend of the underlying
            :class:`~repro.core.station_set.StationSet` — ``"linear"``
            (reference O(k) scan) or ``"grid"`` (bucketed index,
            sub-linear per request at production station counts).
            Placement output is bit-identical across backends.
        nn_cell_size: grid-bucket side (metres) for the ``"grid"``
            backend; ``None`` uses the StationSet default.
    """

    beta: float = 1.5
    tolerance_m: float = 200.0
    adaptive_tolerance: bool = False
    exact_ks: bool = False
    history_window: int = 800
    initial_open_cost_m: Optional[float] = None
    reset_on_shift: bool = True
    fixed_penalty: Optional[str] = None
    nn_backend: str = "linear"
    nn_cell_size: Optional[float] = None

    def __post_init__(self) -> None:
        if self.beta < 1.0:
            raise ValueError(f"beta must be >= 1, got {self.beta}")
        if self.tolerance_m <= 0:
            raise ValueError(f"tolerance_m must be positive, got {self.tolerance_m}")
        if self.history_window <= 0:
            raise ValueError(f"history_window must be positive, got {self.history_window}")
        if self.initial_open_cost_m is not None and self.initial_open_cost_m <= 0:
            raise ValueError(
                f"initial_open_cost_m must be positive, got {self.initial_open_cost_m}"
            )
        if self.fixed_penalty is not None:
            if self.fixed_penalty not in PENALTY_REGISTRY:
                raise ValueError(
                    f"unknown penalty {self.fixed_penalty!r}; "
                    f"choose from {sorted(PENALTY_REGISTRY)}"
                )
        if self.nn_backend not in BACKENDS:
            raise ValueError(
                f"unknown nn_backend {self.nn_backend!r}; choose from {BACKENDS}"
            )
        if self.nn_cell_size is not None and self.nn_cell_size <= 0:
            raise ValueError(
                f"nn_cell_size must be positive, got {self.nn_cell_size}"
            )


@dataclass(frozen=True)
class EsharingDecision:
    """Trace entry for one request.

    ``station_index`` is the *stable id* of the assigned (or newly
    opened) station in the planner's :class:`StationSet`: it survives
    later removals, and equals the position in ``planner.stations``
    whenever no station has been removed.
    """

    destination: Point
    station_index: int
    opened: bool
    walking_cost: float
    open_probability: float
    penalty_name: str


class EsharingPlanner:
    """Stateful Algorithm 2 — feed requests one at a time.

    Args:
        offline_stations: the anchor set ``P`` from Algorithm 1.
        facility_cost: unscaled opening cost ``f_i``.
        historical: ``(n, 2)`` destination sample the offline solution was
            computed from (the KS reference ``H``).
        rng: randomness for opening coin flips.
        config: algorithm parameters.

    Raises:
        ValueError: if the anchor set is empty.
    """

    def __init__(
        self,
        offline_stations: Sequence[Point],
        facility_cost: FacilityCostFn,
        historical: np.ndarray,
        rng: np.random.Generator,
        config: Optional[EsharingConfig] = None,
    ) -> None:
        offline_stations = list(offline_stations)
        if not offline_stations:
            raise ValueError("Algorithm 2 needs a non-empty offline anchor set")
        self.config = config or EsharingConfig()
        self.station_set = StationSet(
            offline_stations,
            backend=self.config.nn_backend,
            cell_size=self.config.nn_cell_size,
        )
        self.k = len(offline_stations)
        self._facility_cost = facility_cost
        self._historical = np.asarray(historical, dtype=float)
        if self._historical.ndim != 2 or self._historical.shape[1] != 2:
            raise ValueError("historical sample must be an (n, 2) array")
        window = self.config.history_window
        if self._historical.shape[0] > window:
            # Deterministic thinning keeps the KS test near-quadratic in
            # the window, not in the full history.
            idx = np.linspace(0, self._historical.shape[0] - 1, window).astype(int)
            self._historical = self._historical[idx]
        # The historical side of every periodic KS test is fixed for the
        # planner's lifetime — sort/rank it once instead of per checkpoint.
        self._ks_cache = CachedKS2D(self._historical)
        self._rng = rng
        # Line 3: w* = min pairwise distance / 2 (0 for a single anchor).
        # The StationSet maintains the minimum spacing incrementally as
        # anchors are loaded, replacing the O(k^2) matrix rebuild.
        if self.k >= 2:
            w_star = self.station_set.min_spacing() / 2.0
        else:
            w_star = self.config.tolerance_m
        # Line 4 rescales the opening cost so that it starts *small*
        # ("initially, the opening cost is small so the system is
        # encouraged to open new parking"), then doubles every beta*k
        # arrivals.  Calibration note: read literally, f_i * w*/k makes
        # the opening probability c/f astronomically small (f_i is ~10 km
        # while walking costs are ~10^2 m), which contradicts the quoted
        # design intent and never opens anything.  We therefore map the
        # *typical* unscaled f_i onto the anchor half-spacing w* —
        # preserving relative cost differences between locations — which
        # reproduces the Table V behaviour (E-Sharing opens ~1.5x the
        # offline count, fewer than Meyerson).  Override with
        # config.initial_open_cost_m for ablations.
        typical_f = float(np.mean([facility_cost(s) for s in self.stations]))
        initial = self.config.initial_open_cost_m
        if initial is None:
            initial = max(w_star, 1e-9)
        self._cost_scale = initial / max(typical_f, 1e-9)
        self._initial_cost_scale = self._cost_scale
        self._shift_absorbed = False
        self._removals = 0
        self._arrivals_since_check = 0
        # beta and k never change, so the checkpoint period is a constant.
        self._check_period = self.config.beta * self.k
        if self.config.fixed_penalty is not None:
            self.penalty: PenaltyFunction = PENALTY_REGISTRY[self.config.fixed_penalty](
                self.config.tolerance_m
            )
        else:
            self.penalty = TypeIIPenalty(tolerance=self.config.tolerance_m)
        self._live = LiveWindow(window)
        self.decisions: List[EsharingDecision] = []
        self.walking = 0.0
        self.space = float(sum(facility_cost(s) for s in self.stations))
        self.online_opened: List[int] = []
        self.similarity_history: List[float] = []
        self.ks_seconds = 0.0

    @property
    def stations(self) -> List[Point]:
        """Locations of the active stations, in ascending-id order."""
        return self.station_set.locations()

    # ------------------------------------------------------------------
    def offer(self, destination: Point) -> EsharingDecision:
        """Process one request (lines 5-11 of Algorithm 2)."""
        idx, c_ij = self.station_set.nearest(destination)
        scaled_f = self._facility_cost(destination) * self._cost_scale
        g = self.penalty.value(c_ij)
        prob = 1.0 if scaled_f <= 0 else min(g * c_ij / scaled_f, 1.0)
        opened = bool(self._rng.uniform() < prob) and c_ij > 0
        if opened:
            station_index = self.station_set.add(destination)
            self.online_opened.append(station_index)
            self.space += self._facility_cost(destination)
            walking_cost = 0.0
        else:
            station_index = idx
            walking_cost = c_ij
            self.walking += c_ij
        self._arrivals_since_check += 1
        self._live.push(destination.x, destination.y)
        if self._arrivals_since_check >= self._check_period:
            self._periodic_check()
        decision = EsharingDecision(
            destination=destination,
            station_index=station_index,
            opened=opened,
            walking_cost=walking_cost,
            open_probability=prob,
            penalty_name=self.penalty.name,
        )
        self.decisions.append(decision)
        return decision

    def replay(self, stream: Sequence[Point]) -> List[EsharingDecision]:
        """Process a whole request stream through the batched fast path.

        Bit-identical to calling :meth:`offer` once per element, and
        interleaves freely with per-call offers: it carries in the
        current checkpoint counter, cost scale and live window, and
        leaves the planner in exactly the state the per-call loop would.
        The speedup comes from replacing the per-arrival
        ``StationSet.nearest`` scan with a :class:`NearestCache`
        (vectorized upfront, patched incrementally per opening), fetching
        the per-arrival RNG draws in blocks, and precomputing the
        doubling-checkpoint schedule instead of testing a counter per
        arrival.  Decision distances are recomputed with the scalar
        ``Point.distance_to`` so probabilities and walking sums match the
        per-call path bit for bit (see ``core/replay.py``).

        ``stream`` may also be a :class:`~repro.core.tripblock.TripBlock`
        — its trip *end* coordinates are the request destinations, and
        the cache is seeded straight from the columnar arrays without
        materialising per-point objects.
        """
        if isinstance(stream, TripBlock):
            n = len(stream)
            if n == 0:
                return []
            store = self.station_set
            cache = NearestCache(
                (stream.end_x, stream.end_y), store.ids(), store.locations()
            )
            ex = stream.end_x.tolist()
            ey = stream.end_y.tolist()
            destinations = [Point(ex[t], ey[t]) for t in range(n)]
        else:
            destinations = list(stream)
            n = len(destinations)
            if n == 0:
                return []
            store = self.station_set
            cache = NearestCache(destinations, store.ids(), store.locations())
        uniforms = UniformStream(self._rng, n)
        fires = checkpoint_schedule(self._arrivals_since_check, n, self._check_period)
        fire_iter = iter(fires)
        next_fire = next(fire_iter, -1)
        facility_cost = self._facility_cost
        out: List[EsharingDecision] = []
        # Hot-loop locals.  cost_scale and the penalty only change inside
        # _periodic_check, so they are re-read right after each fire; the
        # rest are invariant method/bound lookups hoisted out of the loop.
        cost_scale = self._cost_scale
        penalty_value = self.penalty.value
        penalty_name = self.penalty.name
        live_push = self._live.push
        rng_next = uniforms.next
        store_location = store.location
        trace = self.decisions.append
        emit = out.append
        for t, dest in enumerate(destinations):
            sid = int(cache.best_id[t])
            c_ij = dest.distance_to(store_location(sid))
            scaled_f = facility_cost(dest) * cost_scale
            g = penalty_value(c_ij)
            prob = 1.0 if scaled_f <= 0 else min(g * c_ij / scaled_f, 1.0)
            opened = bool(rng_next() < prob) and c_ij > 0
            if opened:
                station_index = store.add(dest)
                self.online_opened.append(station_index)
                self.space += facility_cost(dest)
                walking_cost = 0.0
                cache.open(t, dest, station_index)
            else:
                station_index = sid
                walking_cost = c_ij
                self.walking += c_ij
            live_push(dest.x, dest.y)
            if t == next_fire:
                self._periodic_check()
                next_fire = next(fire_iter, -1)
                cost_scale = self._cost_scale
                penalty_value = self.penalty.value
                penalty_name = self.penalty.name
            decision = EsharingDecision(
                destination=dest,
                station_index=station_index,
                opened=opened,
                walking_cost=walking_cost,
                open_probability=prob,
                penalty_name=penalty_name,
            )
            trace(decision)
            emit(decision)
        # Restore the per-call counter contract for any later offer().
        if fires:
            self._arrivals_since_check = n - 1 - fires[-1]
        else:
            self._arrivals_since_check += n
        return out

    def remove_station(self, station_index: int) -> None:
        """Footnote 2: a station emptied of E-bikes leaves ``P``.

        ``station_index`` is the station's stable id.  The location may
        be re-opened by a later request (under a fresh id).  Space cost
        already paid is not refunded.

        Raises:
            IndexError: on an unknown or already-removed id.
        """
        if station_index not in self.station_set:
            raise IndexError(f"no active station with id {station_index}")
        self.station_set.remove(station_index)
        # Ids are stable, so surviving entries need no re-numbering.
        self.online_opened = [i for i in self.online_opened if i != station_index]
        self._removals += 1

    # ------------------------------------------------------------------
    def _periodic_check(self) -> None:
        """Lines 7-10: double the opening cost, re-test, switch penalty."""
        start = time.perf_counter()
        try:
            self._check()
        finally:
            self.ks_seconds += time.perf_counter() - start

    def _check(self) -> None:
        self._arrivals_since_check = 0
        self._cost_scale *= 2.0
        if len(self._live) < 5:
            return
        live = self._live.array()
        if self.config.exact_ks:
            result = ks2d_peacock(self._historical, live)
        else:
            result = self._ks_cache.test(live)
        similarity = result.similarity
        self.similarity_history.append(similarity)
        tolerance = self.config.tolerance_m
        if self.config.adaptive_tolerance:
            # Widen L proportionally to the measured divergence D.
            tolerance = self.config.tolerance_m * (1.0 + 2.0 * result.statistic)
        if self.config.fixed_penalty is None:
            self.penalty = select_penalty(similarity, tolerance=tolerance)
        elif tolerance != self.penalty.tolerance:
            self.penalty = self.penalty.with_tolerance(tolerance)
        if similarity >= SIMILAR_THRESHOLD:
            # Back in a known regime: re-arm the shift latch.
            self._shift_absorbed = False
        elif (
            self.config.reset_on_shift
            and not self._shift_absorbed
            and result.p_value < 0.05
        ):
            # A statistically significant regime shift re-opens the
            # budget once: without this the exponential doubling would
            # forbid stations at a surge arriving late in the stream.
            # The latch keeps the budget bounded during a sustained
            # shift (normal doubling resumes until similarity recovers),
            # and the significance gate filters the noisy similarity
            # readings that small live windows produce.
            self._cost_scale = self._initial_cost_scale
            self._shift_absorbed = True

    # ------------------------------------------------------------------
    def state_dict(self, include_history: bool = True) -> dict:
        """Checkpointable state for bit-identical crash recovery.

        Captures everything :meth:`offer` reads or writes — the station
        store, cost scale and doubling counter, penalty type and
        tolerance, KS live window, shift latch, and the RNG bit stream —
        so a planner rebuilt by :meth:`from_state` continues the run with
        the exact coin flips and checkpoint schedule the original would
        have used.  The opening-cost *function* is not serialisable (it
        is an arbitrary callable) and must be passed to
        :meth:`from_state` again.

        Args:
            include_history: also capture the decision trace.  Without it
                the snapshot is O(state) instead of O(arrivals), at the
                price that :meth:`result` reports only post-restore
                decisions.
        """
        state = {
            "config": asdict(self.config),
            "k": self.k,
            "station_set": self.station_set.state_dict(),
            "historical": self._historical.tolist(),
            "cost_scale": self._cost_scale,
            "initial_cost_scale": self._initial_cost_scale,
            "shift_absorbed": self._shift_absorbed,
            "removals": self._removals,
            "arrivals_since_check": self._arrivals_since_check,
            "penalty": {"name": self.penalty.name, "tolerance": self.penalty.tolerance},
            "live": self._live.state_dict(),
            "rng": rng_to_state(self._rng),
            "walking": self.walking,
            "space": self.space,
            "online_opened": list(self.online_opened),
            "similarity_history": list(self.similarity_history),
            "ks_seconds": self.ks_seconds,
            "decisions": None,
        }
        if include_history:
            state["decisions"] = [
                {
                    "destination": [d.destination.x, d.destination.y],
                    "station_index": d.station_index,
                    "opened": d.opened,
                    "walking_cost": d.walking_cost,
                    "open_probability": d.open_probability,
                    "penalty_name": d.penalty_name,
                }
                for d in self.decisions
            ]
        return state

    @classmethod
    def from_state(
        cls, state: dict, facility_cost: FacilityCostFn
    ) -> "EsharingPlanner":
        """Rebuild a planner from :meth:`state_dict` output.

        ``facility_cost`` must be the same *deterministic* function the
        original planner ran with — memoised random costs (e.g.
        :func:`~repro.core.costs.uniform_facility_cost` with a fresh RNG)
        would break bit identity for locations not yet drawn.

        Raises:
            KeyError: on a missing field or unknown penalty name.
            ValueError: on malformed nested state.
        """
        planner = cls.__new__(cls)
        planner.config = EsharingConfig(**state["config"])
        planner.station_set = StationSet.from_state(state["station_set"])
        planner.k = int(state["k"])
        planner._facility_cost = facility_cost
        planner._historical = np.asarray(state["historical"], dtype=float).reshape(-1, 2)
        planner._ks_cache = CachedKS2D(planner._historical)
        planner._rng = rng_from_state(state["rng"])
        planner._cost_scale = float(state["cost_scale"])
        planner._initial_cost_scale = float(state["initial_cost_scale"])
        planner._shift_absorbed = bool(state["shift_absorbed"])
        planner._removals = int(state["removals"])
        planner._arrivals_since_check = int(state["arrivals_since_check"])
        planner._check_period = planner.config.beta * planner.k
        penalty = state["penalty"]
        planner.penalty = PENALTY_REGISTRY[penalty["name"]](penalty["tolerance"])
        planner._live = LiveWindow.from_state(state["live"])
        planner.decisions = [
            EsharingDecision(
                destination=Point(float(d["destination"][0]), float(d["destination"][1])),
                station_index=int(d["station_index"]),
                opened=bool(d["opened"]),
                walking_cost=float(d["walking_cost"]),
                open_probability=float(d["open_probability"]),
                penalty_name=d["penalty_name"],
            )
            for d in (state["decisions"] or [])
        ]
        planner.walking = float(state["walking"])
        planner.space = float(state["space"])
        planner.online_opened = [int(i) for i in state["online_opened"]]
        planner.similarity_history = [float(s) for s in state["similarity_history"]]
        planner.ks_seconds = float(state["ks_seconds"])
        return planner

    # ------------------------------------------------------------------
    def result(self) -> PlacementResult:
        """Snapshot of the run as a :class:`PlacementResult`.

        Raises:
            RuntimeError: if stations were removed during the run — the
                dense station list of a :class:`PlacementResult` cannot
                express retired ids.  Use
                :class:`~repro.core.streaming.PlacementService`, which
                reports through the stable ids directly.
        """
        if self._removals:
            raise RuntimeError(
                f"{self._removals} station(s) were removed; decision indices "
                "are stale — use PlacementService for id-stable accounting"
            )
        return PlacementResult(
            stations=self.stations,
            assignment=[d.station_index for d in self.decisions],
            walking=self.walking,
            space=self.space,
            demands=[DemandPoint(d.destination) for d in self.decisions],
            online_opened=list(self.online_opened),
        )


def esharing_placement(
    stream: Sequence[Point],
    offline_stations: Sequence[Point],
    facility_cost: FacilityCostFn,
    historical: np.ndarray,
    rng: np.random.Generator,
    config: Optional[EsharingConfig] = None,
    batched: bool = False,
) -> PlacementResult:
    """Run Algorithm 2 over a full request stream (batch convenience).

    ``batched=True`` routes through :meth:`EsharingPlanner.replay` —
    bit-identical placements, several times faster on long streams.
    """
    planner = EsharingPlanner(offline_stations, facility_cost, historical, rng, config)
    if batched:
        planner.replay(stream)
    else:
        for dest in stream:
            planner.offer(dest)
    return planner.result()
