"""Deviation-penalty functions (Eqs. 6-8) and their selection rule.

The penalty ``g(i, j)`` damps the probability of opening a new parking as
the request drifts away from the offline anchor: the probability of
opening is ``min(g(c) * c / f, 1)`` where ``c`` is the distance to the
nearest existing parking and ``L`` is the tolerance level.

* **Type I** — hyperbolic, ``1 / (c/L + 1)``: gentle decline, keeps >0.2
  probability beyond ``3L``; best when the live distribution is *less
  similar* to history (tolerates large deviations).
* **Type II** — linear cut-off, ``max(0, 1 - c/L)``: plunges to zero at
  ``L``; best when the live distribution is *very similar* (pin new
  parking to the offline solution).
* **Type III** — Gaussian, ``exp(-c^2/L^2)``: in between; best for the
  *similar* middle regime.

Section V-C calibrates the switch thresholds with the 2-D KS test:
similarity above 95% -> Type II, 80-95% -> Type III, below 80% -> Type I.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

__all__ = [
    "PenaltyFunction",
    "TypeIPenalty",
    "TypeIIPenalty",
    "TypeIIIPenalty",
    "NoPenalty",
    "PENALTY_REGISTRY",
    "select_penalty",
    "VERY_SIMILAR_THRESHOLD",
    "SIMILAR_THRESHOLD",
]

VERY_SIMILAR_THRESHOLD = 95.0
SIMILAR_THRESHOLD = 80.0


@dataclass(frozen=True)
class PenaltyFunction:
    """A named penalty ``g(c)`` with tolerance ``L`` (metres).

    Subclasses implement :meth:`value`; :meth:`derivative` is computed
    analytically per type (Fig. 5 plots both).

    Raises:
        ValueError: if the tolerance is not positive.
    """

    tolerance: float = 200.0

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {self.tolerance}")

    @property
    def name(self) -> str:
        raise NotImplementedError

    def value(self, cost: float) -> float:
        """Penalty factor ``g(c)`` in [0, 1] for walking cost ``c >= 0``.

        Raises:
            ValueError: if ``cost`` is negative.
        """
        raise NotImplementedError

    def derivative(self, cost: float) -> float:
        """First derivative ``g'(c)`` (the changing rate of Fig. 5b)."""
        raise NotImplementedError

    def _check(self, cost: float) -> None:
        if cost < 0:
            raise ValueError(f"walking cost must be non-negative, got {cost}")

    def with_tolerance(self, tolerance: float) -> "PenaltyFunction":
        """Same penalty type with a different tolerance level."""
        return type(self)(tolerance=tolerance)


@dataclass(frozen=True)
class TypeIPenalty(PenaltyFunction):
    """Eq. 6: ``g(c) = 1 / (c/L + 1)``."""

    @property
    def name(self) -> str:
        return "type_i"

    def value(self, cost: float) -> float:
        """Hyperbolic decline ``1 / (c/L + 1)``."""
        self._check(cost)
        return 1.0 / (cost / self.tolerance + 1.0)

    def derivative(self, cost: float) -> float:
        """Analytic derivative of the hyperbolic form."""
        self._check(cost)
        return -1.0 / (self.tolerance * (cost / self.tolerance + 1.0) ** 2)


@dataclass(frozen=True)
class TypeIIPenalty(PenaltyFunction):
    """Eq. 7: ``g(c) = 1 - c/L`` for ``c <= L``, else 0."""

    @property
    def name(self) -> str:
        return "type_ii"

    def value(self, cost: float) -> float:
        """Linear decline, hard zero beyond the tolerance ``L``."""
        self._check(cost)
        if cost > self.tolerance:
            return 0.0
        return 1.0 - cost / self.tolerance

    def derivative(self, cost: float) -> float:
        """Constant slope ``-1/L`` inside the tolerance, 0 beyond."""
        self._check(cost)
        return 0.0 if cost > self.tolerance else -1.0 / self.tolerance


@dataclass(frozen=True)
class TypeIIIPenalty(PenaltyFunction):
    """Eq. 8: ``g(c) = exp(-c^2 / L^2)``."""

    @property
    def name(self) -> str:
        return "type_iii"

    def value(self, cost: float) -> float:
        """Gaussian decline ``exp(-c^2 / L^2)``."""
        self._check(cost)
        return math.exp(-(cost**2) / self.tolerance**2)

    def derivative(self, cost: float) -> float:
        """Analytic derivative of the Gaussian form."""
        self._check(cost)
        return -2.0 * cost / self.tolerance**2 * self.value(cost)


@dataclass(frozen=True)
class NoPenalty(PenaltyFunction):
    """``g(c) = 1`` — plain Meyerson behaviour (Table III's baseline)."""

    @property
    def name(self) -> str:
        return "no_penalty"

    def value(self, cost: float) -> float:
        """Always 1 — no damping (plain Meyerson behaviour)."""
        self._check(cost)
        return 1.0

    def derivative(self, cost: float) -> float:
        """Identically zero."""
        self._check(cost)
        return 0.0


PENALTY_REGISTRY: Dict[str, Callable[[float], PenaltyFunction]] = {
    "type_i": TypeIPenalty,
    "type_ii": TypeIIPenalty,
    "type_iii": TypeIIIPenalty,
    "no_penalty": NoPenalty,
}
"""Name -> constructor registry (takes the tolerance)."""


def select_penalty(similarity_percent: float, tolerance: float = 200.0) -> PenaltyFunction:
    """Pick the penalty type from a KS similarity measurement (Section V-C).

    Args:
        similarity_percent: ``100 * (1 - D)`` from the 2-D KS test.
        tolerance: the level ``L`` for the constructed penalty.

    Raises:
        ValueError: if the similarity is outside [0, 100].
    """
    if not 0.0 <= similarity_percent <= 100.0:
        raise ValueError(
            f"similarity must be in [0, 100], got {similarity_percent}"
        )
    if similarity_percent > VERY_SIMILAR_THRESHOLD:
        return TypeIIPenalty(tolerance=tolerance)
    if similarity_percent >= SIMILAR_THRESHOLD:
        return TypeIIIPenalty(tolerance=tolerance)
    return TypeIPenalty(tolerance=tolerance)
