"""k-median placement: a fixed station budget instead of opening costs.

The facility-location literature the paper builds on treats the k-median
problem as the twin formulation ([22] solves both with the same
primal-dual machinery): instead of charging ``f_i`` per opened parking,
the city fixes the number of stations ``k`` and minimises walking cost
alone.  Municipalities often regulate exactly this way ("at most k
E-bike parking zones downtown"), so the solver is a practical companion
to P1: k-means++-style seeding followed by single-swap local search, the
classic (3+eps)-approximation recipe.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..geo.points import Point
from .costs import DemandPoint, FacilityCostFn, constant_facility_cost
from .result import PlacementResult

__all__ = ["kmedian_placement"]


def _seed_indices(conn: np.ndarray, weights: np.ndarray, k: int,
                  rng: np.random.Generator) -> List[int]:
    """k-means++-style seeding on the candidate/demand cost matrix."""
    n_c = conn.shape[0]
    first = int(np.argmin((conn * 1.0).sum(axis=1)))  # best single median
    chosen = [first]
    best = conn[first].copy()
    while len(chosen) < k:
        # Pick the candidate reducing the current cost most (greedy
        # forward selection — deterministic, robust for small k).
        gains = np.maximum(best[None, :] - conn, 0.0).sum(axis=1)
        gains[chosen] = -1.0
        nxt = int(np.argmax(gains))
        if gains[nxt] <= 0:
            remaining = [i for i in range(n_c) if i not in chosen]
            if not remaining:
                break
            nxt = remaining[0]
        chosen.append(nxt)
        best = np.minimum(best, conn[nxt])
    return chosen


def kmedian_placement(
    demands: Sequence[DemandPoint],
    k: int,
    candidates: Optional[Sequence[Point]] = None,
    facility_cost: Optional[FacilityCostFn] = None,
    rng: Optional[np.random.Generator] = None,
    max_swaps: int = 500,
) -> PlacementResult:
    """Place exactly ``min(k, |candidates|)`` stations minimising walking.

    Args:
        demands: weighted demand points.
        k: the station budget.
        candidates: allowed locations (default: the demand locations).
        facility_cost: only used to *report* the space cost of the chosen
            stations (k-median does not optimise it); defaults to zero.
        rng: reserved for stochastic seeding variants; the default
            implementation is deterministic.
        max_swaps: cap on accepted local-search swaps.

    Returns:
        :class:`PlacementResult` with exactly the budgeted station count.

    Raises:
        ValueError: if ``k`` is not positive or candidates are empty with
            demand present.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    demands = list(demands)
    if not demands:
        return PlacementResult(stations=[], assignment=[], walking=0.0, space=0.0)
    cand = list(candidates) if candidates is not None else [d.location for d in demands]
    if not cand:
        raise ValueError("no candidate locations")
    rng = rng or np.random.default_rng(0)
    k = min(k, len(cand))

    weights = np.asarray([d.weight for d in demands])
    d_xy = np.asarray([(d.location.x, d.location.y) for d in demands])
    c_xy = np.asarray([(p.x, p.y) for p in cand])
    diff = c_xy[:, None, :] - d_xy[None, :, :]
    conn = np.sqrt((diff**2).sum(axis=-1)) * weights[None, :]

    chosen = _seed_indices(conn, weights, k, rng)

    def cost_of(subset: List[int]) -> float:
        return float(conn[subset, :].min(axis=0).sum())

    current = cost_of(chosen)
    for _ in range(max_swaps):
        improved = False
        outside = [i for i in range(len(cand)) if i not in chosen]
        for pos in range(len(chosen)):
            for j in outside:
                trial = list(chosen)
                trial[pos] = j
                c = cost_of(trial)
                if c < current - 1e-9:
                    chosen = trial
                    current = c
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break

    stations = [cand[i] for i in sorted(chosen)]
    st_xy = np.asarray([(p.x, p.y) for p in stations])
    dists = np.sqrt(((d_xy[:, None, :] - st_xy[None, :, :]) ** 2).sum(axis=-1))
    assignment = [int(i) for i in np.argmin(dists, axis=1)]
    walking = float((dists[np.arange(len(demands)), assignment] * weights).sum())
    cost_fn = facility_cost or constant_facility_cost(0.0)
    space = float(sum(cost_fn(s) for s in stations))
    return PlacementResult(
        stations=stations,
        assignment=assignment,
        walking=walking,
        space=space,
        demands=demands,
    )
