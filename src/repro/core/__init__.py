"""Tier 1: the Parking Location Placement problem and its algorithms."""

from .costs import (
    DOLLARS_TO_METERS,
    DemandPoint,
    FacilityCostFn,
    constant_facility_cost,
    demand_points_from_stream,
    uniform_facility_cost,
    walking_cost,
)
from .result import PlacementResult, evaluate_placement
from .station_set import BACKENDS, StationSet
from .offline import OFFLINE_STRATEGIES, offline_placement
from .online_meyerson import meyerson_placement
from .online_kmeans import online_kmeans_placement
from .penalty import (
    PENALTY_REGISTRY,
    SIMILAR_THRESHOLD,
    VERY_SIMILAR_THRESHOLD,
    NoPenalty,
    PenaltyFunction,
    TypeIPenalty,
    TypeIIPenalty,
    TypeIIIPenalty,
    select_penalty,
)
from .esharing import EsharingConfig, EsharingDecision, EsharingPlanner, esharing_placement
from .replay import NearestCache, UniformStream, checkpoint_schedule
from .tripblock import TripBlock, datetime_to_us, us_to_datetime
from .local_search import local_search, refine_placement
from .capacity import CapacitatedAssignment, assign_with_capacity
from .streaming import PlacementService, ServiceResponse
from .offline_lp import certified_gap, lp_lower_bound
from .kmedian import kmedian_placement
from .lower_bound import (
    THEOREM1_FACILITY_COST,
    competitive_ratio,
    theorem1_offline_optimum,
    theorem1_requests,
)

__all__ = [
    "DOLLARS_TO_METERS",
    "DemandPoint",
    "FacilityCostFn",
    "constant_facility_cost",
    "demand_points_from_stream",
    "uniform_facility_cost",
    "walking_cost",
    "PlacementResult",
    "evaluate_placement",
    "BACKENDS",
    "StationSet",
    "OFFLINE_STRATEGIES",
    "offline_placement",
    "meyerson_placement",
    "online_kmeans_placement",
    "PENALTY_REGISTRY",
    "SIMILAR_THRESHOLD",
    "VERY_SIMILAR_THRESHOLD",
    "NoPenalty",
    "PenaltyFunction",
    "TypeIPenalty",
    "TypeIIPenalty",
    "TypeIIIPenalty",
    "select_penalty",
    "EsharingConfig",
    "EsharingDecision",
    "EsharingPlanner",
    "esharing_placement",
    "NearestCache",
    "UniformStream",
    "checkpoint_schedule",
    "TripBlock",
    "datetime_to_us",
    "us_to_datetime",
    "local_search",
    "refine_placement",
    "CapacitatedAssignment",
    "assign_with_capacity",
    "PlacementService",
    "ServiceResponse",
    "certified_gap",
    "lp_lower_bound",
    "kmedian_placement",
    "THEOREM1_FACILITY_COST",
    "competitive_ratio",
    "theorem1_offline_optimum",
    "theorem1_requests",
]
