"""Local-search refinement for offline facility location.

The classical open/close/swap local search: starting from any feasible
station set, greedily apply the single move (open one candidate, close
one station, or swap one for one) that most reduces the P1 objective,
until no move improves.  Local search is itself a constant-factor
approximation for UFL and, applied after the 1.61 greedy, certifies how
"near-optimal" Algorithm 1's output really is (the gap it closes is an
upper bound on what the greedy left on the table — see the
``bench_offline_local_search`` ablation).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geo.points import Point
from .costs import DemandPoint, FacilityCostFn
from .result import PlacementResult

__all__ = ["local_search", "refine_placement"]


def _assignment_cost(conn: np.ndarray, open_idx: Sequence[int]) -> float:
    """Total connection cost of nearest assignment to ``open_idx``."""
    return float(conn[list(open_idx), :].min(axis=0).sum())


def local_search(
    demands: Sequence[DemandPoint],
    candidates: Sequence[Point],
    facility_cost: FacilityCostFn,
    initial_open: Sequence[int],
    max_moves: int = 1000,
) -> Tuple[List[int], float]:
    """Improve a station set with open/close/swap moves.

    Args:
        demands: weighted demand points.
        candidates: all candidate locations (indices refer to this list).
        facility_cost: opening cost per candidate.
        initial_open: indices of the initially open candidates (at least
            one).
        max_moves: safety cap on accepted moves.

    Returns:
        ``(open_indices, total_cost)`` at the local optimum.

    Raises:
        ValueError: on an empty candidate set, no demands with open
            stations required, or an empty/out-of-range initial set.
    """
    demands = list(demands)
    candidates = list(candidates)
    if not candidates:
        raise ValueError("no candidate locations")
    if not initial_open:
        raise ValueError("initial_open cannot be empty")
    for i in initial_open:
        if not 0 <= i < len(candidates):
            raise ValueError(f"initial index {i} out of range")
    if not demands:
        open_set = sorted(set(initial_open))
        return open_set, sum(facility_cost(candidates[i]) for i in open_set)

    weights = np.asarray([d.weight for d in demands])
    d_xy = np.asarray([(d.location.x, d.location.y) for d in demands])
    c_xy = np.asarray([(p.x, p.y) for p in candidates])
    diff = c_xy[:, None, :] - d_xy[None, :, :]
    conn = np.sqrt((diff**2).sum(axis=-1)) * weights[None, :]
    f = np.asarray([facility_cost(p) for p in candidates])

    open_set: Set[int] = set(initial_open)

    def total(open_s: Set[int]) -> float:
        return _assignment_cost(conn, sorted(open_s)) + float(f[sorted(open_s)].sum())

    current = total(open_set)
    for _ in range(max_moves):
        best_move: Optional[Set[int]] = None
        best_cost = current
        closed = [i for i in range(len(candidates)) if i not in open_set]
        # Open moves.
        for i in closed:
            cand = open_set | {i}
            cost = total(cand)
            if cost < best_cost - 1e-9:
                best_cost = cost
                best_move = cand
        # Close moves (keep at least one open).
        if len(open_set) > 1:
            for i in open_set:
                cand = open_set - {i}
                cost = total(cand)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_move = cand
        # Swap moves.
        for i in open_set:
            for j in closed:
                cand = (open_set - {i}) | {j}
                cost = total(cand)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_move = cand
        if best_move is None:
            break
        open_set = best_move
        current = best_cost
    return sorted(open_set), current


def refine_placement(
    result: PlacementResult,
    facility_cost: FacilityCostFn,
    candidates: Optional[Sequence[Point]] = None,
    max_moves: int = 1000,
) -> PlacementResult:
    """Post-optimise a :class:`PlacementResult` with local search.

    Candidates default to the union of the result's stations and its
    demand locations.  The returned result's total is never worse.

    Raises:
        ValueError: if the result has no stations.
    """
    if not result.stations:
        raise ValueError("cannot refine a placement with no stations")
    if candidates is None:
        seen = set(result.stations)
        extra = [d.location for d in result.demands if d.location not in seen]
        candidates = list(result.stations) + extra
    candidates = list(candidates)
    index_of = {p: i for i, p in enumerate(candidates)}
    initial = sorted({index_of[s] for s in result.stations if s in index_of})
    if not initial:
        raise ValueError("none of the result's stations appear in the candidate set")
    open_idx, _ = local_search(
        result.demands, candidates, facility_cost, initial, max_moves=max_moves
    )
    stations = [candidates[i] for i in open_idx]
    from .result import evaluate_placement

    refined = evaluate_placement(result.demands, stations, facility_cost)
    return refined if refined.total <= result.total else result
