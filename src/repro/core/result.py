"""Placement results and their cost accounting.

Every PLP algorithm — offline, Meyerson, online k-means, E-Sharing —
returns a :class:`PlacementResult` so experiments compare like with like:
number of parking locations, walking (dissatisfaction) cost, space
(occupation) cost and their sum, exactly the columns of Table V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..geo.points import Point
from .costs import DemandPoint, FacilityCostFn, walking_cost

__all__ = ["PlacementResult", "evaluate_placement"]


@dataclass
class PlacementResult:
    """Outcome of solving one PLP instance.

    Attributes:
        stations: opened parking locations.
        assignment: per-demand station index (into ``stations``); online
            algorithms record the irrevocable decision-time assignment.
        walking: total dissatisfaction cost (metres).
        space: total occupation cost (metres).
        demands: the demand points that were served (for reporting).
        online_opened: indices of stations opened by an online step (vs
            carried over from an offline anchor) — used by Fig. 6.
    """

    stations: List[Point]
    assignment: List[int]
    walking: float
    space: float
    demands: List[DemandPoint] = field(default_factory=list)
    online_opened: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.walking < 0 or self.space < 0:
            raise ValueError("costs cannot be negative")
        for idx in self.assignment:
            if not 0 <= idx < len(self.stations):
                raise ValueError(f"assignment index {idx} out of range")

    @property
    def n_stations(self) -> int:
        """Number of parking locations opened (``|P|``)."""
        return len(self.stations)

    @property
    def total(self) -> float:
        """Objective of P1: walking + space cost."""
        return self.walking + self.space

    def average_walking_distance(self) -> float:
        """Mean walking distance per arrival (paper reports ~180 m).

        Raises:
            ValueError: if the result holds no demand points.
        """
        if not self.demands:
            raise ValueError("result carries no demand points")
        total_weight = sum(d.weight for d in self.demands)
        return self.walking / total_weight

    def station_of(self, demand_index: int) -> Point:
        """The station serving demand ``demand_index``."""
        return self.stations[self.assignment[demand_index]]

    def summary(self) -> str:
        """One-line report in Table V's column order."""
        return (
            f"#parking={self.n_stations} walking={self.walking:.1f} "
            f"space={self.space:.1f} total={self.total:.1f}"
        )


def evaluate_placement(
    demands: Sequence[DemandPoint],
    stations: Sequence[Point],
    facility_cost: FacilityCostFn,
) -> PlacementResult:
    """Cost a fixed station set against a demand set (nearest assignment).

    Used to score offline solutions and to re-score any station set under
    a different demand sample (e.g. predicted vs actual in Table V).
    """
    walking, assignment = walking_cost(demands, stations)
    space = sum(facility_cost(s) for s in stations)
    return PlacementResult(
        stations=list(stations),
        assignment=assignment,
        walking=walking,
        space=space,
        demands=list(demands),
    )
