"""Meyerson's randomized online facility location [25].

The classical online baseline: requests arrive one at a time and
decisions are irrevocable.  On arrival at distance ``d`` from the nearest
open parking, a new parking opens at the request's location with
probability ``min(d / f, 1)``; otherwise the request walks.  The first
request always opens a parking (``d`` is infinite).

The paper observes two failure modes (Section III-C) that E-Sharing
fixes: the algorithm over-opens under bursty demand and commits to poor
early locations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..geo.points import Point
from .costs import DemandPoint, FacilityCostFn
from .penalty import PenaltyFunction
from .replay import NearestCache, UniformStream
from .result import PlacementResult
from .station_set import StationSet

__all__ = ["meyerson_placement"]


def meyerson_placement(
    stream: Sequence[Point],
    facility_cost: FacilityCostFn,
    rng: np.random.Generator,
    initial_stations: Optional[Sequence[Point]] = None,
    penalty: Optional[PenaltyFunction] = None,
    nn_backend: str = "linear",
    nn_cell_size: Optional[float] = None,
    batched: bool = False,
) -> PlacementResult:
    """Run Meyerson's online algorithm over a destination stream.

    Args:
        stream: request destinations in arrival order (weight 1 each).
        facility_cost: opening cost ``f_i`` at each location.
        rng: randomness for the opening coin flips.
        initial_stations: optional pre-existing parking (their space cost
            is charged up front).
        penalty: optional deviation penalty ``g``; when given, the opening
            probability becomes ``min(g(d) * d / f, 1)`` — the setting of
            the paper's Section V-B sector experiment (Table III), where
            ``no penalty`` is plain Meyerson.
        nn_backend: :class:`StationSet` nearest-neighbour backend
            (``"linear"`` or ``"grid"``); output is identical either way.
        nn_cell_size: grid-bucket side for the ``"grid"`` backend.
        batched: replace the per-arrival nearest scan with the
            :class:`~repro.core.replay.NearestCache` fast path —
            bit-identical results (same RNG draws, same scalar decision
            distances), several times faster on long streams.

    Returns:
        :class:`PlacementResult`; ``assignment[t]`` is the irrevocable
        decision for the ``t``-th request.
    """
    stream = list(stream)
    stations = StationSet(
        initial_stations, backend=nn_backend, cell_size=nn_cell_size
    )
    space = sum(facility_cost(s) for s in stations.locations())
    online_opened: List[int] = []
    assignment: List[int] = []
    walking = 0.0
    cache = uniforms = None
    if batched:
        cache = NearestCache(stream, stations.ids(), stations.locations())
        uniforms = UniformStream(rng, len(stream))
    for t, dest in enumerate(stream):
        if batched:
            idx = int(cache.best_id[t])
            # The decision distance is recomputed with the same scalar
            # math.hypot the per-call scan uses (see core/replay.py).
            dist = dest.distance_to(stations.location(idx)) if idx >= 0 else float("inf")
        elif len(stations):
            idx, dist = stations.nearest(dest)
        else:
            idx, dist = -1, float("inf")
        f = facility_cost(dest)
        g = 1.0
        if penalty is not None and np.isfinite(dist):
            g = penalty.value(dist)
        prob = 1.0 if f <= 0 else min(g * dist / f, 1.0)
        u = uniforms.next() if batched else rng.uniform()
        if u < prob:
            # No removals happen here, so the stable id doubles as the
            # position in the final dense station list.
            online_opened.append(stations.add(dest))
            space += f
            assignment.append(online_opened[-1])
            if batched:
                cache.open(t, dest, online_opened[-1])
        else:
            assignment.append(idx)
            walking += dist
    return PlacementResult(
        stations=stations.locations(),
        assignment=assignment,
        walking=walking,
        space=space,
        demands=[DemandPoint(p) for p in stream],
        online_opened=online_opened,
    )
