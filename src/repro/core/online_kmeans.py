"""Online k-means baseline (Liberty, Sriharsha and Sviridenko [26]).

Originally proposed for clustering online advertisement, used by the
paper as the second online baseline (Table V).  The algorithm follows a
Meyerson-style doubling scheme on *squared* distances:

* the first ``k + 1`` requests become centres and fix the initial
  facility cost ``f = w* / k`` where ``w*`` is half the smallest pairwise
  squared distance among them;
* each later request opens a new centre with probability
  ``min(d^2 / f, 1)``;
* whenever a phase opens more than ``gamma = O(k log n)`` centres, ``f``
  doubles and a new phase begins.

Because it clusters by squared distance and keeps every centre it opens,
it over-opens aggressively — the behaviour Table V reports as the worst
total cost of the four algorithms.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..geo.points import Point
from .costs import DemandPoint, FacilityCostFn
from .replay import NearestCache, UniformStream
from .result import PlacementResult
from .station_set import StationSet

__all__ = ["online_kmeans_placement"]


def online_kmeans_placement(
    stream: Sequence[Point],
    k: int,
    facility_cost: FacilityCostFn,
    rng: np.random.Generator,
    gamma: Optional[float] = None,
    nn_backend: str = "linear",
    nn_cell_size: Optional[float] = None,
    batched: bool = False,
) -> PlacementResult:
    """Run online k-means clustering over a destination stream.

    Args:
        stream: request destinations in arrival order.
        k: target number of clusters (the paper anchors it to the offline
            station count).
        facility_cost: used only to charge space cost for each opened
            centre, so results are comparable with the other algorithms.
        rng: randomness for the opening coin flips.
        gamma: per-phase opening budget before ``f`` doubles; defaults to
            ``3 * k * (1 + log2(n))`` as in [26].
        nn_backend: :class:`StationSet` nearest-neighbour backend
            (``"linear"`` or ``"grid"``); output is identical either way.
        nn_cell_size: grid-bucket side for the ``"grid"`` backend.
        batched: replace the per-arrival nearest scan with the
            :class:`~repro.core.replay.NearestCache` fast path —
            bit-identical results, several times faster on long streams.

    Raises:
        ValueError: if ``k`` is not positive.
    """
    stream = list(stream)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    n = len(stream)
    stations = StationSet(backend=nn_backend, cell_size=nn_cell_size)
    assignment: List[int] = []
    online_opened: List[int] = []
    walking = 0.0
    space = 0.0
    if n == 0:
        return PlacementResult([], [], 0.0, 0.0)

    warmup = min(k + 1, n)
    for t in range(warmup):
        # Centres are never closed, so stable ids are dense positions.
        online_opened.append(stations.add(stream[t]))
        space += facility_cost(stream[t])
        assignment.append(online_opened[-1])
    if n <= k + 1:
        return PlacementResult(
            stations.locations(), assignment, walking, space,
            demands=[DemandPoint(p) for p in stream], online_opened=online_opened,
        )

    # The StationSet tracks the minimum centre spacing incrementally as
    # the warm-up loads, replacing the pairwise-matrix rebuild.
    w_star = float(stations.min_spacing() ** 2) / 2.0
    if w_star <= 0 or not math.isfinite(w_star):  # coincident warm-up points
        w_star = 1.0
    f = w_star / k
    budget = gamma if gamma is not None else 3.0 * k * (1.0 + math.log2(max(n, 2)))
    opened_this_phase = 0

    cache = uniforms = None
    if batched:
        rest = stream[warmup:]
        cache = NearestCache(rest, stations.ids(), stations.locations())
        uniforms = UniformStream(rng, len(rest))
    for t in range(warmup, n):
        dest = stream[t]
        if batched:
            idx = int(cache.best_id[t - warmup])
            # Scalar recompute keeps dist bit-identical to the scan.
            dist = dest.distance_to(stations.location(idx))
        else:
            idx, dist = stations.nearest(dest)
        prob = min(dist**2 / f, 1.0)
        u = uniforms.next() if batched else rng.uniform()
        if u < prob:
            online_opened.append(stations.add(dest))
            space += facility_cost(dest)
            assignment.append(online_opened[-1])
            if batched:
                cache.open(t - warmup, dest, online_opened[-1])
            opened_this_phase += 1
            if opened_this_phase >= budget:
                f *= 2.0
                opened_this_phase = 0
        else:
            assignment.append(idx)
            walking += dist
    return PlacementResult(
        stations=stations.locations(),
        assignment=assignment,
        walking=walking,
        space=space,
        demands=[DemandPoint(p) for p in stream],
        online_opened=online_opened,
    )
