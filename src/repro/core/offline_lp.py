"""LP lower bound for the Parking Location Placement problem.

The linear relaxation of P1 (drop the integrality of ``x_ij, y_i`` in
Eq. 4) is a valid lower bound on the optimal total cost, so

    greedy_total / lp_bound

is a *certified* upper bound on Algorithm 1's optimality gap for a
concrete instance — stronger evidence for "near-optimal" than the 1.61
worst-case factor, and checkable on every run.  Solved with scipy's
HiGHS via ``linprog``.

Variables: ``y_i`` (open facility ``i``) and ``x_ij`` (assign demand
``j`` to ``i``); constraints ``sum_i x_ij = 1`` and ``x_ij <= y_i``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from ..geo.points import Point
from .costs import DemandPoint, FacilityCostFn
from .result import PlacementResult

__all__ = ["lp_lower_bound", "certified_gap"]


def lp_lower_bound(
    demands: Sequence[DemandPoint],
    facility_cost: FacilityCostFn,
    candidates: Optional[Sequence[Point]] = None,
) -> float:
    """Optimal value of P1's LP relaxation.

    Args:
        demands: weighted demand points.
        facility_cost: opening cost per candidate.
        candidates: candidate locations (default: the demand locations).

    Returns:
        The LP optimum — a lower bound on the integral optimum, hence on
        the cost of any feasible placement.

    Raises:
        ValueError: on an empty candidate set with demand present, or if
            the solver fails.
    """
    demands = list(demands)
    if not demands:
        return 0.0
    cand = list(candidates) if candidates is not None else [d.location for d in demands]
    if not cand:
        raise ValueError("no candidate locations")
    n_c, n_d = len(cand), len(demands)

    weights = np.asarray([d.weight for d in demands])
    d_xy = np.asarray([(d.location.x, d.location.y) for d in demands])
    c_xy = np.asarray([(p.x, p.y) for p in cand])
    diff = c_xy[:, None, :] - d_xy[None, :, :]
    conn = np.sqrt((diff**2).sum(axis=-1)) * weights[None, :]
    f = np.asarray([facility_cost(p) for p in cand])

    # Variable layout: [y_0..y_{n_c-1}, x_00, x_01, ..., x_{n_c-1, n_d-1}]
    # with x_ij at index n_c + i * n_d + j.
    n_vars = n_c + n_c * n_d
    c_vec = np.concatenate([f, conn.ravel()])

    # Equality: sum_i x_ij = 1 for each j.
    eq_rows, eq_cols, eq_vals = [], [], []
    for j in range(n_d):
        for i in range(n_c):
            eq_rows.append(j)
            eq_cols.append(n_c + i * n_d + j)
            eq_vals.append(1.0)
    A_eq = coo_matrix((eq_vals, (eq_rows, eq_cols)), shape=(n_d, n_vars))
    b_eq = np.ones(n_d)

    # Inequality: x_ij - y_i <= 0.
    ub_rows, ub_cols, ub_vals = [], [], []
    row = 0
    for i in range(n_c):
        for j in range(n_d):
            ub_rows.extend((row, row))
            ub_cols.extend((n_c + i * n_d + j, i))
            ub_vals.extend((1.0, -1.0))
            row += 1
    A_ub = coo_matrix((ub_vals, (ub_rows, ub_cols)), shape=(row, n_vars))
    b_ub = np.zeros(row)

    result = linprog(
        c_vec,
        A_ub=A_ub, b_ub=b_ub,
        A_eq=A_eq, b_eq=b_eq,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise ValueError(f"LP solve failed: {result.message}")
    return float(result.fun)


def certified_gap(
    result: PlacementResult,
    facility_cost: FacilityCostFn,
    candidates: Optional[Sequence[Point]] = None,
) -> float:
    """Certified optimality-gap factor of a placement: ``total / LP bound``.

    Always >= 1 (up to solver tolerance); Algorithm 1 guarantees <= 1.61
    against the *integral* optimum, so values near 1 certify
    near-optimality on the instance.

    Raises:
        ValueError: if the result serves no demand (gap undefined).
    """
    if not result.demands:
        raise ValueError("gap undefined for a placement with no demand")
    bound = lp_lower_bound(result.demands, facility_cost, candidates=candidates)
    if bound <= 0:
        raise ValueError("LP bound is non-positive; degenerate instance")
    return result.total / bound
