"""Columnar trip storage: the struct-of-arrays hot path of the stream tier.

A :class:`~repro.datasets.trips.TripRecord` is the right unit for
correctness reasoning, but pushing millions of per-trip Python objects
through validator → watermark buffer → WAL → planner spends nearly all
of its budget on attribute access and allocation.  :class:`TripBlock`
holds the same trips as contiguous NumPy columns — ``float64`` for
coordinates and telemetry, ``int64`` for ids and timestamps — so the
guarded stream layers can evaluate whole blocks with vectorized masks
and slices instead of one interpreter round per trip.

Bit-identity ground rules (the blocked paths are parity oracles against
the scalar ones, so every representation choice must round-trip
exactly):

* **Timestamps** are naive datetimes stored as *microseconds since the
  epoch* (``int64``).  Python datetimes have exactly microsecond
  resolution, so ``datetime ↔ int64 µs`` is a bijection and every
  comparison or subtraction performed on the integer column equals the
  ``datetime`` arithmetic bit for bit (``timedelta.total_seconds()`` is
  ``µs / 1e6`` with the same rounding as ``int64 → float64`` division
  for any plausible magnitude).  Timezone-aware datetimes are refused:
  the ingest tier normalises to naive UTC (see
  :func:`repro.datasets.mobike.load_mobike_csv`), and silently mixing
  aware/naive values here would corrupt the ordering contract.
* **Optional fields** (``geodesic_m``, ``battery``) carry a presence
  mask next to the value column, because ``None`` and ``NaN`` are
  semantically different to the validator: an absent battery passes, a
  NaN battery is rejected.
* **Slicing** with a ``slice`` returns zero-copy column views;
  :meth:`take` (fancy indexing) copies.  Both preserve order.
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Iterator, List, Sequence, Union

import numpy as np

from ..datasets.trips import TripRecord
from ..geo.points import Point

__all__ = ["TripBlock", "datetime_to_us", "us_to_datetime", "EPOCH"]

EPOCH = datetime(1970, 1, 1)
"""Origin of the integer-microsecond timeline (naive, UTC by convention)."""

_US = timedelta(microseconds=1)


def datetime_to_us(moment: datetime) -> int:
    """Exact ``int64``-safe microseconds since :data:`EPOCH`.

    Raises:
        ValueError: on a timezone-aware datetime — the stream tier works
            on one naive UTC timeline (the CSV loader normalises).
    """
    if moment.tzinfo is not None:
        raise ValueError(
            f"timezone-aware datetime {moment.isoformat()} cannot enter a "
            "TripBlock; normalise to naive UTC first"
        )
    return (moment - EPOCH) // _US


def us_to_datetime(us: int) -> datetime:
    """Inverse of :func:`datetime_to_us` (exact round trip)."""
    return EPOCH + timedelta(microseconds=int(us))


class TripBlock:
    """A batch of trips in struct-of-arrays (columnar) layout.

    Columns (all length ``n``):

    * ``order_id, user_id, bike_id, bike_type`` — ``int64``;
    * ``start_us`` — ``int64`` microseconds since :data:`EPOCH`;
    * ``start_x, start_y, end_x, end_y`` — ``float64`` planar metres;
    * ``geodesic_m`` (``float64``) with ``has_geodesic`` (``bool``);
    * ``battery`` (``float64``) with ``has_battery`` (``bool``).

    Raises:
        ValueError: when the columns disagree on length.
    """

    __slots__ = (
        "order_id", "user_id", "bike_id", "bike_type", "start_us",
        "start_x", "start_y", "end_x", "end_y",
        "geodesic_m", "has_geodesic", "battery", "has_battery",
    )

    def __init__(
        self,
        order_id: np.ndarray,
        user_id: np.ndarray,
        bike_id: np.ndarray,
        bike_type: np.ndarray,
        start_us: np.ndarray,
        start_x: np.ndarray,
        start_y: np.ndarray,
        end_x: np.ndarray,
        end_y: np.ndarray,
        geodesic_m: np.ndarray = None,
        has_geodesic: np.ndarray = None,
        battery: np.ndarray = None,
        has_battery: np.ndarray = None,
    ) -> None:
        self.order_id = np.asarray(order_id, dtype=np.int64)
        self.user_id = np.asarray(user_id, dtype=np.int64)
        self.bike_id = np.asarray(bike_id, dtype=np.int64)
        self.bike_type = np.asarray(bike_type, dtype=np.int64)
        self.start_us = np.asarray(start_us, dtype=np.int64)
        self.start_x = np.asarray(start_x, dtype=np.float64)
        self.start_y = np.asarray(start_y, dtype=np.float64)
        self.end_x = np.asarray(end_x, dtype=np.float64)
        self.end_y = np.asarray(end_y, dtype=np.float64)
        n = self.order_id.shape[0]
        if geodesic_m is None:
            geodesic_m = np.full(n, np.nan)
        if has_geodesic is None:
            has_geodesic = np.zeros(n, dtype=bool)
        if battery is None:
            battery = np.full(n, np.nan)
        if has_battery is None:
            has_battery = np.zeros(n, dtype=bool)
        self.geodesic_m = np.asarray(geodesic_m, dtype=np.float64)
        self.has_geodesic = np.asarray(has_geodesic, dtype=bool)
        self.battery = np.asarray(battery, dtype=np.float64)
        self.has_battery = np.asarray(has_battery, dtype=bool)
        for name in self.__slots__:
            col = getattr(self, name)
            if col.ndim != 1 or col.shape[0] != n:
                raise ValueError(
                    f"column {name} has shape {col.shape}, expected ({n},)"
                )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.order_id.shape[0]

    def __iter__(self) -> Iterator[TripRecord]:
        return iter(self.to_trips())

    def __getitem__(self, key: Union[int, slice]) -> Union["TripRecord", "TripBlock"]:
        """``block[i]`` materialises one trip; ``block[a:b]`` is a
        zero-copy columnar view (NumPy basic slicing)."""
        if isinstance(key, slice):
            return TripBlock(*(getattr(self, name)[key] for name in self.__slots__))
        return self.trip(int(key))

    def take(self, indices) -> "TripBlock":
        """Rows at ``indices`` (in that order) as a new block (copies)."""
        idx = np.asarray(indices, dtype=np.intp)
        return TripBlock(*(getattr(self, name)[idx] for name in self.__slots__))

    def sorted_by_time(self) -> "TripBlock":
        """Rows stably sorted by ``start_us`` — the same permutation a
        stable sort of the records by ``start_time`` produces."""
        return self.take(np.argsort(self.start_us, kind="stable"))

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "TripBlock":
        """A zero-length block."""
        z_i = np.empty(0, dtype=np.int64)
        z_f = np.empty(0, dtype=np.float64)
        return cls(z_i, z_i, z_i, z_i, z_i, z_f, z_f, z_f, z_f)

    @classmethod
    def from_trips(cls, trips: Sequence[TripRecord]) -> "TripBlock":
        """Columnarise a record sequence (the scalar→block boundary shim).

        Raises:
            ValueError: on a timezone-aware ``start_time`` (see
                :func:`datetime_to_us`).
        """
        n = len(trips)
        if n == 0:
            return cls.empty()
        geodesic = np.full(n, np.nan)
        has_geo = np.zeros(n, dtype=bool)
        battery = np.full(n, np.nan)
        has_bat = np.zeros(n, dtype=bool)
        start_us = np.empty(n, dtype=np.int64)
        ints = np.empty((n, 4), dtype=np.int64)
        xy = np.empty((n, 4), dtype=np.float64)
        for i, t in enumerate(trips):
            ints[i, 0] = t.order_id
            ints[i, 1] = t.user_id
            ints[i, 2] = t.bike_id
            ints[i, 3] = t.bike_type
            start_us[i] = datetime_to_us(t.start_time)
            xy[i, 0] = t.start.x
            xy[i, 1] = t.start.y
            xy[i, 2] = t.end.x
            xy[i, 3] = t.end.y
            if t.geodesic_m is not None:
                geodesic[i] = t.geodesic_m
                has_geo[i] = True
            if t.battery is not None:
                battery[i] = t.battery
                has_bat[i] = True
        return cls(
            ints[:, 0].copy(), ints[:, 1].copy(), ints[:, 2].copy(),
            ints[:, 3].copy(), start_us,
            xy[:, 0].copy(), xy[:, 1].copy(), xy[:, 2].copy(), xy[:, 3].copy(),
            geodesic_m=geodesic, has_geodesic=has_geo,
            battery=battery, has_battery=has_bat,
        )

    @classmethod
    def concat(cls, blocks: Sequence["TripBlock"]) -> "TripBlock":
        """Concatenate blocks in order."""
        blocks = [b for b in blocks if len(b) > 0]
        if not blocks:
            return cls.empty()
        if len(blocks) == 1:
            return blocks[0]
        return cls(*(
            np.concatenate([getattr(b, name) for b in blocks])
            for name in cls.__slots__
        ))

    # ------------------------------------------------------------------
    def trip(self, i: int) -> TripRecord:
        """Materialise row ``i`` as a :class:`TripRecord` (exact)."""
        return TripRecord(
            order_id=int(self.order_id[i]),
            user_id=int(self.user_id[i]),
            bike_id=int(self.bike_id[i]),
            bike_type=int(self.bike_type[i]),
            start_time=us_to_datetime(self.start_us[i]),
            start=Point(float(self.start_x[i]), float(self.start_y[i])),
            end=Point(float(self.end_x[i]), float(self.end_y[i])),
            geodesic_m=float(self.geodesic_m[i]) if self.has_geodesic[i] else None,
            battery=float(self.battery[i]) if self.has_battery[i] else None,
        )

    def to_trips(self) -> List[TripRecord]:
        """Materialise every row (the block→scalar boundary shim).

        ``tolist()`` converts each column once (native Python ints and
        floats), so the per-trip cost is object construction only.
        """
        n = len(self)
        if n == 0:
            return []
        order = self.order_id.tolist()
        user = self.user_id.tolist()
        bike = self.bike_id.tolist()
        btype = self.bike_type.tolist()
        s_us = self.start_us.tolist()
        sx = self.start_x.tolist()
        sy = self.start_y.tolist()
        ex = self.end_x.tolist()
        ey = self.end_y.tolist()
        geo = self.geodesic_m.tolist()
        hgeo = self.has_geodesic.tolist()
        bat = self.battery.tolist()
        hbat = self.has_battery.tolist()
        return [
            TripRecord(
                order_id=order[i], user_id=user[i], bike_id=bike[i],
                bike_type=btype[i],
                start_time=EPOCH + timedelta(microseconds=s_us[i]),
                start=Point(sx[i], sy[i]),
                end=Point(ex[i], ey[i]),
                geodesic_m=geo[i] if hgeo[i] else None,
                battery=bat[i] if hbat[i] else None,
            )
            for i in range(n)
        ]
