"""The unified station store behind every online planner and the simulator.

Algorithm 2, both online baselines, the Fig. 3 placement service, the
system simulator and the Tier-2 incentive mechanism all ask the same
questions of the parking set ``P``: "which open station is nearest this
destination?", "which stations lie within this radius?", "open a station
here", "retire that emptied station" (footnote 2).  :class:`StationSet`
answers all of them from one indexed store:

* **stable ids** — a station keeps its id for life, across any number of
  removals; ids are never reused, so decision traces, fleet slots and
  event logs can reference stations without the re-indexing bookkeeping
  previously duplicated in ``core/streaming.py``, ``sim/simulator.py``
  and ``incentives/mechanism.py``;
* **pluggable nearest-neighbour backends** — ``"linear"`` (the reference
  O(k) scan, bit-identical to the historical behaviour) and ``"grid"``
  (the bucketed :class:`~repro.geo.spatial_index.NearestNeighborIndex`,
  sub-linear per query at production station counts).  Both backends
  measure distances with :meth:`Point.distance_to` and break ties by
  lowest id, so placement outputs are bit-identical across backends;
* **inventory hooks** — consumers subscribe to open/retire events to keep
  side-tables (the fleet's per-station racks, event logs) in sync instead
  of diffing station lists after every request.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..geo.points import Point
from ..geo.spatial_index import NearestNeighborIndex

__all__ = ["StationSet", "BACKENDS", "DEFAULT_CELL_SIZE"]

BACKENDS = ("linear", "grid")
"""Recognised nearest-neighbour backend names."""

DEFAULT_CELL_SIZE = 250.0
"""Default grid-bucket side (metres) — the paper's tolerance scale L."""

StationListener = Callable[[int, Point], None]


class StationSet:
    """Indexed set of station locations with stable ids.

    Args:
        points: initial stations, assigned ids ``0..len-1`` in order.
        backend: ``"linear"`` or ``"grid"`` (see module docstring).
        cell_size: grid-bucket side for the ``"grid"`` backend; ignored by
            ``"linear"``.  Defaults to :data:`DEFAULT_CELL_SIZE`.

    Raises:
        ValueError: on an unknown backend or non-positive cell size.
    """

    def __init__(
        self,
        points: Optional[Iterable[Point]] = None,
        *,
        backend: str = "linear",
        cell_size: Optional[float] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        if cell_size is not None and cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.backend = backend
        self.cell_size = float(cell_size) if cell_size is not None else DEFAULT_CELL_SIZE
        self._all: List[Point] = []
        # Active stations; insertion-ordered, and ids are monotone, so
        # iteration is always in ascending id — the tie-break order.
        self._active: Dict[int, Point] = {}
        self._index = (
            NearestNeighborIndex(self.cell_size) if backend == "grid" else None
        )
        self._min_spacing = math.inf
        self._min_spacing_dirty = False
        self._on_add: List[StationListener] = []
        self._on_remove: List[StationListener] = []
        for p in points or []:
            self.add(p)

    # ------------------------------------------------------------------
    # store
    def __len__(self) -> int:
        return len(self._active)

    def __contains__(self, station_id: int) -> bool:
        return station_id in self._active

    @property
    def total_assigned(self) -> int:
        """How many ids have ever been assigned (active + removed)."""
        return len(self._all)

    def ids(self) -> List[int]:
        """Stable ids of the active stations, ascending."""
        return list(self._active)

    def locations(self) -> List[Point]:
        """Locations of the active stations, in ascending-id order."""
        return list(self._active.values())

    def location(self, station_id: int) -> Point:
        """Location of any ever-assigned id — active or removed.

        Removed stations keep their coordinates (their space cost is not
        refunded, and retired racks still exist physically).

        Raises:
            KeyError: for an id that was never assigned.
        """
        if not 0 <= station_id < len(self._all):
            raise KeyError(f"unknown station id {station_id}")
        return self._all[station_id]

    def is_active(self, station_id: int) -> bool:
        """Whether ``station_id`` is currently in the set ``P``."""
        return station_id in self._active

    def add(self, point: Point) -> int:
        """Open a station; returns its stable id (never reused)."""
        if self._active:
            # Only pairs involving the new point can lower the minimum
            # spacing — one NN query instead of an O(k^2) matrix rebuild.
            _, d = self.nearest(point)
            if d < self._min_spacing:
                self._min_spacing = d
        station_id = len(self._all)
        self._all.append(point)
        self._active[station_id] = point
        if self._index is not None:
            # The grid index assigns the same monotone ids.
            self._index.add(point)
        for listener in self._on_add:
            listener(station_id, point)
        return station_id

    def remove(self, station_id: int) -> None:
        """Retire a station from ``P`` (footnote 2); its id stays valid
        for :meth:`location` but it no longer answers queries.

        Raises:
            KeyError: if the id is unknown or already removed.
        """
        if station_id not in self._active:
            raise KeyError(f"no active station with id {station_id}")
        point = self._active.pop(station_id)
        if self._index is not None:
            self._index.remove(station_id)
        # The minimum-spacing pair may have involved this station; defer
        # the recomputation until someone actually asks.
        self._min_spacing_dirty = True
        for listener in self._on_remove:
            listener(station_id, point)

    def state_dict(self) -> dict:
        """Checkpointable state: every id ever assigned plus the live set.

        Listener subscriptions are deliberately *not* captured — they are
        in-memory wiring that each consumer re-establishes on restore
        (the placement service re-subscribes its rack hook when it is
        rebuilt around the restored set).
        """
        min_spacing = self._min_spacing
        return {
            "backend": self.backend,
            "cell_size": self.cell_size,
            "all": [[p.x, p.y] for p in self._all],
            "active_ids": list(self._active),
            # inf (fewer than two stations) is not valid strict JSON.
            "min_spacing": None if math.isinf(min_spacing) else min_spacing,
            "min_spacing_dirty": self._min_spacing_dirty,
        }

    @classmethod
    def from_state(cls, state: dict) -> "StationSet":
        """Rebuild a set from :meth:`state_dict` output, bit-identically.

        The cached minimum spacing is restored verbatim (it is
        add-order-dependent, so recomputing could diverge from the
        original run); the grid backend's buckets are rebuilt by
        re-adding every point in id order and retiring the inactive ids.

        Raises:
            ValueError: on an unknown backend name.
            KeyError: on a required field missing from ``state``.
        """
        store = cls(
            backend=state["backend"],
            cell_size=state["cell_size"],
        )
        store._all = [Point(float(x), float(y)) for x, y in state["all"]]
        active = set(state["active_ids"])
        # Ascending iteration keeps the dict in id order — the tie-break
        # contract every query relies on.
        store._active = {
            sid: p for sid, p in enumerate(store._all) if sid in active
        }
        if store._index is not None:
            for p in store._all:
                store._index.add(p)
            for sid in range(len(store._all)):
                if sid not in active:
                    store._index.remove(sid)
        raw = state["min_spacing"]
        store._min_spacing = math.inf if raw is None else float(raw)
        store._min_spacing_dirty = bool(state["min_spacing_dirty"])
        return store

    def subscribe(
        self,
        on_add: Optional[StationListener] = None,
        on_remove: Optional[StationListener] = None,
    ) -> None:
        """Register inventory hooks called as ``hook(station_id, point)``
        after every open / retire.  Consumers (the fleet, event logs) use
        this to keep per-station side-tables aligned with the stable ids.
        """
        if on_add is not None:
            self._on_add.append(on_add)
        if on_remove is not None:
            self._on_remove.append(on_remove)

    # ------------------------------------------------------------------
    # queries
    def nearest(self, query: Point) -> Tuple[int, float]:
        """``(station_id, distance)`` of the nearest active station.

        Distance ties break to the lowest id on every backend.

        Raises:
            ValueError: if no station is active.
        """
        if not self._active:
            raise ValueError("nearest() on an empty StationSet")
        if self._index is not None:
            return self._index.nearest(query)
        best_id = -1
        best_d = math.inf
        for sid, p in self._active.items():
            d = query.distance_to(p)
            if d < best_d:
                best_id, best_d = sid, d
        return best_id, best_d

    def nearest_where(
        self, query: Point, predicate: Callable[[int], bool]
    ) -> Optional[Tuple[int, float]]:
        """Nearest active station whose id satisfies ``predicate``, or
        ``None`` when no active station qualifies (ties to lowest id)."""
        if not self._active:
            return None
        if self._index is not None:
            sid, d = self._index.nearest(query, predicate=predicate)
            return (sid, d) if sid >= 0 else None
        best: Optional[Tuple[int, float]] = None
        for sid, p in self._active.items():
            if not predicate(sid):
                continue
            d = query.distance_to(p)
            if best is None or d < best[1]:
                best = (sid, d)
        return best

    def within(self, query: Point, radius: float) -> List[Tuple[int, float]]:
        """Active stations within ``radius`` of ``query`` as
        ``(station_id, distance)``, sorted by ``(distance, id)``.

        Raises:
            ValueError: if ``radius`` is negative.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        if self._index is not None:
            return self._index.within(query, radius)
        out = [
            (sid, d)
            for sid, p in self._active.items()
            if (d := query.distance_to(p)) <= radius
        ]
        return sorted(out, key=lambda t: (t[1], t[0]))

    def min_spacing(self) -> float:
        """Minimum pairwise distance among active stations (Algorithm 2's
        ``w*`` source).  Maintained incrementally on :meth:`add`;
        recomputed lazily after a removal invalidates the cached pair.
        Returns ``inf`` with fewer than two active stations.
        """
        if self._min_spacing_dirty:
            self._min_spacing = math.inf
            if len(self._active) >= 2:
                for sid, p in self._active.items():
                    hit = self.nearest_where(p, lambda other, me=sid: other != me)
                    if hit is not None and hit[1] < self._min_spacing:
                        self._min_spacing = hit[1]
            self._min_spacing_dirty = False
        return self._min_spacing
