"""Offline 1.61-factor parking placement (Algorithm 1).

The PLP is the uncapacitated facility location problem; the paper adopts
the greedy of Jain, Mahdian, Markakis, Saberi and Vazirani [23], whose
dual-fitting analysis gives a 1.61 approximation factor — close to the
1.46 inapproximability bound [24].

Each iteration selects the most cost-effective "star": a candidate
location ``i`` together with a set ``B_i`` of still-unconnected grids,
where already-connected grids may defect to ``i`` when that lowers their
cost, and those savings subsidise the opening (Eq. 5):

    i* = argmin_i [ sum_{j in B_i} c_ij + f_i - sum_{j in B'_i} (c_i'j - c_ij) ] / |B_i|

Opening an already-open facility costs nothing (``f_i`` counts once), so
late arrivals can join existing stations at pure connection cost.

Two solve strategies produce bit-identical placements:

* ``"reference"`` — the historical implementation: every round rescans
  every candidate's best star.  O(rounds * n_c * n_d log n_d), kept as
  the parity oracle.
* ``"lazy"`` (default) — lazy greedy with a priority queue of cached
  star ratios.  Between openings a candidate's best ratio can only get
  worse (the unconnected pool shrinks faster than the defection savings
  grow for any star the greedy would actually pick), so cached ratios
  act as lower bounds: each round pops heap entries, revalidates them
  against the current state, and stops as soon as every remaining cached
  bound exceeds the best revalidated ratio.  Near-ties inside the
  reference's ``1e-12`` acceptance window trigger a full-rescan fallback
  for that round, so tie-breaking (and therefore output) is exactly the
  reference's.  Verified by randomized parity tests
  (``tests/core/test_offline_parity.py``) and the placement benchmark
  (``benchmarks/bench_placement.py`` -> ``BENCH_placement.json``).

Connection costs are served through a memory-blocked accessor: below
``block_elems`` the dense ``(n_c, n_d)`` matrix is built once (the
historical behaviour); above it rows are computed on demand into a
bounded cache, so memory stays O(block_elems) at any instance size.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.points import Point
from .costs import DemandPoint, FacilityCostFn
from .result import PlacementResult

__all__ = ["offline_placement", "OFFLINE_STRATEGIES", "DEFAULT_BLOCK_ELEMS"]

_UNCONNECTED = -1
_TOL = 1e-12

OFFLINE_STRATEGIES = ("lazy", "reference")
"""Recognised solver strategies (bit-identical outputs)."""

DEFAULT_BLOCK_ELEMS = 4_000_000
"""Connection-cost entries kept in memory at once (~32 MB of float64)."""


class _ConnCost:
    """Connection-cost rows ``c_ij = a_j * d(i, j)``, lazily materialized.

    Row values are bit-identical between the dense and the blocked path:
    the same elementwise subtract/square/sum/sqrt/scale pipeline runs
    either way, only the batching differs.
    """

    def __init__(
        self,
        c_xy: np.ndarray,
        d_xy: np.ndarray,
        weights: np.ndarray,
        block_elems: int,
    ) -> None:
        self._c_xy = c_xy
        self._d_xy = d_xy
        self._weights = weights
        n_c, n_d = c_xy.shape[0], d_xy.shape[0]
        self.row_cap = max(1, block_elems // max(n_d, 1))
        self._full: Optional[np.ndarray] = None
        self._cache: Dict[int, np.ndarray] = {}
        if n_c * n_d <= block_elems:
            diff = c_xy[:, None, :] - d_xy[None, :, :]
            self._full = np.sqrt((diff**2).sum(axis=-1)) * weights[None, :]

    def row(self, i: int) -> np.ndarray:
        """The ``(n_d,)`` connection-cost row of candidate ``i``."""
        if self._full is not None:
            return self._full[i]
        row = self._cache.get(i)
        if row is None:
            diff = self._c_xy[i][None, :] - self._d_xy
            row = np.sqrt((diff**2).sum(axis=-1)) * self._weights
            if len(self._cache) >= self.row_cap:
                self._cache.pop(next(iter(self._cache)))
            self._cache[i] = row
        return row

    def block(self, lo: int, hi: int) -> np.ndarray:
        """Rows ``lo..hi`` as a ``(hi - lo, n_d)`` block."""
        if self._full is not None:
            return self._full[lo:hi]
        diff = self._c_xy[lo:hi, None, :] - self._d_xy[None, :, :]
        return np.sqrt((diff**2).sum(axis=-1)) * self._weights[None, :]


class _Instance:
    """Mutable greedy state shared by both strategies."""

    def __init__(
        self,
        demands: Sequence[DemandPoint],
        cand_points: Sequence[Point],
        facility_cost: FacilityCostFn,
        block_elems: int,
    ) -> None:
        self.n_c = len(cand_points)
        self.n_d = len(demands)
        self.weights = np.asarray([d.weight for d in demands], dtype=float)
        self.d_xy = np.asarray([(d.location.x, d.location.y) for d in demands], dtype=float)
        self.c_xy = np.asarray([(p.x, p.y) for p in cand_points], dtype=float)
        self.conn = _ConnCost(self.c_xy, self.d_xy, self.weights, block_elems)
        self.open_cost = np.asarray([facility_cost(p) for p in cand_points], dtype=float)
        self.assigned = np.full(self.n_d, _UNCONNECTED, dtype=int)
        self.current_cost = np.full(self.n_d, np.inf)
        self.is_open = np.zeros(self.n_c, dtype=bool)

    # ------------------------------------------------------------------
    def star(self, i: int, connected: np.ndarray, unconnected: np.ndarray) -> Tuple[float, np.ndarray]:
        """Best star of candidate ``i``: ``(ratio, demands to connect)``.

        Bit-for-bit the computation of the historical per-round scan.
        """
        f_eff = 0.0 if self.is_open[i] else float(self.open_cost[i])
        row = self.conn.row(i)
        savings = 0.0
        if connected.size:
            gain = self.current_cost[connected] - row[connected]
            savings = float(gain[gain > 0].sum())
        costs_u = row[unconnected]
        order = np.argsort(costs_u, kind="stable")
        prefix = np.cumsum(costs_u[order])
        ks = np.arange(1, unconnected.size + 1, dtype=float)
        ratios = (f_eff - savings + prefix) / ks
        k_best = int(np.argmin(ratios))
        return float(ratios[k_best]), unconnected[order[: k_best + 1]]

    def open_star(self, best_i: int, best_connect: np.ndarray, connected: np.ndarray) -> None:
        """Open ``best_i``, connect its star, apply defections."""
        row = self.conn.row(best_i)
        self.is_open[best_i] = True
        self.assigned[best_connect] = best_i
        self.current_cost[best_connect] = row[best_connect]
        if connected.size:
            gain = self.current_cost[connected] - row[connected]
            movers = connected[gain > 0]
            self.assigned[movers] = best_i
            self.current_cost[movers] = row[movers]

    def result(self, demands: List[DemandPoint], cand_points: List[Point]) -> PlacementResult:
        open_idx = sorted(set(self.assigned.tolist()))
        stations = [cand_points[i] for i in open_idx]
        remap = {ci: si for si, ci in enumerate(open_idx)}
        assignment = [remap[int(a)] for a in self.assigned]
        walking = float(self.current_cost.sum())
        space = float(sum(self.open_cost[i] for i in open_idx))
        return PlacementResult(
            stations=stations,
            assignment=assignment,
            walking=walking,
            space=space,
            demands=demands,
        )


def _no_star_error() -> RuntimeError:
    return RuntimeError(
        "no candidate offers a finite-ratio star for the remaining demand "
        "(every opening cost is infinite or NaN); the instance is infeasible"
    )


# ----------------------------------------------------------------------
# reference strategy: full candidate rescan per round (the parity oracle)
def _solve_reference(inst: _Instance) -> None:
    while np.any(inst.assigned == _UNCONNECTED):
        unconnected = np.flatnonzero(inst.assigned == _UNCONNECTED)
        connected = np.flatnonzero(inst.assigned != _UNCONNECTED)
        best_ratio = np.inf
        best_i = -1
        best_connect: np.ndarray = np.empty(0, dtype=int)
        for i in range(inst.n_c):
            ratio, connect = inst.star(i, connected, unconnected)
            if ratio < best_ratio - _TOL:
                best_ratio = ratio
                best_i = i
                best_connect = connect
        if best_i < 0:
            raise _no_star_error()
        inst.open_star(best_i, best_connect, connected)


# ----------------------------------------------------------------------
# lazy strategy: priority queue of cached ratios with stale revalidation
def _refresh_all_first_round(inst: _Instance) -> Dict[int, Tuple[float, np.ndarray]]:
    """Vectorized first-round scan: every demand unconnected, no savings.

    Per-candidate results are bit-identical to :meth:`_Instance.star`
    (stable row-wise argsort, same cumsum/ratio/argmin pipeline), just
    computed a block of candidates at a time.
    """
    fresh: Dict[int, Tuple[float, np.ndarray]] = {}
    unconnected = np.arange(inst.n_d)
    ks = np.arange(1, inst.n_d + 1, dtype=float)
    chunk = max(1, min(inst.n_c, inst.conn.row_cap))
    for lo in range(0, inst.n_c, chunk):
        hi = min(lo + chunk, inst.n_c)
        costs = inst.conn.block(lo, hi)
        order = np.argsort(costs, axis=1, kind="stable")
        prefix = np.cumsum(np.take_along_axis(costs, order, axis=1), axis=1)
        f_eff = inst.open_cost[lo:hi]
        ratios = (f_eff[:, None] + prefix) / ks[None, :]
        k_best = np.argmin(ratios, axis=1)
        for b, i in enumerate(range(lo, hi)):
            kb = int(k_best[b])
            fresh[i] = (float(ratios[b, kb]), unconnected[order[b, : kb + 1]])
    return fresh


def _chain_select(fresh: Dict[int, Tuple[float, np.ndarray]], n_c: int) -> int:
    """The reference's sequential acceptance chain over all candidates."""
    best_ratio = np.inf
    best_i = -1
    for i in range(n_c):
        ratio = fresh[i][0]
        if ratio < best_ratio - _TOL:
            best_ratio = ratio
            best_i = i
    return best_i


def _solve_lazy(inst: _Instance) -> None:
    heap: List[Tuple[float, int]] = []
    first_round = True
    while np.any(inst.assigned == _UNCONNECTED):
        unconnected = np.flatnonzero(inst.assigned == _UNCONNECTED)
        connected = np.flatnonzero(inst.assigned != _UNCONNECTED)
        fresh: Dict[int, Tuple[float, np.ndarray]] = {}
        if first_round:
            fresh = _refresh_all_first_round(inst)
            heap = []
            first_round = False
            min_fresh = min(r for r, _ in fresh.values()) if fresh else np.inf
        else:
            min_fresh = np.inf
            while heap and (not fresh or heap[0][0] <= min_fresh + _TOL):
                _, i = heapq.heappop(heap)
                ratio, connect = inst.star(i, connected, unconnected)
                fresh[i] = (ratio, connect)
                if ratio < min_fresh:
                    min_fresh = ratio
        if not math.isfinite(min_fresh):
            raise _no_star_error()
        near = [(r, i) for i, (r, _) in fresh.items() if r <= min_fresh + _TOL]
        if all(r == min_fresh for r, _ in near):
            # No fractional near-tie: the reference chain lands on the
            # lowest-index exact minimum.
            best_i = min(i for r, i in near if r == min_fresh)
        else:
            # Ratios within the acceptance window but not exactly equal:
            # the reference's sequential chain may pick a non-minimum.
            # Revalidate everything and replay the chain verbatim.
            while heap:
                _, i = heapq.heappop(heap)
                fresh[i] = inst.star(i, connected, unconnected)
            best_i = _chain_select(fresh, inst.n_c)
            if best_i < 0:
                raise _no_star_error()
        best_connect = fresh[best_i][1]
        inst.open_star(best_i, best_connect, connected)
        for i, (ratio, _) in fresh.items():
            if i != best_i:
                heapq.heappush(heap, (ratio, i))
        # The winner's effective opening cost just dropped to zero, which
        # breaks the lower-bound invariant for its cached ratio: force a
        # revalidation whenever it reaches the top.
        heapq.heappush(heap, (-np.inf, best_i))


_SOLVERS = {"lazy": _solve_lazy, "reference": _solve_reference}


def offline_placement(
    demands: Sequence[DemandPoint],
    facility_cost: FacilityCostFn,
    candidates: Optional[Sequence[Point]] = None,
    *,
    strategy: str = "lazy",
    block_elems: int = DEFAULT_BLOCK_ELEMS,
) -> PlacementResult:
    """Solve one PLP instance with the 1.61-factor greedy.

    Args:
        demands: weighted grid-centroid arrivals (the set ``N`` with
            weights ``a_j``).
        facility_cost: opening cost ``f_i`` per candidate location.
        candidates: locations where parking may be established; defaults
            to the demand locations themselves (``P ⊂ N``).
        strategy: ``"lazy"`` (default, lazy-greedy priority queue) or
            ``"reference"`` (full per-round rescan).  Outputs are
            bit-identical; see the module docstring.
        block_elems: connection-cost entries materialized at once; above
            this the ``(n_c, n_d)`` matrix is never fully built.

    Returns:
        :class:`PlacementResult` with the final assignment after all
        defections.

    Raises:
        ValueError: if demand exists but the candidate set is empty, or
            on an unknown strategy / non-positive block size.
        RuntimeError: if a round finds no finite-ratio star (every
            remaining opening cost infinite or NaN) — previously this
            silently corrupted the run through a ``-1`` index.
    """
    if strategy not in _SOLVERS:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {OFFLINE_STRATEGIES}"
        )
    if block_elems <= 0:
        raise ValueError(f"block_elems must be positive, got {block_elems}")
    demands = list(demands)
    if not demands:
        return PlacementResult(stations=[], assignment=[], walking=0.0, space=0.0)
    cand_points = list(candidates) if candidates is not None else [d.location for d in demands]
    if not cand_points:
        raise ValueError("no candidate locations")

    inst = _Instance(demands, cand_points, facility_cost, block_elems)
    _SOLVERS[strategy](inst)
    return inst.result(demands, cand_points)
