"""Offline 1.61-factor parking placement (Algorithm 1).

The PLP is the uncapacitated facility location problem; the paper adopts
the greedy of Jain, Mahdian, Markakis, Saberi and Vazirani [23], whose
dual-fitting analysis gives a 1.61 approximation factor — close to the
1.46 inapproximability bound [24].

Each iteration selects the most cost-effective "star": a candidate
location ``i`` together with a set ``B_i`` of still-unconnected grids,
where already-connected grids may defect to ``i`` when that lowers their
cost, and those savings subsidise the opening (Eq. 5):

    i* = argmin_i [ sum_{j in B_i} c_ij + f_i - sum_{j in B'_i} (c_i'j - c_ij) ] / |B_i|

Opening an already-open facility costs nothing (``f_i`` counts once), so
late arrivals can join existing stations at pure connection cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geo.points import Point
from .costs import DemandPoint, FacilityCostFn
from .result import PlacementResult

__all__ = ["offline_placement"]

_UNCONNECTED = -1


def offline_placement(
    demands: Sequence[DemandPoint],
    facility_cost: FacilityCostFn,
    candidates: Optional[Sequence[Point]] = None,
) -> PlacementResult:
    """Solve one PLP instance with the 1.61-factor greedy.

    Args:
        demands: weighted grid-centroid arrivals (the set ``N`` with
            weights ``a_j``).
        facility_cost: opening cost ``f_i`` per candidate location.
        candidates: locations where parking may be established; defaults
            to the demand locations themselves (``P ⊂ N``).

    Returns:
        :class:`PlacementResult` with the final assignment after all
        defections.

    Raises:
        ValueError: if demand exists but the candidate set is empty.
    """
    demands = list(demands)
    if not demands:
        return PlacementResult(stations=[], assignment=[], walking=0.0, space=0.0)
    cand_points = list(candidates) if candidates is not None else [d.location for d in demands]
    if not cand_points:
        raise ValueError("no candidate locations")

    n_c = len(cand_points)
    n_d = len(demands)
    weights = np.asarray([d.weight for d in demands], dtype=float)
    d_xy = np.asarray([(d.location.x, d.location.y) for d in demands], dtype=float)
    c_xy = np.asarray([(p.x, p.y) for p in cand_points], dtype=float)
    # conn_cost[i, j] = c_ij = a_j * d(i, j)
    diff = c_xy[:, None, :] - d_xy[None, :, :]
    conn_cost = np.sqrt((diff**2).sum(axis=-1)) * weights[None, :]
    open_cost = np.asarray([facility_cost(p) for p in cand_points], dtype=float)

    assigned = np.full(n_d, _UNCONNECTED, dtype=int)  # serving candidate index
    current_cost = np.full(n_d, np.inf)
    is_open = np.zeros(n_c, dtype=bool)

    while np.any(assigned == _UNCONNECTED):
        best_ratio = np.inf
        best_i = -1
        best_connect: np.ndarray = np.empty(0, dtype=int)
        unconnected = np.flatnonzero(assigned == _UNCONNECTED)
        connected = np.flatnonzero(assigned != _UNCONNECTED)
        for i in range(n_c):
            f_eff = 0.0 if is_open[i] else float(open_cost[i])
            savings = 0.0
            if connected.size:
                gain = current_cost[connected] - conn_cost[i, connected]
                savings = float(gain[gain > 0].sum())
            costs_u = conn_cost[i, unconnected]
            order = np.argsort(costs_u, kind="stable")
            prefix = np.cumsum(costs_u[order])
            ks = np.arange(1, unconnected.size + 1, dtype=float)
            ratios = (f_eff - savings + prefix) / ks
            k_best = int(np.argmin(ratios))
            if ratios[k_best] < best_ratio - 1e-12:
                best_ratio = float(ratios[k_best])
                best_i = i
                best_connect = unconnected[order[: k_best + 1]]
        # Open the winning star.
        is_open[best_i] = True
        assigned[best_connect] = best_i
        current_cost[best_connect] = conn_cost[best_i, best_connect]
        if connected.size:
            gain = current_cost[connected] - conn_cost[best_i, connected]
            movers = connected[gain > 0]
            assigned[movers] = best_i
            current_cost[movers] = conn_cost[best_i, movers]

    open_idx = sorted(set(assigned.tolist()))
    stations = [cand_points[i] for i in open_idx]
    remap = {ci: si for si, ci in enumerate(open_idx)}
    assignment = [remap[int(a)] for a in assigned]
    walking = float(current_cost.sum())
    space = float(sum(open_cost[i] for i in open_idx))
    return PlacementResult(
        stations=stations,
        assignment=assignment,
        walking=walking,
        space=space,
        demands=demands,
    )
