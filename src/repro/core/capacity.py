"""Capacitated assignment — the overcrowding extension.

The paper assumes station reserves stay balanced by the re-balancing
procedures of [9]-[11] (Section II-B) and notes overcrowding as an
operational concern.  This module adds the capacitated variant: each
parking can absorb at most ``capacity`` arrivals per period, and demand
is assigned to the cheapest *feasible* station by a greedy
regret-minimising heuristic, with a transportation-LP-like repair pass.

It composes with any placement: take a :class:`PlacementResult`'s
stations, impose capacities, and re-assign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geo.points import Point
from .costs import DemandPoint

__all__ = ["CapacitatedAssignment", "assign_with_capacity"]


@dataclass
class CapacitatedAssignment:
    """Outcome of a capacitated assignment.

    Attributes:
        assignment: per-demand station index, or -1 if the demand could
            not be placed (insufficient total capacity).
        walking: total weighted walking cost of placed demand.
        loads: consumed capacity per station.
        unassigned: indices of demands that did not fit.
    """

    assignment: List[int]
    walking: float
    loads: List[float]
    unassigned: List[int]

    @property
    def is_feasible(self) -> bool:
        """Whether every demand found a station."""
        return not self.unassigned


def assign_with_capacity(
    demands: Sequence[DemandPoint],
    stations: Sequence[Point],
    capacities: Sequence[float],
) -> CapacitatedAssignment:
    """Assign weighted demand to stations under capacity limits.

    Uses the classic *regret* heuristic: repeatedly commit the demand
    whose gap between its best and second-best feasible station is
    largest (those are the riskiest to defer), then a single repair pass
    that relocates demand from overloaded detours if a cheaper feasible
    station freed up.  Demands are treated atomically (a grid's arrivals
    stay together, matching P1's ``x_ij`` being 0/1 per grid).

    Args:
        demands: weighted demand points.
        stations: parking locations.
        capacities: per-station capacity, aligned with ``stations``.

    Returns:
        A :class:`CapacitatedAssignment`.

    Raises:
        ValueError: on length mismatch, negative capacities, or demand
            with no stations.
    """
    demands = list(demands)
    stations = list(stations)
    caps = np.asarray(capacities, dtype=float)
    if len(stations) != caps.size:
        raise ValueError(
            f"{len(stations)} stations but {caps.size} capacities"
        )
    if np.any(caps < 0):
        raise ValueError("capacities cannot be negative")
    if demands and not stations:
        raise ValueError("no stations to assign demand to")
    n_d = len(demands)
    if n_d == 0:
        return CapacitatedAssignment([], 0.0, caps.tolist(), [])

    d_xy = np.asarray([(d.location.x, d.location.y) for d in demands])
    s_xy = np.asarray([(p.x, p.y) for p in stations])
    weights = np.asarray([d.weight for d in demands])
    dist = np.sqrt(((d_xy[:, None, :] - s_xy[None, :, :]) ** 2).sum(axis=-1))
    cost = dist * weights[:, None]

    remaining = caps.copy()
    assignment = np.full(n_d, -1, dtype=int)
    todo = set(range(n_d))
    while todo:
        best_j: Dict[int, int] = {}
        regret = {}
        for jdx in todo:
            feas = np.flatnonzero(remaining >= weights[jdx])
            if feas.size == 0:
                continue
            costs = cost[jdx, feas]
            order = np.argsort(costs, kind="stable")
            best_j[jdx] = int(feas[order[0]])
            second = float(costs[order[1]]) if order.size > 1 else float("inf")
            regret[jdx] = second - float(costs[order[0]])
        if not best_j:
            break  # nothing fits anywhere
        # Commit the highest-regret demand (ties: heaviest first).
        pick = max(best_j, key=lambda j: (regret[j], weights[j], -j))
        station = best_j[pick]
        assignment[pick] = station
        remaining[station] -= weights[pick]
        todo.remove(pick)

    # Repair pass: a demand may now have a cheaper feasible alternative
    # than the one the greedy order forced on it.
    improved = True
    passes = 0
    while improved and passes < 5:
        improved = False
        passes += 1
        for jdx in range(n_d):
            cur = assignment[jdx]
            if cur < 0:
                continue
            feas = np.flatnonzero(remaining >= weights[jdx])
            if feas.size == 0:
                continue
            alt = int(feas[np.argmin(cost[jdx, feas])])
            if cost[jdx, alt] + 1e-12 < cost[jdx, cur]:
                remaining[cur] += weights[jdx]
                remaining[alt] -= weights[jdx]
                assignment[jdx] = alt
                improved = True

    placed = assignment >= 0
    walking = float(cost[np.arange(n_d)[placed], assignment[placed]].sum())
    loads = (caps - remaining).tolist()
    unassigned = sorted(int(j) for j in np.flatnonzero(~placed))
    return CapacitatedAssignment(
        assignment=assignment.tolist(),
        walking=walking,
        loads=loads,
        unassigned=unassigned,
    )
