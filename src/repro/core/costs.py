"""Cost model of the Parking Location Placement problem (P1).

Two conflicting terms (Section III-A):

* **User dissatisfaction** ``c_ij = a_j * d_ij`` — expected arrivals at
  grid ``j`` times walking distance to its assigned parking ``i``
  (Definition 1).
* **Space occupation** ``f_i`` — cost of opening a parking at ``i``
  (Definition 2).

All costs are expressed in metres; monetary facility costs convert at
1 $ = 1000 m (Section III-C / V).  The evaluation draws ``f_i`` uniformly
at random with a mean of 10 km (Section V, Experimental Parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..geo.points import Point

__all__ = [
    "DOLLARS_TO_METERS",
    "DemandPoint",
    "FacilityCostFn",
    "constant_facility_cost",
    "uniform_facility_cost",
    "demand_points_from_stream",
    "walking_cost",
]

DOLLARS_TO_METERS = 1000.0
"""Conversion between monetary and walking-distance cost units (Section III-C)."""

FacilityCostFn = Callable[[Point], float]
"""Maps a candidate location to its space-occupation cost ``f_i`` (metres)."""


@dataclass(frozen=True)
class DemandPoint:
    """A weighted destination: ``weight`` arrivals at ``location`` (``a_j``).

    Raises:
        ValueError: if the weight is not positive.
    """

    location: Point
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")

    def cost_to(self, station: Point) -> float:
        """Dissatisfaction ``c_ij = a_j * d_ij`` of assigning to ``station``."""
        return self.weight * self.location.distance_to(station)


def constant_facility_cost(cost: float) -> FacilityCostFn:
    """A location-independent opening cost.

    Raises:
        ValueError: if the cost is negative.
    """
    if cost < 0:
        raise ValueError(f"facility cost must be non-negative, got {cost}")

    def fn(_: Point) -> float:
        return cost

    return fn


def uniform_facility_cost(
    mean: float, rng: np.random.Generator, half_width_fraction: float = 0.5
) -> FacilityCostFn:
    """Random-but-frozen opening costs, uniform around ``mean``.

    Section V draws space-occupation costs "uniformly randomly distributed
    with mean of 10 (km)".  Costs are drawn lazily per distinct location
    and memoised so repeated queries are consistent within a run.

    Raises:
        ValueError: on a non-positive mean or a fraction outside [0, 1].
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if not 0.0 <= half_width_fraction <= 1.0:
        raise ValueError(
            f"half_width_fraction must be in [0, 1], got {half_width_fraction}"
        )
    lo = mean * (1.0 - half_width_fraction)
    hi = mean * (1.0 + half_width_fraction)
    cache: dict = {}

    def fn(location: Point) -> float:
        if location not in cache:
            cache[location] = float(rng.uniform(lo, hi))
        return cache[location]

    return fn


def demand_points_from_stream(stream: Sequence[Point]) -> List[DemandPoint]:
    """Collapse a destination stream into weighted demand points.

    Repeated identical destinations merge into one :class:`DemandPoint`
    with the multiplicity as weight — how the offline algorithm sees a
    batch of binned arrivals.
    """
    counts: dict = {}
    order: List[Point] = []
    for p in stream:
        if p not in counts:
            order.append(p)
            counts[p] = 0
        counts[p] += 1
    return [DemandPoint(p, float(counts[p])) for p in order]


def walking_cost(
    demands: Sequence[DemandPoint], stations: Sequence[Point]
) -> Tuple[float, List[int]]:
    """Nearest-station assignment cost of a finished placement.

    Returns:
        ``(total_walking_cost, assignment)`` where ``assignment[j]`` is
        the index of the station serving demand ``j``.

    Raises:
        ValueError: if there are no stations but demand exists.
    """
    if not demands:
        return 0.0, []
    if not stations:
        raise ValueError("no stations to assign demand to")
    st = np.asarray([(s.x, s.y) for s in stations], dtype=float)
    total = 0.0
    assignment: List[int] = []
    for d in demands:
        dist = np.hypot(st[:, 0] - d.location.x, st[:, 1] - d.location.y)
        idx = int(np.argmin(dist))
        assignment.append(idx)
        total += d.weight * float(dist[idx])
    return total, assignment
