"""The Theorem-1 adversarial instance: no online PLP is O(1)-competitive.

The proof instance places request ``i`` at ``(2^-i, 2^-i)`` with a
uniform opening cost ``f = 2``.  The offline optimum opens a single
parking at the origin for total cost ``2 + sqrt(2) - sqrt(2) * 2^-n``;
any online algorithm either opens unboundedly many parkings or pays
unbounded walking cost as ``n`` grows.  This module generates the
instance and computes the exact offline-optimal cost so experiments can
plot the competitive-ratio growth (bench ``thm1``).
"""

from __future__ import annotations

import math
from typing import List

from ..geo.points import Point
from .costs import DemandPoint
from .result import PlacementResult

__all__ = [
    "THEOREM1_FACILITY_COST",
    "theorem1_requests",
    "theorem1_offline_optimum",
    "competitive_ratio",
]

THEOREM1_FACILITY_COST = 2.0
"""The opening cost ``f`` used in the Theorem-1 construction."""


def theorem1_requests(n: int) -> List[Point]:
    """The geometric request sequence ``(2^-i, 2^-i)`` for ``i = 1..n``.

    Raises:
        ValueError: if ``n`` is not positive.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return [Point(2.0**-i, 2.0**-i) for i in range(1, n + 1)]


def theorem1_offline_optimum(n: int) -> float:
    """Cost of the single-parking-at-origin solution (the proof's reference).

    ``2 + sqrt(2) * sum_{i=1..n} 2^-i = 2 + sqrt(2) - sqrt(2) * 2^-n``.
    This upper-bounds the offline optimum — for small ``n`` a parking
    placed *on* a request is slightly cheaper, so competitive ratios
    computed against this value are a lower bound on the true ratio
    (conservative in the direction the theorem needs).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return 2.0 + math.sqrt(2.0) - math.sqrt(2.0) * 2.0**-n


def competitive_ratio(online_result: PlacementResult, n: int) -> float:
    """Online total cost over the offline optimum for the instance."""
    return online_result.total / theorem1_offline_optimum(n)
