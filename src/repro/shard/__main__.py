"""The supervised-fleet chaos gauntlet: ``python -m repro.shard``.

Drives a :class:`~repro.shard.FleetSupervisor` over a 3-shard demo city
through every failure class PR 8 added, and pins the self-healing
contract:

1. **Fault-free parity** — a supervised epoch with nothing failing is
   bit-identical to an unsupervised :class:`~repro.shard.ShardedRuntime`
   epoch: same outcomes, same per-shard journal bytes, same recovered
   checkpoint state, zero restarts, zero incidents, a clean post-epoch
   scrub.
2. **Disk-fault schedules** — deterministic :class:`FaultFS` campaigns
   (torn journal writes, ENOSPC, fsync failure — each with a bounded
   fault budget, aimed at one shard) may cost restarts but not state:
   after the supervised epoch, *every* shard's journal bytes and
   recovered state are identical to a fault-free oracle fleet, and no
   orphan ``*.tmp-*`` files survive.
3. **Poison-block quarantine** — a payload-keyed poison marker makes one
   trip's journal line unwritable forever; the supervisor must
   quarantine exactly the chunk containing it (full provenance in the
   ledger), keep every other trip journaled, and end the epoch serving.
4. **Worker-crash isolation** — a process pool that dies mid-epoch drops
   every shard into in-process supervision; the epoch still completes
   with oracle-identical journals.
5. **Scrubber round-trip** — bit-rot a snapshot, tear a journal tail,
   plant an orphan tmp; ``scrub_tree`` must demote/repair/remove each,
   and a recovered supervisor must then serve epoch 2 bit-identically to
   a never-damaged fleet.

Exit status 0 on success, 1 with a FAIL line per violation — the same
contract as ``python -m repro.guard`` and ``python -m
repro.resilience.chaos``, so CI runs all three.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Dict, List

from ..errors import WorkerCrashError
from ..guard.__main__ import PLANE, _guard_config, _make_trips
from ..guard.runtime import HALTED, HEALTHY
from ..resilience.faultfs import FaultFS, FaultFSConfig
from ..resilience.journal import TripJournal
from ..resilience.scrub import scrub_tree
from .plan import ShardPlan
from .runtime import ShardedRuntime, build_shard_runtime
from .supervisor import QUARANTINED, FleetSupervisor, SupervisorConfig

import numpy as np

from ..geo.points import BoundingBox, Point

BLOCK = 64


def _build_city(
    n_shards: int, directory: Path, seed: int, durable: bool
) -> ShardedRuntime:
    """The guard gauntlet's demo city, with selectable durability."""
    plan = ShardPlan.from_bounds(BoundingBox(0.0, 0.0, PLANE, PLANE), n_shards)
    anchors = [
        Point(float(x), float(y))
        for x in (0, 667, 1333, 2000)
        for y in (0, 667, 1333, 2000)
    ]
    historical = np.random.default_rng(seed).uniform(0.0, PLANE, size=(300, 2))
    return ShardedRuntime(
        plan, directory, anchors, historical, seed=seed,
        guard=_guard_config(), durable=durable,
    )


def _no_sleep(_seconds: float) -> None:
    pass


def _supervisor(city: ShardedRuntime, **overrides) -> FleetSupervisor:
    cfg = SupervisorConfig(backoff_base_s=0.0, **overrides)
    return FleetSupervisor(city, config=cfg, sleep=_no_sleep)


def _shard_states(root: Path, city: ShardedRuntime) -> Dict[int, dict]:
    """Recovered logical state per shard, KS wall-clock zeroed."""
    states: Dict[int, dict] = {}
    for sid in range(city.plan.n_shards):
        sdir = root / f"shard-{sid:03d}"
        if not sdir.exists():
            continue
        runtime = build_shard_runtime(city.spec(sid), sdir)
        state = runtime.inner.service.state_dict()
        state["planner"]["ks_seconds"] = 0.0
        states[sid] = state
        runtime.close()
    return states


def _shard_journals(root: Path, n_shards: int) -> Dict[int, bytes]:
    out: Dict[int, bytes] = {}
    for sid in range(n_shards):
        path = root / f"shard-{sid:03d}" / "journal.jsonl"
        if path.exists():
            out[sid] = path.read_bytes()
    return out


def _orphan_tmps(root: Path) -> List[Path]:
    return sorted(p for p in root.rglob("*.tmp-*"))


def _check_oracle_identity(
    label: str, root: Path, city: ShardedRuntime,
    oracle_journals: Dict[int, bytes], oracle_states: Dict[int, dict],
) -> int:
    failures = 0
    journals = _shard_journals(root, city.plan.n_shards)
    if journals != oracle_journals:
        bad = sorted(
            sid for sid in set(journals) | set(oracle_journals)
            if journals.get(sid) != oracle_journals.get(sid)
        )
        print(f"FAIL: {label}: journal bytes diverged on shard(s) {bad}")
        failures += 1
    states = _shard_states(root, city)
    if states != oracle_states:
        bad = sorted(
            sid for sid in set(states) | set(oracle_states)
            if states.get(sid) != oracle_states.get(sid)
        )
        print(f"FAIL: {label}: recovered state diverged on shard(s) {bad}")
        failures += 1
    orphans = _orphan_tmps(root)
    if orphans:
        print(f"FAIL: {label}: orphan tmp file(s) left behind: {orphans}")
        failures += 1
    return failures


def _gauntlet(n_trips: int, seed: int, n_shards: int) -> int:
    failures = 0
    records = _make_trips(n_trips, seed)
    workdir = Path(tempfile.mkdtemp(prefix="esharing-shard-"))
    try:
        # ------------------------------------------------------------------
        # 1. Fault-free supervised epoch == unsupervised epoch, bit for bit.
        plain = _build_city(n_shards, workdir / "plain", seed, durable=False)
        plain_outcome = plain.serve(records, block_size=BLOCK)
        clean = _build_city(n_shards, workdir / "clean", seed, durable=False)
        sup = _supervisor(clean)
        outcome = sup.serve(records, block_size=BLOCK)
        if outcome.health != HEALTHY or outcome.restarts or outcome.quarantined:
            print(
                f"FAIL: clean supervised epoch not clean: health "
                f"{outcome.health}, {outcome.restarts} restart(s), "
                f"{len(outcome.quarantined)} quarantined"
            )
            failures += 1
        if sup.incidents.total != 0:
            print(
                f"FAIL: clean supervised epoch logged "
                f"{sup.incidents.total} fleet incident(s)"
            )
            failures += 1
        if outcome.scrub is None or not outcome.scrub.clean:
            print(f"FAIL: post-epoch scrub of a clean fleet found damage")
            failures += 1
        by_id = {r.shard_id: r for r in outcome.reports}
        for report in plain_outcome.reports:
            supervised = by_id.get(report.shard_id)
            if supervised is None or supervised.report is None:
                print(f"FAIL: shard {report.shard_id} missing from supervised epoch")
                failures += 1
            elif supervised.report.outcomes != report.outcomes:
                print(
                    f"FAIL: shard {report.shard_id} supervised outcomes "
                    "diverged from the plain fleet"
                )
                failures += 1
        if _shard_journals(workdir / "clean", n_shards) != _shard_journals(
            workdir / "plain", n_shards
        ):
            print("FAIL: clean supervised journal bytes diverged from plain fleet")
            failures += 1
        if _shard_states(workdir / "clean", clean) != _shard_states(
            workdir / "plain", plain
        ):
            print("FAIL: clean supervised state diverged from plain fleet")
            failures += 1

        # ------------------------------------------------------------------
        # 2. Disk-fault schedules vs a durable fault-free oracle.
        oracle = _build_city(n_shards, workdir / "oracle", seed, durable=True)
        _supervisor(oracle).serve(records, block_size=BLOCK)
        oracle_journals = _shard_journals(workdir / "oracle", n_shards)
        oracle_states = _shard_states(workdir / "oracle", oracle)

        schedules = [
            # Torn/fsync faults aim at the WAL; ENOSPC at the shard dir,
            # where the first durable write is the genesis snapshot — so
            # the three schedules cover journal appends, fsync promises
            # and the atomic snapshot path respectively.
            ("torn-writes", FaultFSConfig(
                seed=seed, p_torn=1.0, match="shard-001/journal.jsonl",
                max_faults=2,
            )),
            ("enospc", FaultFSConfig(
                seed=seed, p_enospc=1.0, match="shard-001", max_faults=2,
            )),
            ("fsync-failure", FaultFSConfig(
                seed=seed, p_fsync=1.0, match="shard-001/journal.jsonl",
                max_faults=2,
            )),
        ]
        for name, fault_config in schedules:
            root = workdir / f"faults-{name}"
            city = _build_city(n_shards, root, seed, durable=True)
            sup = _supervisor(city)
            fs = FaultFS(fault_config)
            with fs.inject():
                outcome = sup.serve(records, block_size=BLOCK)
            if fs.counters.faults == 0:
                print(f"FAIL: {name}: schedule injected no faults")
                failures += 1
            if outcome.health == HALTED:
                print(f"FAIL: {name}: fleet halted under a bounded fault budget")
                failures += 1
            if outcome.restarts == 0:
                print(f"FAIL: {name}: faults fired but no shard restarted")
                failures += 1
            failures += _check_oracle_identity(
                name, root, city, oracle_journals, oracle_states
            )
            healthy = [
                r.shard_id for r in outcome.reports
                if r.restarts == 0 and r.report is not None
            ]
            if not healthy:
                print(f"FAIL: {name}: targeted schedule disturbed every shard")
                failures += 1
            print(
                f"{name}: {fs.to_text()}; {outcome.restarts} restart(s); "
                f"unaffected shards {healthy} kept serving"
            )

        # ------------------------------------------------------------------
        # 3. Poison-block quarantine with exact accounting.
        router_buckets = clean.router.split_trips(records)
        victim_sid = 1 if len(router_buckets) > 1 and router_buckets[1] else 0
        bucket = router_buckets[victim_sid]
        victim = bucket[len(bucket) // 2]
        marker = f'"order_id":{victim.order_id},"start"'
        root = workdir / "poison"
        city = _build_city(n_shards, root, seed, durable=True)
        sup = _supervisor(city, poison_retries=2)
        fs = FaultFS(FaultFSConfig(
            seed=seed, match="journal.jsonl", poison_markers=(marker,),
        ))
        with fs.inject():
            outcome = sup.serve(records, block_size=BLOCK)
        if fs.counters.poisoned == 0:
            print("FAIL: poison: marker never fired")
            failures += 1
        report = {r.shard_id: r for r in outcome.reports}[victim_sid]
        if report.state != QUARANTINED or not report.quarantined:
            print(
                f"FAIL: poison: victim shard ended {report.state} with "
                f"{len(report.quarantined)} quarantined block(s)"
            )
            failures += 1
        else:
            quarantined_ids = set()
            for row in report.quarantined:
                quarantined_ids.update(row.order_ids)
            if victim.order_id not in quarantined_ids:
                print("FAIL: poison: victim trip not in the quarantine ledger")
                failures += 1
            journal_ids = {
                e.trip.order_id
                for e in TripJournal(
                    root / f"shard-{victim_sid:03d}" / "journal.jsonl",
                    durable=False,
                ).scan()
            }
            bucket_ids = {t.order_id for t in bucket}
            if not (bucket_ids - quarantined_ids) <= journal_ids <= bucket_ids:
                print("FAIL: poison: journaled trips != bucket minus quarantined")
                failures += 1
            journaled_claim = sum(r.journaled for r in report.quarantined)
            if journaled_claim != len(quarantined_ids & journal_ids):
                print(
                    f"FAIL: poison: ledger claims {journaled_claim} journaled "
                    f"quarantined trip(s), journal holds "
                    f"{len(quarantined_ids & journal_ids)}"
                )
                failures += 1
            ledger = root / "quarantine.jsonl"
            if not ledger.exists() or not ledger.read_text().strip():
                print("FAIL: poison: quarantine ledger not persisted")
                failures += 1
        others = [
            r for r in outcome.reports
            if r.shard_id != victim_sid and r.report is not None
        ]
        if any(r.restarts for r in others):
            print("FAIL: poison: unaffected shards restarted")
            failures += 1
        print(
            f"poison: {fs.to_text()}; shard {victim_sid} quarantined "
            f"{len(report.quarantined)} block(s) over {report.restarts} "
            f"restart(s), fleet health {outcome.health}"
        )

        # ------------------------------------------------------------------
        # 4. Worker-crash isolation: a dead pool demotes the epoch to
        #    in-process supervision instead of failing it.
        class _DeadPool:
            def run(self, tasks):
                raise WorkerCrashError("injected: pool lost its workers")

        root = workdir / "crash"
        city = _build_city(n_shards, root, seed, durable=True)
        sup = FleetSupervisor(
            city,
            config=SupervisorConfig(backoff_base_s=0.0),
            sleep=_no_sleep,
            runner_factory=lambda workers, timeout: _DeadPool(),
        )
        outcome = sup.serve(records, workers=2, block_size=BLOCK)
        if outcome.health == HALTED:
            print("FAIL: worker crash halted the fleet")
            failures += 1
        if outcome.restarts == 0:
            print("FAIL: worker crash epoch recorded no supervised restarts")
            failures += 1
        failures += _check_oracle_identity(
            "worker-crash", root, city, oracle_journals, oracle_states
        )
        print(
            f"worker-crash: epoch completed in-process with "
            f"{outcome.restarts} restart(s), health {outcome.health}"
        )

        # ------------------------------------------------------------------
        # 5. Scrubber round-trip: damage at rest, scrub, serve epoch 2.
        epoch2 = _make_trips(n_trips // 2, seed + 17)
        ref_root = workdir / "scrub-ref"
        ref = _build_city(n_shards, ref_root, seed, durable=True)
        ref_sup = _supervisor(ref)
        ref_sup.serve(records, block_size=BLOCK)
        ref_sup.serve(epoch2, block_size=BLOCK)

        root = workdir / "scrub"
        city = _build_city(n_shards, root, seed, durable=True)
        _supervisor(city).serve(records, block_size=BLOCK)
        snapshots = sorted((root / "shard-000").glob("snapshot-*.json"))
        FaultFS.bitrot(snapshots[-1], seed=seed)
        with open(root / "shard-001" / "journal.jsonl", "a") as f:
            f.write("deadbeefdeadbeef {torn garbage")
        orphan = root / "shard-002" / "snapshot-0000000099.json.tmp-orphan"
        orphan.write_text("half a snapshot")
        report = scrub_tree(root, repair=True, durable=True)
        kinds = {(f.kind, f.action) for f in report.findings}
        expectations = [
            ("snapshot_corrupt", "demoted"),
            ("journal_torn_tail", "repaired"),
            ("orphan_tmp", "removed"),
        ]
        for expected in expectations:
            if expected not in kinds:
                print(f"FAIL: scrub: expected finding {expected}, got {kinds}")
                failures += 1
        if not snapshots[-1].with_name(snapshots[-1].name + ".corrupt").exists():
            print("FAIL: scrub: corrupt snapshot not demoted to .corrupt")
            failures += 1
        recovered = FleetSupervisor.recover(
            root, config=SupervisorConfig(backoff_base_s=0.0), sleep=_no_sleep
        )
        outcome = recovered.serve(epoch2, block_size=BLOCK)
        if outcome.health == HALTED:
            print("FAIL: scrub: epoch 2 halted after repair")
            failures += 1
        journals = _shard_journals(root, n_shards)
        ref_journals = _shard_journals(ref_root, n_shards)
        if journals != ref_journals:
            bad = sorted(
                sid for sid in set(journals) | set(ref_journals)
                if journals.get(sid) != ref_journals.get(sid)
            )
            print(f"FAIL: scrub: epoch-2 journal bytes diverged on shard(s) {bad}")
            failures += 1
        if _shard_states(root, city) != _shard_states(ref_root, ref):
            print("FAIL: scrub: epoch-2 recovered state diverged from reference")
            failures += 1
        print(
            f"scrub: {report.to_text()}; epoch 2 after repair matched the "
            f"undamaged reference"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        print(f"shard supervision gauntlet: {failures} failure(s)")
        return 1
    print(
        f"shard supervision gauntlet OK: fault-free parity, {len(schedules)} "
        f"disk-fault schedules, poison quarantine, worker-crash isolation "
        f"and scrubber round-trip verified over {n_trips} trips on "
        f"{n_shards} shards"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description="chaos gauntlet for the supervised shard fleet",
    )
    parser.add_argument("--trips", type=int, default=900, help="epoch-1 stream length")
    parser.add_argument("--seed", type=int, default=0, help="workload + fault seed")
    parser.add_argument(
        "--shards", type=int, default=3, help="fleet size (>= 2)"
    )
    args = parser.parse_args(argv)
    if args.shards < 2:
        parser.error(f"--shards must be >= 2, got {args.shards}")
    return _gauntlet(args.trips, args.seed, args.shards)


if __name__ == "__main__":
    sys.exit(main())
