"""Columnar trip routing: split one stream into per-shard sub-streams.

The router keys every trip on its **destination** — placement and
parking decisions concern where the ride ends, so the shard that owns
the end cell owns the trip.  Within each shard the original arrival
order is preserved exactly (`numpy.flatnonzero` over a stable mask),
which is what makes per-shard runs replayable against a standalone
single-shard oracle: the shard sees the same trips in the same order
whether it was split out of a city stream or fed directly.

Both entry points run the identical routing kernel
(:meth:`~repro.shard.plan.ShardPlan.shard_of_many`): the columnar
:meth:`ShardRouter.split_block` gathers shard ids for a whole
:class:`~repro.core.tripblock.TripBlock` in one vectorized pass, while
:meth:`ShardRouter.split_trips` chunks record lists through the same
arithmetic (with a scalar per-trip fallback for rows whose coordinates
cannot even be coerced to floats — chaos garbage routes
deterministically to the cell-(0,0) shard and is rejected by that
shard's validator).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.tripblock import TripBlock
from ..datasets.trips import TripRecord
from .plan import ShardPlan

__all__ = ["ShardRouter"]

_CHUNK = 4096
"""Records per vectorized routing pass on the list path."""


class ShardRouter:
    """Split trip streams into per-shard sub-streams, order preserved."""

    def __init__(self, plan: ShardPlan) -> None:
        self.plan = plan

    # ------------------------------------------------------------------
    def route(self, trip: TripRecord) -> int:
        """Shard id of one trip (same kernel as the columnar path)."""
        try:
            xs = np.array([float(trip.end.x)])
            ys = np.array([float(trip.end.y)])
        except (TypeError, ValueError):
            return 0
        return int(self.plan.shard_of_many(xs, ys)[0])

    def split_block(self, block: TripBlock) -> List[Tuple[int, TripBlock]]:
        """Per-shard sub-blocks of a columnar block.

        Returns ``(shard_id, sub_block)`` pairs in ascending shard id,
        only for shards that received trips.  Concatenating the
        sub-blocks in the order of the original row indices reproduces
        the input bit for bit — `take` copies, never reorders within a
        shard.
        """
        sids = self.plan.shard_of_many(block.end_x, block.end_y)
        out: List[Tuple[int, TripBlock]] = []
        for sid in np.unique(sids).tolist():
            out.append((int(sid), block.take(np.flatnonzero(sids == sid))))
        return out

    def split_trips(self, trips: Sequence[TripRecord]) -> List[List[TripRecord]]:
        """Per-shard record lists (length ``n_shards``; empty allowed).

        Chunks the list through the vectorized kernel; a chunk with
        un-coercible coordinates falls back to per-trip routing so one
        garbage row cannot change any other row's shard.
        """
        buckets: List[List[TripRecord]] = [[] for _ in range(self.plan.n_shards)]
        trips = list(trips)
        for lo in range(0, len(trips), _CHUNK):
            chunk = trips[lo : lo + _CHUNK]
            try:
                xs = np.array([t.end.x for t in chunk], dtype=float)
                ys = np.array([t.end.y for t in chunk], dtype=float)
            except (TypeError, ValueError):
                for t in chunk:
                    buckets[self.route(t)].append(t)
                continue
            for sid, t in zip(self.plan.shard_of_many(xs, ys).tolist(), chunk):
                buckets[sid].append(t)
        return buckets
