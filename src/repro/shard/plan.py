"""Geohash-prefix partition of the plane into shard territories.

A :class:`ShardPlan` carves the city plane into geohash cells (the
Morton / Z-order curve of ``repro.geo.geohash``) and assigns each cell
to one shard.  Cells are taken in Morton order — lexicographic geohash
order — so every shard owns a contiguous run of the space-filling
curve, which keeps territories spatially coherent without ever storing
polygon geometry: membership is one integer table lookup.

Routing is columnar end to end: planar trip coordinates unproject to
(lat, lon) with :meth:`~repro.geo.distance.LocalProjection.to_geo_vec`,
drop into integer cell indices with
:func:`~repro.geo.geohash.cell_indices_many`, and gather their shard
ids from a dense ``(n_lat, n_lon)`` table.  The scalar
:meth:`ShardPlan.shard_of` runs the identical kernel on a length-1
array, so per-trip and per-block routing can never disagree.

Garbage coordinates never raise here: non-finite values land in cell
``(0, 0)`` and out-of-range values clamp to the edge cells, so a
router dispatches *every* trip deterministically and the per-shard
validator — the component that owns rejection — dead-letters the junk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.distance import LocalProjection
from ..geo.geohash import cell_code, cell_indices_many, cell_shape, _interleave
from ..geo.points import BoundingBox, Point

__all__ = ["ShardPlan", "DEFAULT_REFERENCE"]

DEFAULT_REFERENCE = (39.9042, 116.4074)
"""Default projection reference (Beijing, the paper's study city)."""

_MAX_PLAN_CELLS = 1 << 16
"""Upper bound on covering-rectangle cells — keeps the dense shard
table and the Morton sort trivially cheap."""


@dataclass(frozen=True)
class ShardPlan:
    """An immutable cell-to-shard assignment over a covering rectangle.

    Attributes:
        ref_lat: latitude of the plane's projection reference.
        ref_lon: longitude of the plane's projection reference.
        precision: geohash characters per cell.
        origin: global ``(lat_idx, lon_idx)`` of the rectangle's
            south-west cell.
        shape: ``(n_lat, n_lon)`` cells covered.
        cell_shards: dense ``shape`` table of shard ids (int64).
        n_shards: number of shards (``cell_shards`` values are
            ``0 .. n_shards-1``, every shard non-empty).
    """

    ref_lat: float
    ref_lon: float
    precision: int
    origin: Tuple[int, int]
    shape: Tuple[int, int]
    cell_shards: np.ndarray
    n_shards: int

    def __post_init__(self) -> None:
        table = np.asarray(self.cell_shards, dtype=np.int64)
        if table.shape != tuple(self.shape):
            raise ValueError(
                f"cell_shards shape {table.shape} != declared {self.shape}"
            )
        if self.n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {self.n_shards}")
        present = np.unique(table)
        if present[0] < 0 or present[-1] >= self.n_shards:
            raise ValueError("cell_shards holds ids outside [0, n_shards)")
        if len(present) != self.n_shards:
            missing = sorted(set(range(self.n_shards)) - set(present.tolist()))
            raise ValueError(f"shards without territory: {missing}")
        object.__setattr__(self, "cell_shards", table)
        object.__setattr__(
            self, "_projection", LocalProjection(self.ref_lat, self.ref_lon)
        )
        object.__setattr__(self, "_boundary", _boundary_mask(table))

    # ------------------------------------------------------------------
    # construction
    @classmethod
    def from_bounds(
        cls,
        bounds: BoundingBox,
        n_shards: int,
        precision: Optional[int] = None,
        reference: Tuple[float, float] = DEFAULT_REFERENCE,
        demand: Optional[np.ndarray] = None,
    ) -> "ShardPlan":
        """Partition a planar bounding box into ``n_shards`` territories.

        Cells of the covering rectangle are walked in Morton order and
        split into contiguous runs of (near-)equal weight, so shards
        stay spatially coherent and balanced.

        Args:
            bounds: city plane extent in metres (the workload's box).
            n_shards: shard count (>= 1).
            precision: geohash characters per cell; ``None`` picks the
                coarsest precision giving at least ``8 * n_shards``
                cells, so the split has room to balance.
            reference: projection reference ``(lat, lon)``.
            demand: optional ``(n, 2)`` planar sample of historical
                destinations; when given, cell weights are
                ``1 + arrivals`` instead of uniform, so shard
                boundaries land where the demand actually is.

        Raises:
            ValueError: on a non-positive shard count, a rectangle with
                fewer cells than shards, or a cell count beyond the
                dense-table bound.
        """
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        projection = LocalProjection(*reference)
        xs = np.array([bounds.min_x, bounds.max_x], dtype=float)
        ys = np.array([bounds.min_y, bounds.max_y], dtype=float)
        lats, lons = projection.to_geo_vec(xs, ys)
        if precision is None:
            precision = 1
            while precision < 12:
                lat_idx, lon_idx = cell_indices_many(lats, lons, precision)
                n_cells = (int(lat_idx[1] - lat_idx[0]) + 1) * (
                    int(lon_idx[1] - lon_idx[0]) + 1
                )
                if n_cells >= max(8 * n_shards, 16):
                    break
                precision += 1
        lat_idx, lon_idx = cell_indices_many(lats, lons, precision)
        origin = (int(lat_idx[0]), int(lon_idx[0]))
        shape = (int(lat_idx[1] - lat_idx[0]) + 1, int(lon_idx[1] - lon_idx[0]) + 1)
        n_cells = shape[0] * shape[1]
        if n_cells < n_shards:
            raise ValueError(
                f"{n_cells} cells at precision {precision} cannot host "
                f"{n_shards} shards — lower the precision or the shard count"
            )
        if n_cells > _MAX_PLAN_CELLS:
            raise ValueError(
                f"{n_cells} cells exceed the plan bound {_MAX_PLAN_CELLS}; "
                "use a coarser precision"
            )

        rows, cols = np.divmod(np.arange(n_cells, dtype=np.int64), shape[1])
        codes = _interleave(rows + origin[0], cols + origin[1], precision)
        order = np.argsort(codes, kind="stable")

        weights = np.ones(n_cells, dtype=np.int64)
        if demand is not None:
            demand = np.asarray(demand, dtype=float)
            d_lats, d_lons = projection.to_geo_vec(demand[:, 0], demand[:, 1])
            d_lat, d_lon = cell_indices_many(d_lats, d_lons, precision)
            r = np.clip(d_lat - origin[0], 0, shape[0] - 1)
            c = np.clip(d_lon - origin[1], 0, shape[1] - 1)
            np.add.at(weights, r * shape[1] + c, 1)

        table_flat = np.empty(n_cells, dtype=np.int64)
        ordered_weights = weights[order]
        total = int(ordered_weights.sum())
        cum = 0
        shard = 0
        for pos in range(n_cells):
            remaining_cells = n_cells - pos
            remaining_shards = n_shards - shard
            # Never let the tail run out of cells for the shards left.
            if remaining_cells == remaining_shards and shard < n_shards - 1:
                table_flat[order[pos]] = shard
                shard += 1
                continue
            table_flat[order[pos]] = min(shard, n_shards - 1)
            cum += int(ordered_weights[pos])
            if shard < n_shards - 1 and cum * n_shards >= (shard + 1) * total:
                shard += 1
        return cls(
            ref_lat=float(reference[0]),
            ref_lon=float(reference[1]),
            precision=precision,
            origin=origin,
            shape=shape,
            cell_shards=table_flat.reshape(shape),
            n_shards=n_shards,
        )

    # ------------------------------------------------------------------
    # routing kernels
    def cell_index_of_many(self, xs, ys) -> Tuple[np.ndarray, np.ndarray]:
        """Rectangle-local ``(row, col)`` cell indices of planar points.

        Points outside the rectangle clamp to its edge cells; non-finite
        coordinates land in the south-west cell.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        lats, lons = self._projection.to_geo_vec(xs, ys)
        lat_idx, lon_idx = cell_indices_many(lats, lons, self.precision)
        rows = np.clip(lat_idx - self.origin[0], 0, self.shape[0] - 1)
        cols = np.clip(lon_idx - self.origin[1], 0, self.shape[1] - 1)
        return rows, cols

    def shard_of_many(self, xs, ys) -> np.ndarray:
        """Vectorized shard ids for planar coordinate columns."""
        rows, cols = self.cell_index_of_many(xs, ys)
        return self.cell_shards[rows, cols]

    def shard_of(self, point: Point) -> int:
        """Shard id of one planar point — the length-1 vectorized kernel,
        so scalar and columnar routing are the same arithmetic."""
        return int(self.shard_of_many(np.array([point.x]), np.array([point.y]))[0])

    def boundary_of_many(self, xs, ys) -> np.ndarray:
        """Boolean mask: does each point fall in a boundary cell (one
        whose 8-neighbourhood crosses into another shard)?"""
        rows, cols = self.cell_index_of_many(xs, ys)
        return self._boundary[rows, cols]

    def touches_shard(self, xs, ys, shard: int) -> np.ndarray:
        """Boolean mask: is each point's cell adjacent to (or inside a
        cell bordering) ``shard``'s territory while belonging to another
        shard?  Used to pick which foreign stations enter a halo."""
        rows, cols = self.cell_index_of_many(xs, ys)
        table = self.cell_shards
        own = table[rows, cols] == shard
        near = np.zeros(rows.shape, dtype=bool)
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                r = np.clip(rows + dr, 0, self.shape[0] - 1)
                c = np.clip(cols + dc, 0, self.shape[1] - 1)
                near |= table[r, c] == shard
        return near & ~own

    # ------------------------------------------------------------------
    # inspection
    def cells_of_shard(self, shard: int) -> List[str]:
        """Geohash strings of every cell a shard owns, in Morton order."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard out of range: {shard}")
        rows, cols = np.nonzero(self.cell_shards == shard)
        codes = _interleave(
            rows.astype(np.int64) + self.origin[0],
            cols.astype(np.int64) + self.origin[1],
            self.precision,
        )
        order = np.argsort(codes, kind="stable")
        return [
            cell_code(int(rows[i]) + self.origin[0], int(cols[i]) + self.origin[1], self.precision)
            for i in order
        ]

    def counts(self) -> List[int]:
        """Cells per shard, by shard id."""
        return np.bincount(
            self.cell_shards.ravel(), minlength=self.n_shards
        ).tolist()

    # ------------------------------------------------------------------
    # persistence
    def state_dict(self) -> Dict[str, Any]:
        """JSON-serialisable description (see :meth:`from_state`)."""
        return {
            "ref_lat": self.ref_lat,
            "ref_lon": self.ref_lon,
            "precision": self.precision,
            "origin": list(self.origin),
            "shape": list(self.shape),
            "cell_shards": self.cell_shards.ravel().tolist(),
            "n_shards": self.n_shards,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ShardPlan":
        """Rebuild a plan from :meth:`state_dict` output."""
        shape = tuple(int(v) for v in state["shape"])
        table = np.asarray(state["cell_shards"], dtype=np.int64).reshape(shape)
        return cls(
            ref_lat=float(state["ref_lat"]),
            ref_lon=float(state["ref_lon"]),
            precision=int(state["precision"]),
            origin=tuple(int(v) for v in state["origin"]),
            shape=shape,
            cell_shards=table,
            n_shards=int(state["n_shards"]),
        )


def _boundary_mask(table: np.ndarray) -> np.ndarray:
    """Cells whose 8-neighbourhood (clamped at the rectangle edge)
    contains a different shard."""
    mask = np.zeros(table.shape, dtype=bool)
    n_lat, n_lon = table.shape
    rows = np.arange(n_lat)[:, None]
    cols = np.arange(n_lon)[None, :]
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            r = np.clip(rows + dr, 0, n_lat - 1)
            c = np.clip(cols + dc, 0, n_lon - 1)
            mask |= table[r, c] != table
    return mask
