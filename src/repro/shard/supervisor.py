"""The fleet supervision tree: restart, quarantine, keep serving.

:class:`FleetSupervisor` wraps a :class:`~repro.shard.ShardedRuntime`
with the layer the roadmap's production fleet was missing: *who restarts
a dead shard, and what happens to input that kills it every time*.

Per epoch, every shard runs through a four-state health machine::

                 ┌────────────────────────────────────────────┐
                 │                (restart budget             │
                 ▼                  exhausted)                │
    healthy ─▶ degraded ─▶ quarantined ─▶ halted              │
       │   fault   │  block dead- │   ▲                       │
       │           │  lettered    │   └── recovery impossible ┘
       └── clean epoch: straight through, bit-identical to an
           unsupervised fleet

* **healthy** — the shard's first attempt is literally the
  unsupervised epoch task, so a fault-free supervised epoch is
  bit-identical (journal bytes, checkpoint state, outcomes) to
  :meth:`ShardedRuntime.serve`.
* **degraded** — the attempt failed (storage fault, worker crash,
  poisoned planner).  The supervisor backs off (seeded exponential
  backoff with jitter — drawn only on failures, so clean runs consume
  no randomness), repairs the shard's journal tail, rebuilds the
  runtime with ``recover()`` and re-serves the *whole* bucket from the
  start: order-id dedup screens everything the journal already holds,
  which makes restart-from-start both simple and exactly-once.
* **quarantined** — a block that failed ``poison_retries`` consecutive
  generations is dead-lettered with full provenance (shard, epoch,
  block index, order ids, how many were already durable, the error)
  and skipped thereafter; the shard serves everything else.
* **halted** — the restart budget is exhausted or recovery itself
  failed.  The shard keeps its durable state for an operator; the rest
  of the fleet keeps serving.

Fan-out faults are isolated per shard: multi-worker epochs wrap each
task in an error envelope, so one shard's exception no longer cancels
its siblings; a pool-level :class:`~repro.errors.WorkerCrashError`
(worker died, task timeout) drops every unfinished shard into in-process
supervised mode instead of failing the epoch.

After each epoch the supervisor persists its quarantine ledger
(``quarantine.jsonl``) and fleet incident log (``logs/incidents.jsonl``)
under the fleet root, and — when ``scrub_after_epoch`` is on — runs the
storage scrubber over the whole tree so silent corruption is found while
the previous good generation still exists.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..datasets.trips import TripRecord
from ..errors import WorkerCrashError
from ..guard.runtime import DEGRADED, HALTED, HEALTHY, GuardedRuntime, IncidentLog
from ..ioutil import atomic_write_text
from ..parallel.pool import ParallelRunner, TaskSpec
from ..resilience.scrub import ScrubReport, repair_journal_tail, scrub_tree
from .runtime import (
    ShardReport,
    ShardSpec,
    ShardedRuntime,
    _compute_referrals,
    _run_epoch_task,
    _shard_dir,
    build_shard_runtime,
)

__all__ = [
    "QUARANTINED",
    "QUARANTINE_FILE",
    "SupervisorConfig",
    "QuarantinedBlock",
    "SupervisedShardReport",
    "SupervisedOutcome",
    "FleetSupervisor",
]

#: Fourth health state the supervisor adds to healthy/degraded/halted.
QUARANTINED = "quarantined"

QUARANTINE_FILE = "quarantine.jsonl"
"""Fleet-root ledger of dead-lettered poison blocks."""

_HEALTH_RANK = {HEALTHY: 0, DEGRADED: 1, QUARANTINED: 2, HALTED: 3}


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry budgets and backoff policy of the supervision tree.

    Attributes:
        max_restarts: supervised generations a shard may consume per
            epoch before it is halted for the epoch.
        poison_retries: consecutive failed generations a single block
            may cause before it is quarantined (the K of the
            poison-block contract).
        backoff_base_s: base sleep before restart ``n`` (doubles per
            restart, capped; tests inject a no-op sleeper).
        backoff_cap_s: ceiling of the exponential backoff.
        seed: seed of the backoff jitter — drawn only on failures, so a
            clean epoch consumes no randomness.
        task_timeout_s: per-shard wall-clock limit on fanned-out first
            attempts (``workers > 1``); exceeding it is treated as a
            worker crash.  In-process attempts cannot be preempted.
        quarantine_keep: ledger rows retained in memory and on disk.
        incident_keep: fleet incident rows retained in memory.
        scrub_after_epoch: run the storage scrubber over the fleet tree
            at the end of every epoch (post-checkpoint).

    Raises:
        ValueError: on non-positive budgets or negative backoff.
    """

    max_restarts: int = 6
    poison_retries: int = 2
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 1.0
    seed: int = 0
    task_timeout_s: Optional[float] = None
    quarantine_keep: int = 10_000
    incident_keep: int = 10_000
    scrub_after_epoch: bool = True

    def __post_init__(self) -> None:
        if self.max_restarts <= 0:
            raise ValueError(f"max_restarts must be positive, got {self.max_restarts}")
        if self.poison_retries <= 0:
            raise ValueError(
                f"poison_retries must be positive, got {self.poison_retries}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff must be >= 0")
        if self.quarantine_keep <= 0 or self.incident_keep <= 0:
            raise ValueError("quarantine_keep and incident_keep must be positive")


@dataclass(frozen=True)
class QuarantinedBlock:
    """Full provenance of one dead-lettered poison block.

    Attributes:
        shard_id: shard the block kept crashing.
        epoch: supervisor epoch it was quarantined in.
        block_index: 0-based chunk index within the shard's bucket.
        order_ids: order ids of the block's trips.
        attempts: failed generations the block caused before quarantine.
        journaled: how many of its order ids were already durable in the
            shard's journal when the epoch ended (an intact prefix of a
            torn group commit is journaled — and therefore applied on
            recovery — even though the block as a whole was
            quarantined); ``-1`` when the shard halted and the count
            could not be taken.
        error: repr of the last exception the block caused.
    """

    shard_id: int
    epoch: int
    block_index: int
    order_ids: Tuple[int, ...]
    attempts: int
    journaled: int
    error: str

    def to_json(self) -> Dict:
        """The ledger row persisted to ``quarantine.jsonl``."""
        return {
            "shard_id": self.shard_id,
            "epoch": self.epoch,
            "block_index": self.block_index,
            "order_ids": list(self.order_ids),
            "attempts": self.attempts,
            "journaled": self.journaled,
            "error": self.error,
        }

    @classmethod
    def from_json(cls, row: Dict) -> "QuarantinedBlock":
        return cls(
            shard_id=int(row["shard_id"]),
            epoch=int(row["epoch"]),
            block_index=int(row["block_index"]),
            order_ids=tuple(int(o) for o in row["order_ids"]),
            attempts=int(row["attempts"]),
            journaled=int(row["journaled"]),
            error=str(row["error"]),
        )


@dataclass(frozen=True)
class SupervisedShardReport:
    """One shard's supervised outcome for one epoch.

    ``report`` is the underlying epoch report (the clean attempt's, or
    the final successful generation's); ``None`` when the shard ended
    the epoch halted.
    """

    shard_id: int
    state: str
    restarts: int
    quarantined: Tuple[QuarantinedBlock, ...]
    report: Optional[ShardReport]
    error: Optional[str] = None


@dataclass(frozen=True)
class SupervisedOutcome:
    """Aggregate of one supervised epoch (shard-id order)."""

    reports: Tuple[SupervisedShardReport, ...]
    quarantined: Tuple[QuarantinedBlock, ...]
    restarts: int
    scrub: Optional[ScrubReport] = None

    @property
    def health(self) -> str:
        worst = HEALTHY
        for r in self.reports:
            if _HEALTH_RANK[r.state] > _HEALTH_RANK[worst]:
                worst = r.state
        return worst

    @property
    def served(self) -> int:
        return sum(r.report.served for r in self.reports if r.report)

    @property
    def deadlettered(self) -> int:
        return sum(r.report.deadlettered for r in self.reports if r.report)

    @property
    def shed(self) -> int:
        return sum(r.report.shed for r in self.reports if r.report)

    @property
    def deferred(self) -> int:
        return sum(r.report.deferred for r in self.reports if r.report)


def _safe_id(trip: TripRecord) -> int:
    try:
        return int(trip.order_id)
    except (TypeError, ValueError):
        return -1


def _enveloped_epoch_task(*args) -> Tuple:
    """Fan-out envelope: a shard's exception becomes a value, so one
    failing shard no longer cancels its siblings' futures."""
    try:
        return ("ok", _run_epoch_task(*args))
    except Exception as exc:  # noqa: BLE001 — the envelope's whole point
        return ("fault", repr(exc))


class FleetSupervisor:
    """Self-healing supervision over a :class:`ShardedRuntime`.

    Args:
        fleet: the sharded runtime to supervise (fresh or recovered).
        config: retry budgets / backoff policy.
        sleep: backoff sleeper (tests inject a no-op).
        runtime_factory: shard-stack constructor used for supervised
            restarts; defaults to :func:`build_shard_runtime` (tests
            inject failing factories to exercise the halt path).
        runner_factory: ``(workers, task_timeout) -> ParallelRunner``
            override for the fan-out (tests inject crashing pools).
        pre_block_hook: test seam called as ``hook(shard_id, epoch,
            generation, block_index)`` before the clean attempt
            (``generation 0, block -1``) and before each supervised
            chunk; exceptions it raises are treated as shard faults.
            Forces in-process serving when set (hooks cannot cross the
            process boundary meaningfully).
    """

    def __init__(
        self,
        fleet: ShardedRuntime,
        config: Optional[SupervisorConfig] = None,
        sleep: Callable[[float], None] = time.sleep,
        runtime_factory: Callable[[ShardSpec, Path], GuardedRuntime] = build_shard_runtime,
        runner_factory: Optional[Callable] = None,
        pre_block_hook: Optional[Callable[[int, int, int, int], None]] = None,
    ) -> None:
        self.fleet = fleet
        self.config = config or SupervisorConfig()
        self._sleep = sleep
        self._factory = runtime_factory
        self._runner_factory = runner_factory or (
            lambda workers, timeout: ParallelRunner(
                workers=workers, task_timeout=timeout
            )
        )
        self._hook = pre_block_hook
        self._rng = np.random.default_rng(self.config.seed)
        self.incidents = IncidentLog(keep=self.config.incident_keep)
        self.quarantine: List[QuarantinedBlock] = []
        self.health: Dict[int, str] = {
            sid: HEALTHY for sid in range(fleet.plan.n_shards)
        }
        self.epoch = 0
        self.total_restarts = 0
        self._load_quarantine()

    # ------------------------------------------------------------------
    # ledgers
    def _quarantine_path(self) -> Path:
        return self.fleet.directory / QUARANTINE_FILE

    def _load_quarantine(self) -> None:
        path = self._quarantine_path()
        if not path.exists():
            return
        rows: List[QuarantinedBlock] = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                rows.append(QuarantinedBlock.from_json(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                continue  # torn line — the scrubber cleans these up
        self.quarantine = rows
        if rows:
            self.epoch = max(r.epoch for r in rows)

    def _save_quarantine(self) -> None:
        rows = self.quarantine[-self.config.quarantine_keep:]
        payload = "".join(json.dumps(r.to_json()) + "\n" for r in rows)
        atomic_write_text(
            self._quarantine_path(), payload, durable=self.fleet.durable
        )

    def _incident(self, kind: str, detail: str) -> None:
        self.incidents.add(self.epoch, kind, detail)

    def _flush_incidents(self) -> None:
        logs = self.fleet.directory / "logs"
        logs.mkdir(parents=True, exist_ok=True)
        self.incidents.append_jsonl(
            logs / "incidents.jsonl", durable=self.fleet.durable
        )

    # ------------------------------------------------------------------
    def _backoff(self, restarts: int) -> None:
        base = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * (2 ** max(0, restarts - 1)),
        )
        if base > 0:
            # Jitter in [1, 2): restarting shards never sync up.  Drawn
            # only here, so fault-free epochs consume no randomness.
            self._sleep(base * (1.0 + float(self._rng.uniform())))
        else:
            self._sleep(0.0)

    # ------------------------------------------------------------------
    def serve(
        self,
        trips: Sequence[TripRecord],
        workers: int = 1,
        block_size: Optional[int] = None,
        checkpoint: bool = True,
    ) -> SupervisedOutcome:
        """Run one supervised epoch across the fleet.

        Mirrors :meth:`ShardedRuntime.serve` — same routing, same halo
        update — but no shard fault can fail the epoch: faulted shards
        are restarted under budget, poison blocks are quarantined, and
        only a shard that exhausts its budget ends the epoch halted
        (the rest keep their results).
        """
        self.epoch += 1
        cfg = self.config
        buckets = self.fleet.router.split_trips(trips)
        active = [sid for sid, bucket in enumerate(buckets) if bucket]
        results: Dict[int, SupervisedShardReport] = {}
        epoch_quarantined: List[QuarantinedBlock] = []
        epoch_restarts = 0

        # -- first attempt: the unsupervised epoch task, enveloped ------
        pending: List[Tuple[int, Optional[str]]] = []
        if workers > 1 and self._hook is None and len(active) > 1:
            tasks = [
                TaskSpec(
                    fn=_enveloped_epoch_task,
                    args=self._task_args(sid, buckets[sid], block_size, checkpoint),
                    label=f"shard-{sid:03d}",
                )
                for sid in active
            ]
            runner = self._runner_factory(
                min(workers, len(tasks)), cfg.task_timeout_s
            )
            try:
                envelopes = runner.run(tasks)
            except WorkerCrashError as exc:
                # The pool itself broke: no envelope can be trusted, so
                # every shard falls back to in-process supervision.
                self._incident("worker_crash", f"epoch {self.epoch}: {exc!r}")
                pending = [(sid, repr(exc)) for sid in active]
            else:
                for sid, env in zip(active, envelopes):
                    if env[0] == "ok":
                        results[sid] = self._clean_result(sid, env[1])
                    else:
                        self._incident(
                            "shard_fault", f"shard {sid} first attempt: {env[1]}"
                        )
                        pending.append((sid, env[1]))
        else:
            for sid in active:
                try:
                    if self._hook is not None:
                        self._hook(sid, self.epoch, 0, -1)
                    report = _run_epoch_task(
                        *self._task_args(sid, buckets[sid], block_size, checkpoint)
                    )
                except Exception as exc:  # noqa: BLE001 — supervision boundary
                    self._incident(
                        "shard_fault", f"shard {sid} first attempt: {exc!r}"
                    )
                    pending.append((sid, repr(exc)))
                else:
                    results[sid] = self._clean_result(sid, report)

        # -- supervised mode for everything that failed -----------------
        for sid, first_error in pending:
            supervised, restarts = self._supervise_shard(
                sid, buckets[sid], block_size, checkpoint, first_error
            )
            results[sid] = supervised
            epoch_restarts += restarts
            epoch_quarantined.extend(supervised.quarantined)

        # -- merge: halo, health, ledgers -------------------------------
        ordered = tuple(results[sid] for sid in sorted(results))
        for supervised in ordered:
            self.health[supervised.shard_id] = supervised.state
            if supervised.report is not None and supervised.report.stations:
                self.fleet._stations[supervised.shard_id] = [
                    (i, x, y) for i, x, y in supervised.report.stations
                ]
        self.fleet._save_halo()
        self.quarantine.extend(epoch_quarantined)
        self.total_restarts += epoch_restarts
        self._save_quarantine()
        self._flush_incidents()
        scrub = None
        if cfg.scrub_after_epoch:
            scrub = scrub_tree(
                self.fleet.directory, repair=True, durable=self.fleet.durable
            )
            if not scrub.clean:
                self._incident(
                    "scrub",
                    f"epoch {self.epoch}: {scrub.repaired} repaired, "
                    f"{scrub.refused} refused",
                )
                self._flush_incidents()
        return SupervisedOutcome(
            reports=ordered,
            quarantined=tuple(epoch_quarantined),
            restarts=epoch_restarts,
            scrub=scrub,
        )

    # ------------------------------------------------------------------
    def _task_args(self, sid, bucket, block_size, checkpoint) -> Tuple:
        return (
            self.fleet.spec(sid),
            self.fleet.plan.state_dict(),
            str(_shard_dir(self.fleet.directory, sid)),
            bucket,
            self.fleet._halo_for(sid),
            block_size,
            checkpoint,
        )

    def _clean_result(self, sid: int, report: ShardReport) -> SupervisedShardReport:
        return SupervisedShardReport(
            shard_id=sid,
            state=report.health,
            restarts=0,
            quarantined=(),
            report=report,
        )

    def _supervise_shard(
        self,
        sid: int,
        bucket: List[TripRecord],
        block_size: Optional[int],
        checkpoint: bool,
        first_error: Optional[str],
    ) -> Tuple[SupervisedShardReport, int]:
        """Restart-with-recover loop for one faulted shard.

        Each generation: backoff → repair the journal tail → rebuild via
        ``recover()`` → re-serve the whole bucket chunk by chunk (dedup
        screens what the journal already holds), skipping quarantined
        chunks.  A chunk failing ``poison_retries`` generations is
        quarantined.  Success finishes the stream, checkpoints, flushes
        logs; budget exhaustion halts the shard for the epoch.
        """
        cfg = self.config
        spec = self.fleet.spec(sid)
        sdir = _shard_dir(self.fleet.directory, sid)
        size = block_size if block_size is not None else spec.guard_config().block_size
        chunks = [bucket[lo: lo + size] for lo in range(0, len(bucket), size)]
        quarantined_idx: set = set()
        attempts_by_block: Dict[int, int] = {}
        quarantine_info: Dict[int, Dict] = {}
        restarts = 0
        last_error = first_error
        runtime: Optional[GuardedRuntime] = None
        outcomes: List = []
        offered_before = 0
        while restarts < cfg.max_restarts:
            restarts += 1
            self._backoff(restarts)
            try:
                for finding in repair_journal_tail(
                    sdir / "journal.jsonl", durable=spec.durable
                ):
                    self._incident(
                        "journal_repair", f"shard {sid}: {finding.detail}"
                    )
                    if finding.action == "refused":
                        raise RuntimeError(
                            f"journal unrepairable: {finding.detail}"
                        )
                runtime = self._factory(spec, sdir)
            except Exception as exc:  # noqa: BLE001 — recovery itself failed
                last_error = repr(exc)
                self._incident(
                    "recovery_failed",
                    f"shard {sid} restart {restarts}: {exc!r}",
                )
                runtime = None
                continue
            outcomes = []
            offered_before = runtime.validator.offered
            failed_at: Optional[int] = None
            for idx, chunk in enumerate(chunks):
                if idx in quarantined_idx:
                    continue
                try:
                    if self._hook is not None:
                        self._hook(sid, self.epoch, restarts, idx)
                    outcomes.extend(runtime.ingest_many(chunk, block_size=size))
                except Exception as exc:  # noqa: BLE001 — supervision boundary
                    last_error = repr(exc)
                    failed_at = idx
                    count = attempts_by_block.get(idx, 0) + 1
                    attempts_by_block[idx] = count
                    self._incident(
                        "shard_fault",
                        f"shard {sid} restart {restarts} block {idx} "
                        f"(attempt {count}/{cfg.poison_retries}): {exc!r}",
                    )
                    if count >= cfg.poison_retries:
                        quarantined_idx.add(idx)
                        quarantine_info[idx] = {
                            "attempts": count,
                            "error": repr(exc),
                            "order_ids": tuple(_safe_id(t) for t in chunk),
                        }
                        self._incident(
                            "quarantine",
                            f"shard {sid} block {idx} quarantined after "
                            f"{count} attempt(s): {exc!r}",
                        )
                    break
            if failed_at is not None:
                self._close_quietly(runtime)
                runtime = None
                continue
            try:
                outcomes.extend(runtime.finish())
                runtime.consistency_check()
                if checkpoint and not runtime.halted:
                    runtime.inner.checkpoint()
                runtime.flush_logs(sdir / "logs", durable=spec.durable)
            except Exception as exc:  # noqa: BLE001 — end-of-epoch fault
                last_error = repr(exc)
                self._incident(
                    "shard_fault",
                    f"shard {sid} restart {restarts} epoch finish: {exc!r}",
                )
                self._close_quietly(runtime)
                runtime = None
                continue
            break
        if runtime is None:
            # Budget exhausted (or recovery terminally failed): halted.
            self._incident(
                "halt",
                f"shard {sid} halted after {restarts} restart(s): {last_error}",
            )
            rows = tuple(
                QuarantinedBlock(
                    shard_id=sid,
                    epoch=self.epoch,
                    block_index=idx,
                    order_ids=info["order_ids"],
                    attempts=info["attempts"],
                    journaled=-1,
                    error=info["error"],
                )
                for idx, info in sorted(quarantine_info.items())
            )
            return (
                SupervisedShardReport(
                    shard_id=sid,
                    state=HALTED,
                    restarts=restarts,
                    quarantined=rows,
                    report=None,
                    error=last_error,
                ),
                restarts,
            )
        report = self._final_report(
            sid, spec, bucket, runtime, outcomes, offered_before
        )
        seen = runtime.inner._seen
        rows = tuple(
            QuarantinedBlock(
                shard_id=sid,
                epoch=self.epoch,
                block_index=idx,
                order_ids=info["order_ids"],
                attempts=info["attempts"],
                journaled=sum(1 for oid in info["order_ids"] if oid in seen),
                error=info["error"],
            )
            for idx, info in sorted(quarantine_info.items())
        )
        runtime.close()
        state = QUARANTINED if rows else (
            DEGRADED if report.health == HEALTHY else report.health
        )
        return (
            SupervisedShardReport(
                shard_id=sid,
                state=state,
                restarts=restarts,
                quarantined=rows,
                report=report,
                error=last_error,
            ),
            restarts,
        )

    def _final_report(
        self,
        sid: int,
        spec: ShardSpec,
        bucket: List[TripRecord],
        runtime: GuardedRuntime,
        outcomes: Sequence,
        offered_before: int,
    ) -> ShardReport:
        """Epoch report from the final successful generation.

        Counters are the final generation's own (internally consistent:
        trips served in crashed generations re-arrive as duplicates).
        Referrals are computed from this generation's served responses
        only — trips that became duplicates across the restart lose
        their advisory referral, never their journaled decision.
        """
        outcomes = tuple(outcomes)
        referrals = _compute_referrals(
            spec,
            self.fleet.plan,
            bucket,
            outcomes,
            self.fleet._halo_for(sid),
        )
        store = runtime.inner.service.planner.station_set
        stations = tuple(
            (int(s), float(store.location(s).x), float(store.location(s).y))
            for s in store.ids()
        )
        return ShardReport(
            shard_id=sid,
            offered=runtime.validator.offered - offered_before,
            served=runtime.served,
            duplicates=runtime.duplicates,
            deadlettered=runtime.sink.total,
            degraded=len(runtime.degraded_decisions),
            incidents=runtime.incidents.total,
            health=runtime.health,
            applied_seq=runtime.inner.applied_seq,
            outcomes=outcomes,
            referrals=tuple(referrals),
            stations=stations,
            shed=runtime.overload.shed if runtime.overload is not None else 0,
            deferred=len(runtime.deferred_decisions),
        )

    @staticmethod
    def _close_quietly(runtime: Optional[GuardedRuntime]) -> None:
        if runtime is None:
            return
        try:
            runtime.close()
        except Exception:  # noqa: BLE001 — already failing
            pass

    # ------------------------------------------------------------------
    def scrub(self, repair: bool = True) -> ScrubReport:
        """Run the storage scrubber over the fleet tree on demand."""
        return scrub_tree(
            self.fleet.directory, repair=repair, durable=self.fleet.durable,
            record=repair,
        )

    def health_summary(self) -> str:
        """One line per shard — the operator/CI view."""
        lines = []
        for sid in sorted(self.health):
            blocks = sum(1 for q in self.quarantine if q.shard_id == sid)
            extra = f", {blocks} quarantined block(s)" if blocks else ""
            lines.append(f"shard {sid:03d}: {self.health[sid]}{extra}")
        return "\n".join(lines)

    @classmethod
    def recover(
        cls,
        directory: Union[str, Path],
        config: Optional[SupervisorConfig] = None,
        **kwargs,
    ) -> "FleetSupervisor":
        """Rebuild a supervised fleet from its root directory.

        Recovers the :class:`ShardedRuntime` from ``shardplan.json`` and
        reloads the quarantine ledger, so previously dead-lettered
        blocks stay dead-lettered across process restarts.
        """
        fleet = ShardedRuntime.recover(directory)
        return cls(fleet, config=config, **kwargs)
