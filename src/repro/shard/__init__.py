"""Geo-sharded multi-city runtime: partition, route, fan out, recover.

The horizontal-scale layer over the guarded online tier.  A
:class:`ShardPlan` carves the plane into geohash-prefix territories, a
:class:`ShardRouter` splits trip streams by destination cell with the
within-shard order preserved, and a :class:`ShardedRuntime` runs one
independently checkpointed guarded runtime per territory — own WAL, own
snapshots, own breakers — fanning epochs out over the deterministic
process pool and replaying each shard's journal independently on
recovery.  Serving a territory inside an N-shard fleet is bit-identical
to serving it standalone; boundary trips additionally carry advisory
cross-shard referrals computed against a read-only halo of neighbouring
edge stations.

:class:`FleetSupervisor` is the self-healing layer above the fleet: a
per-shard health machine (healthy / degraded / quarantined / halted)
that restarts crashed shards from their own durable state under a
seeded-backoff retry budget, dead-letters poison blocks with full
provenance, and scrubs the fleet's storage tree after every epoch.
"""

from .plan import DEFAULT_REFERENCE, ShardPlan
from .router import ShardRouter
from .runtime import (
    HALO_FILE,
    PLAN_FILE,
    CrossShardReferral,
    ShardReport,
    ShardSpec,
    ShardedRuntime,
    ShardedServeOutcome,
    build_shard_runtime,
)
from .supervisor import (
    QUARANTINE_FILE,
    QUARANTINED,
    FleetSupervisor,
    QuarantinedBlock,
    SupervisedOutcome,
    SupervisedShardReport,
    SupervisorConfig,
)

__all__ = [
    "DEFAULT_REFERENCE",
    "ShardPlan",
    "ShardRouter",
    "PLAN_FILE",
    "HALO_FILE",
    "QUARANTINE_FILE",
    "QUARANTINED",
    "ShardSpec",
    "ShardReport",
    "CrossShardReferral",
    "ShardedServeOutcome",
    "ShardedRuntime",
    "build_shard_runtime",
    "FleetSupervisor",
    "SupervisorConfig",
    "QuarantinedBlock",
    "SupervisedShardReport",
    "SupervisedOutcome",
]
