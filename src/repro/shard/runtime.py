"""The geo-sharded runtime: N independent guarded shards, one city.

:class:`ShardedRuntime` turns the single-city guarded stack into a
horizontally partitioned deployment.  A :class:`~repro.shard.plan.ShardPlan`
assigns every geohash cell to a shard; each shard is a full
:class:`~repro.guard.runtime.GuardedRuntime` over its own
:class:`~repro.resilience.CheckpointingService` — its own write-ahead
journal, its own snapshot generations, its own breakers and incident
log — living in ``<root>/shard-NNN/``.  Shards share *nothing* mutable:
a crash, halt or self-heal in one territory cannot touch another.

**Serving model.**  Each :meth:`ShardedRuntime.serve` call is an epoch:
the stream is split by destination cell
(:class:`~repro.shard.router.ShardRouter`, order preserved per shard),
every shard with traffic runs *build-or-recover → serve → checkpoint →
close* as a self-contained task, and the tasks fan out over
:class:`~repro.parallel.ParallelRunner` (``workers <= 1`` short-circuits
to in-process serial execution — the reference path fan-out is compared
against).  Task results merge in shard order, never completion order,
so multi-worker epochs are bit-identical to serial ones.

**Determinism contract.**  Each shard's planner is built from the same
recipe (:class:`ShardSpec`) whether it runs inside an N-shard fleet or
standalone: anchors and historical demand filtered to its territory,
per-shard RNG spawned from the root seed in shard-id order
(``SeedSequence.spawn`` — independent of worker scheduling).  Serving a
territory as one shard of a fleet is therefore bit-identical — same
responses, same journal bytes, same checkpoint state — to serving that
territory alone, which is the interior-trip guarantee the parity suite
pins at 2/4/8 shards.

**Halo replication.**  Trips ending in a *boundary* cell (one whose
8-neighbourhood crosses into another shard) may have a closer parking
just over the edge.  Each epoch ships every shard a read-only halo: the
edge stations its neighbours reported at the end of the previous epoch
(anchors at genesis).  After the shard's own journaled decision, the
halo is consulted for a nearer foreign station; a hit is recorded as a
:class:`CrossShardReferral` *alongside* the decision — never instead of
it.  Referrals stay outside the journal (like degraded decisions), so
halo staleness can cost a referral but can never fork a shard's
recoverable history.

**Recovery.**  The plan and build recipe persist in
``shardplan.json``; :meth:`ShardedRuntime.recover` reloads them and each
shard replays its own snapshot + journal tail independently — a dead
shard recovers without touching its neighbours' state.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.costs import constant_facility_cost
from ..core.esharing import EsharingConfig, EsharingPlanner
from ..core.streaming import PlacementService, ServiceResponse
from ..datasets.trips import TripRecord
from ..energy.fleet import Fleet
from ..geo.points import BoundingBox, Point
from ..guard.breakers import BreakerConfig
from ..guard.overload import LadderConfig, OverloadConfig
from ..guard.runtime import HALTED, DEGRADED, HEALTHY, GuardConfig, GuardedRuntime
from ..guard.validation import ValidationConfig
from ..ioutil import atomic_write_text
from ..parallel.pool import ParallelRunner, TaskSpec
from ..resilience.service import CheckpointingService, constant_cost_spec
from .plan import ShardPlan
from .router import ShardRouter

__all__ = [
    "PLAN_FILE",
    "HALO_FILE",
    "ShardSpec",
    "ShardReport",
    "CrossShardReferral",
    "ShardedServeOutcome",
    "ShardedRuntime",
    "build_shard_runtime",
]

PLAN_FILE = "shardplan.json"
"""Root-directory file holding the plan and the shard build recipe."""

HALO_FILE = "halo.json"
"""Root-directory file holding each shard's last-reported stations."""


def _shard_dir(root: Path, shard_id: int) -> Path:
    return root / f"shard-{shard_id:03d}"


# ----------------------------------------------------------------------
# GuardConfig <-> JSON state (persisted in shardplan.json so recover()
# rebuilds byte-identical shard behaviour without caller help).
def _guard_to_state(config: GuardConfig) -> Dict[str, Any]:
    state = asdict(config)
    validation = state["validation"]
    bounds = validation["bounds"]
    if bounds is not None:
        validation["bounds"] = [
            bounds["min_x"], bounds["min_y"], bounds["max_x"], bounds["max_y"]
        ]
    validation["battery_range"] = list(validation["battery_range"])
    return state


def _guard_from_state(state: Dict[str, Any]) -> GuardConfig:
    state = dict(state)
    validation = dict(state.pop("validation"))
    bounds = validation.pop("bounds")
    battery = validation.pop("battery_range")
    breaker = BreakerConfig(**state.pop("breaker"))
    # Plans written before the overload layer existed lack the key.
    overload_state = state.pop("overload", None)
    overload = None
    if overload_state is not None:
        overload_state = dict(overload_state)
        ladder = LadderConfig(**overload_state.pop("ladder"))
        overload = OverloadConfig(ladder=ladder, **overload_state)
    config = ValidationConfig(
        bounds=None if bounds is None else BoundingBox(*bounds),
        battery_range=tuple(battery),
        **validation,
    )
    return GuardConfig(
        validation=config, breaker=breaker, overload=overload, **state
    )


@dataclass(frozen=True)
class ShardSpec:
    """The complete, picklable build recipe of one shard's stack.

    Everything a worker process (or a standalone parity oracle) needs to
    construct the shard's guarded runtime bit-identically: territory
    anchors and historical demand, the derived fleet share, the root
    seed the per-shard entropy is spawned from, and the guard policy.
    """

    shard_id: int
    n_shards: int
    seed: int
    anchors: Tuple[Tuple[float, float], ...]
    historical: Tuple[Tuple[float, float], ...]
    n_bikes: int
    cost_value: float
    beta: float
    history_window: int
    checkpoint_every: int
    keep: int
    durable: bool
    guard_state: Dict[str, Any]

    def guard_config(self) -> GuardConfig:
        """The shard's :class:`GuardConfig`, rebuilt from its JSON form."""
        return _guard_from_state(self.guard_state)


@dataclass(frozen=True)
class CrossShardReferral:
    """A boundary trip for which a neighbouring shard's halo station is
    closer than the home shard's own assignment.

    Advisory only: the home shard's journaled decision stands; the
    referral annotates it with the nearer foreign option.

    Attributes:
        order_id: the trip.
        home_shard: shard that served the trip.
        station_shard: shard owning the closer station.
        station_id: that shard's stable station id.
        walking_m: walking distance to the foreign station.
        saved_m: improvement over the home assignment's walking
            distance.
    """

    order_id: int
    home_shard: int
    station_shard: int
    station_id: int
    walking_m: float
    saved_m: float


@dataclass(frozen=True)
class ShardReport:
    """One shard's result for one serve epoch.

    ``outcomes`` is exactly what the shard's
    :meth:`~repro.guard.runtime.GuardedRuntime.serve` returned —
    :class:`~repro.core.streaming.ServiceResponse`, ``None`` (screened
    duplicate) or :class:`~repro.guard.runtime.DegradedDecision` per
    emitted event; ``stations`` is the post-epoch station roster other
    shards receive as halo at the next epoch.
    """

    shard_id: int
    offered: int
    served: int
    duplicates: int
    deadlettered: int
    degraded: int
    incidents: int
    health: str
    applied_seq: int
    outcomes: Tuple
    referrals: Tuple[CrossShardReferral, ...]
    stations: Tuple[Tuple[int, float, float], ...]
    shed: int = 0
    deferred: int = 0


@dataclass(frozen=True)
class ShardedServeOutcome:
    """Aggregate of one epoch across every shard (shard-id order)."""

    reports: Tuple[ShardReport, ...]
    referrals: Tuple[CrossShardReferral, ...]

    @property
    def served(self) -> int:
        return sum(r.served for r in self.reports)

    @property
    def duplicates(self) -> int:
        return sum(r.duplicates for r in self.reports)

    @property
    def deadlettered(self) -> int:
        return sum(r.deadlettered for r in self.reports)

    @property
    def degraded(self) -> int:
        return sum(r.degraded for r in self.reports)

    @property
    def shed(self) -> int:
        return sum(r.shed for r in self.reports)

    @property
    def deferred(self) -> int:
        return sum(r.deferred for r in self.reports)

    @property
    def health(self) -> str:
        states = {r.health for r in self.reports}
        if HALTED in states:
            return HALTED
        if DEGRADED in states:
            return DEGRADED
        return HEALTHY


# ----------------------------------------------------------------------
def build_shard_runtime(
    spec: ShardSpec, directory: Union[str, Path]
) -> GuardedRuntime:
    """Construct (or recover) one shard's guarded stack from its recipe.

    A fresh directory gets a brand-new service with the genesis
    snapshot; a populated one recovers snapshot + journal tail.  Both
    paths end in the identical in-memory stack, which is what makes
    epoch-based serving safe: *recover → serve* continues the exact
    history *build → serve* started.

    This function is also the parity oracle's constructor: a standalone
    single-shard deployment of the same territory is literally
    ``build_shard_runtime(spec, somewhere_else)``.
    """
    directory = Path(directory)
    config = spec.guard_config()
    cost = constant_facility_cost(spec.cost_value)
    if directory.exists() and any(directory.iterdir()):
        return GuardedRuntime.recover(
            directory,
            config=config,
            facility_cost=cost,
            checkpoint_every=spec.checkpoint_every,
            keep=spec.keep,
            durable=spec.durable,
        )
    # Per-shard entropy: spawned from the root seed in shard-id order,
    # so shard i's RNG stream is the same for every worker schedule and
    # every fleet size that contains it with the same id.
    child = np.random.SeedSequence(spec.seed).spawn(spec.n_shards)[spec.shard_id]
    planner_seed, fleet_seed = child.spawn(2)
    planner = EsharingPlanner(
        [Point(x, y) for x, y in spec.anchors],
        cost,
        np.asarray(spec.historical, dtype=float).reshape(-1, 2),
        np.random.default_rng(planner_seed),
        EsharingConfig(beta=spec.beta, history_window=spec.history_window),
    )
    fleet = Fleet(planner.stations, n_bikes=spec.n_bikes, rng=np.random.default_rng(fleet_seed))
    inner = CheckpointingService(
        PlacementService(planner, fleet),
        directory,
        checkpoint_every=spec.checkpoint_every,
        keep=spec.keep,
        durable=spec.durable,
        facility_cost_spec=constant_cost_spec(spec.cost_value),
    )
    return GuardedRuntime(inner, config, facility_cost=cost)


def _compute_referrals(
    spec: ShardSpec,
    plan: ShardPlan,
    trips: Sequence[TripRecord],
    outcomes: Sequence,
    halo: Sequence[Tuple[int, int, float, float]],
) -> List[CrossShardReferral]:
    """Nearest-neighbour queries across the shard edge, halo-side.

    Only served responses whose destination falls in a boundary cell are
    eligible; the foreign station must be strictly closer than the home
    assignment's walking distance.
    """
    if not halo:
        return []
    ends: Dict[int, Tuple[float, float]] = {}
    for t in trips:
        try:
            ends[t.order_id] = (float(t.end.x), float(t.end.y))
        except (TypeError, ValueError):
            continue
    halo_shards = np.array([h[0] for h in halo], dtype=np.int64)
    halo_ids = np.array([h[1] for h in halo], dtype=np.int64)
    halo_x = np.array([h[2] for h in halo], dtype=float)
    halo_y = np.array([h[3] for h in halo], dtype=float)
    referrals: List[CrossShardReferral] = []
    for outcome in outcomes:
        if not isinstance(outcome, ServiceResponse) or not outcome.served:
            continue
        end = ends.get(outcome.order_id)
        if end is None:
            continue
        if not bool(plan.boundary_of_many([end[0]], [end[1]])[0]):
            continue
        dists = np.hypot(halo_x - end[0], halo_y - end[1])
        best = int(np.argmin(dists))
        if float(dists[best]) < outcome.walking_m:
            referrals.append(
                CrossShardReferral(
                    order_id=outcome.order_id,
                    home_shard=spec.shard_id,
                    station_shard=int(halo_shards[best]),
                    station_id=int(halo_ids[best]),
                    walking_m=float(dists[best]),
                    saved_m=float(outcome.walking_m - dists[best]),
                )
            )
    return referrals


class ShardedRuntime:
    """N independently durable guarded shards behind one serving API.

    Args:
        plan: the cell-to-shard territory assignment.
        directory: root checkpoint directory; each shard lives in
            ``shard-NNN/`` beneath it.  Must be fresh — resuming goes
            through :meth:`recover`.
        anchors: the city-wide offline anchor set; each shard receives
            the anchors inside its territory (every shard needs at
            least one).
        historical: city-wide ``(n, 2)`` historical destination sample;
            split by territory the same way (every shard needs at least
            one row — plan with ``demand=`` weights when in doubt).
        seed: root seed; per-shard entropy is spawned from it.
        n_bikes: city-wide fleet size, split across shards
            proportionally to their anchor counts (min 1).
        cost_value: constant facility opening cost (journaled in every
            shard snapshot, so recovery needs no callable).
        guard: guard policy applied to every shard.
        checkpoint_every / keep / durable: per-shard durability knobs.
        beta / history_window: planner configuration.

    Raises:
        ValueError: on a populated directory, a shard with no anchor or
            no historical demand.
    """

    def __init__(
        self,
        plan: ShardPlan,
        directory: Union[str, Path],
        anchors: Sequence[Point],
        historical: np.ndarray,
        seed: int = 0,
        n_bikes: int = 120,
        cost_value: float = 8000.0,
        guard: Optional[GuardConfig] = None,
        checkpoint_every: int = 500,
        keep: int = 3,
        durable: bool = True,
        beta: float = 2.0,
        history_window: int = 200,
        _resume: bool = False,
    ) -> None:
        self.plan = plan
        self.router = ShardRouter(plan)
        self.directory = Path(directory)
        self.guard = guard or GuardConfig()
        self.seed = int(seed)
        self.cost_value = float(cost_value)
        self.checkpoint_every = int(checkpoint_every)
        self.keep = int(keep)
        self.durable = bool(durable)
        self.beta = float(beta)
        self.history_window = int(history_window)
        self.anchors = [Point(float(p.x), float(p.y)) for p in anchors]
        self.historical = np.asarray(historical, dtype=float).reshape(-1, 2)
        self.n_bikes = int(n_bikes)

        anchor_sids = plan.shard_of_many(
            np.array([p.x for p in self.anchors]),
            np.array([p.y for p in self.anchors]),
        )
        hist_sids = plan.shard_of_many(self.historical[:, 0], self.historical[:, 1])
        self._shard_anchors: List[List[Tuple[float, float]]] = [
            [] for _ in range(plan.n_shards)
        ]
        for sid, p in zip(anchor_sids.tolist(), self.anchors):
            self._shard_anchors[sid].append((p.x, p.y))
        self._shard_hist: List[List[Tuple[float, float]]] = [
            [] for _ in range(plan.n_shards)
        ]
        for sid, row in zip(hist_sids.tolist(), self.historical.tolist()):
            self._shard_hist[sid].append((row[0], row[1]))
        for sid in range(plan.n_shards):
            if not self._shard_anchors[sid]:
                raise ValueError(
                    f"shard {sid} has no anchor station — refine the plan "
                    "(coarser precision, fewer shards, or demand weights)"
                )
            if not self._shard_hist[sid]:
                raise ValueError(
                    f"shard {sid} has no historical demand — plan with "
                    "demand= weights or provide a denser sample"
                )
        total_anchors = len(self.anchors)
        self._shard_bikes = [
            max(1, self.n_bikes * len(self._shard_anchors[sid]) // total_anchors)
            for sid in range(plan.n_shards)
        ]
        # Genesis halo: each territory's anchors under their genesis
        # station ids (StationSet ids are assigned in anchor order).
        self._stations: Dict[int, List[Tuple[int, float, float]]] = {
            sid: [
                (i, x, y) for i, (x, y) in enumerate(self._shard_anchors[sid])
            ]
            for sid in range(plan.n_shards)
        }

        if _resume:
            self._load_halo()
        else:
            if (self.directory / PLAN_FILE).exists():
                raise ValueError(
                    f"{self.directory} already holds a shard plan; use "
                    "ShardedRuntime.recover() to resume it"
                )
            self.directory.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                self.directory / PLAN_FILE,
                json.dumps(self._manifest(), sort_keys=True),
                durable=self.durable,
            )

    # ------------------------------------------------------------------
    def _manifest(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.state_dict(),
            "build": {
                "anchors": [[p.x, p.y] for p in self.anchors],
                "historical": self.historical.tolist(),
                "seed": self.seed,
                "n_bikes": self.n_bikes,
                "cost_value": self.cost_value,
                "checkpoint_every": self.checkpoint_every,
                "keep": self.keep,
                "durable": self.durable,
                "beta": self.beta,
                "history_window": self.history_window,
                "guard": _guard_to_state(self.guard),
            },
        }

    def spec(self, shard_id: int) -> ShardSpec:
        """The build recipe of one shard (also the parity oracle's)."""
        if not 0 <= shard_id < self.plan.n_shards:
            raise ValueError(f"shard out of range: {shard_id}")
        return ShardSpec(
            shard_id=shard_id,
            n_shards=self.plan.n_shards,
            seed=self.seed,
            anchors=tuple(self._shard_anchors[shard_id]),
            historical=tuple(tuple(r) for r in self._shard_hist[shard_id]),
            n_bikes=self._shard_bikes[shard_id],
            cost_value=self.cost_value,
            beta=self.beta,
            history_window=self.history_window,
            checkpoint_every=self.checkpoint_every,
            keep=self.keep,
            durable=self.durable,
            guard_state=_guard_to_state(self.guard),
        )

    def specs(self) -> List[ShardSpec]:
        """Build recipes for every shard, in shard-id order."""
        return [self.spec(sid) for sid in range(self.plan.n_shards)]

    # ------------------------------------------------------------------
    def _halo_for(self, shard_id: int) -> Tuple[Tuple[int, int, float, float], ...]:
        """Read-only edge stations of the *other* shards, as of the last
        completed epoch (anchors at genesis)."""
        rows: List[Tuple[int, int, float, float]] = []
        for sid, stations in sorted(self._stations.items()):
            if sid == shard_id or not stations:
                continue
            xs = np.array([s[1] for s in stations])
            ys = np.array([s[2] for s in stations])
            near = self.plan.touches_shard(xs, ys, shard_id)
            for keep, (station_id, x, y) in zip(near.tolist(), stations):
                if keep:
                    rows.append((sid, station_id, x, y))
        return tuple(rows)

    def _load_halo(self) -> None:
        path = self.directory / HALO_FILE
        if not path.exists():
            return
        data = json.loads(path.read_text())
        self._stations = {
            int(sid): [(int(i), float(x), float(y)) for i, x, y in rows]
            for sid, rows in data.items()
        }

    def _save_halo(self) -> None:
        payload = {
            str(sid): [[i, x, y] for i, x, y in rows]
            for sid, rows in sorted(self._stations.items())
        }
        atomic_write_text(
            self.directory / HALO_FILE,
            json.dumps(payload, sort_keys=True),
            durable=self.durable,
        )

    # ------------------------------------------------------------------
    def serve(
        self,
        trips: Sequence[TripRecord],
        workers: int = 1,
        block_size: Optional[int] = None,
        checkpoint: bool = True,
    ) -> ShardedServeOutcome:
        """Run one epoch of the city stream across the shard fleet.

        Args:
            trips: the arrival stream in arrival order.
            workers: worker processes for the fan-out; ``<= 1`` serves
                the shards serially in-process (bit-identical results).
            block_size: columnar block size inside each shard (``1`` is
                the scalar oracle).
            checkpoint: snapshot each shard at epoch end (disable to
                model a crash before any checkpoint, e.g. in recovery
                tests).

        Returns:
            Per-shard reports in shard-id order plus the epoch's
            cross-shard referrals.
        """
        buckets = self.router.split_trips(trips)
        tasks: List[TaskSpec] = []
        for sid, bucket in enumerate(buckets):
            if not bucket:
                continue
            tasks.append(
                TaskSpec(
                    fn=_run_epoch_task,
                    args=(
                        self.spec(sid),
                        self.plan.state_dict(),
                        str(_shard_dir(self.directory, sid)),
                        bucket,
                        self._halo_for(sid),
                        block_size,
                        checkpoint,
                    ),
                    label=f"shard-{sid:03d}",
                )
            )
        runner = ParallelRunner(workers=min(workers, max(1, len(tasks))))
        reports: List[ShardReport] = runner.run(tasks)
        for report in reports:
            self._stations[report.shard_id] = [
                (i, x, y) for i, x, y in report.stations
            ]
        self._save_halo()
        referrals: List[CrossShardReferral] = []
        for report in reports:
            referrals.extend(report.referrals)
        return ShardedServeOutcome(reports=tuple(reports), referrals=tuple(referrals))

    # ------------------------------------------------------------------
    def open_shard(self, shard_id: int) -> GuardedRuntime:
        """Materialise one shard's guarded runtime in-process.

        Recovers from the shard's own snapshot + journal when it has
        served before; otherwise builds it fresh.  Callers own closing
        it.
        """
        return build_shard_runtime(
            self.spec(shard_id), _shard_dir(self.directory, shard_id)
        )

    @classmethod
    def recover(
        cls, directory: Union[str, Path]
    ) -> "ShardedRuntime":
        """Rebuild a sharded runtime from its root directory.

        Reads ``shardplan.json`` (plan + build recipe) and the halo
        cache; each shard's state then recovers lazily — and
        independently — from its own ``shard-NNN/`` directory the next
        time it serves or is opened.

        Raises:
            FileNotFoundError: when the directory holds no plan.
        """
        directory = Path(directory)
        path = directory / PLAN_FILE
        if not path.exists():
            raise FileNotFoundError(f"{path} does not exist — nothing to recover")
        manifest = json.loads(path.read_text())
        build = manifest["build"]
        return cls(
            plan=ShardPlan.from_state(manifest["plan"]),
            directory=directory,
            anchors=[Point(x, y) for x, y in build["anchors"]],
            historical=np.asarray(build["historical"], dtype=float),
            seed=build["seed"],
            n_bikes=build["n_bikes"],
            cost_value=build["cost_value"],
            guard=_guard_from_state(build["guard"]),
            checkpoint_every=build["checkpoint_every"],
            keep=build["keep"],
            durable=build["durable"],
            beta=build["beta"],
            history_window=build["history_window"],
            _resume=True,
        )


def _run_epoch_task(
    spec: ShardSpec,
    plan_state: Dict[str, Any],
    directory: str,
    trips: List[TripRecord],
    halo: Tuple[Tuple[int, int, float, float], ...],
    block_size: Optional[int],
    checkpoint: bool,
) -> ShardReport:
    """Module-level epoch task (picklable for the process pool)."""
    plan = ShardPlan.from_state(plan_state)
    runtime = build_shard_runtime(spec, directory)
    offered_before = runtime.validator.offered
    outcomes = runtime.serve(trips, block_size=block_size)
    runtime.consistency_check()
    referrals = _compute_referrals(spec, plan, trips, outcomes, halo)
    if checkpoint and not runtime.halted:
        runtime.inner.checkpoint()
    runtime.flush_logs(Path(directory) / "logs", durable=spec.durable)
    store = runtime.inner.service.planner.station_set
    stations = tuple(
        (int(sid), float(store.location(sid).x), float(store.location(sid).y))
        for sid in store.ids()
    )
    report = ShardReport(
        shard_id=spec.shard_id,
        offered=runtime.validator.offered - offered_before,
        served=runtime.served,
        duplicates=runtime.duplicates,
        deadlettered=runtime.sink.total,
        degraded=len(runtime.degraded_decisions),
        incidents=runtime.incidents.total,
        health=runtime.health,
        applied_seq=runtime.inner.applied_seq,
        outcomes=tuple(outcomes),
        referrals=tuple(referrals),
        stations=stations,
        shed=runtime.overload.shed if runtime.overload is not None else 0,
        deferred=len(runtime.deferred_decisions),
    )
    runtime.close()
    return report
