"""Watermark-based reordering of a late/out-of-order event stream.

Real feeds deliver events *approximately* in order: device batching and
retried uploads displace an event by seconds, not hours.  The chaos
harness models the benign end of this as adjacent swaps
(``ChaosConfig.p_swap``); :class:`WatermarkBuffer` generalises the
tolerance to *arbitrary bounded disorder* — the standard streaming
watermark construction:

* the **watermark** is ``max(event time seen) - lateness``: the point
  up to which the stream is declared complete;
* arriving events are held in a min-heap keyed by
  ``(start_time, arrival_seq)``; whenever the watermark advances, every
  buffered event at or below it is released in timestamp order (the
  arrival sequence breaks timestamp ties, so the emission order is a
  deterministic function of the input — no wall clock anywhere);
* an event older than the watermark arrives *too late* to reorder —
  emitting it would un-sort the output — so it is dead-lettered, never
  silently dropped;
* the buffer is bounded: when more than ``max_pending`` events are in
  flight the admission gate sheds the newest arrival to the dead-letter
  sink, which keeps memory finite under a stalled watermark (an
  upstream that stops advancing time).

For an already-sorted stream with ``lateness`` zero or more the buffer
is an identity (modulo buffering delay): every event is eventually
emitted exactly once and in input order — the bit-identity anchor the
guarded runtime's zero-fault parity test relies on.
"""

from __future__ import annotations

import heapq
from datetime import timedelta
from typing import List, Optional

from ..datasets.trips import TripRecord
from .validation import DeadLetterSink, RejectedTrip

__all__ = ["WatermarkBuffer"]


class WatermarkBuffer:
    """Bounded-lateness reordering buffer for :class:`TripRecord` streams.

    Args:
        lateness_s: how far behind the newest event time an arrival may
            be and still get reordered into place.  ``0`` means only
            exact in-order streams pass untouched (anything older than
            the max seen is late).
        sink: dead-letter sink for too-late and shed events; a private
            one when omitted.
        max_pending: cap on buffered (admitted but unreleased) events;
            arrivals beyond it are shed.

    Raises:
        ValueError: on a negative lateness or non-positive capacity.
    """

    def __init__(
        self,
        lateness_s: float = 120.0,
        sink: Optional[DeadLetterSink] = None,
        max_pending: int = 10_000,
    ) -> None:
        if lateness_s < 0:
            raise ValueError(f"lateness_s must be non-negative, got {lateness_s}")
        if max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        self.lateness = timedelta(seconds=lateness_s)
        self.sink = sink if sink is not None else DeadLetterSink()
        self.max_pending = max_pending
        self._heap: List[tuple] = []
        self._max_seen = None
        self._seq = 0
        self.admitted = 0
        self.emitted = 0
        self.too_late = 0
        self.shed = 0

    def __len__(self) -> int:
        """Events currently held (admitted, not yet emitted)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    def _reject(self, trip: TripRecord, rule: str, reason: str) -> None:
        self.sink.add(
            RejectedTrip(
                seq=self._seq - 1,
                rule=rule,
                reason=reason,
                order_id=trip.order_id,
                start_time=trip.start_time.isoformat(),
            )
        )

    def _release(self) -> List[TripRecord]:
        """Emit every buffered event the watermark has passed."""
        out: List[TripRecord] = []
        watermark = self._max_seen - self.lateness
        while self._heap and self._heap[0][0] <= watermark:
            _, _, trip = heapq.heappop(self._heap)
            out.append(trip)
        self.emitted += len(out)
        return out

    def push(self, trip: TripRecord) -> List[TripRecord]:
        """Offer one arrival; returns the events released by it (in
        timestamp order), possibly empty.

        A too-late arrival (older than the current watermark) and an
        arrival that overflows ``max_pending`` are dead-lettered and
        release nothing.
        """
        self._seq += 1
        if self._max_seen is not None:
            watermark = self._max_seen - self.lateness
            if trip.start_time < watermark:
                self.too_late += 1
                behind = (watermark - trip.start_time).total_seconds()
                self._reject(
                    trip, "too_late",
                    f"arrived {behind:.0f}s behind the watermark "
                    f"(lateness {self.lateness.total_seconds():.0f}s)",
                )
                return []
        if len(self._heap) >= self.max_pending:
            self.shed += 1
            self._reject(
                trip, "shed",
                f"reorder buffer full ({self.max_pending} pending)",
            )
            return []
        heapq.heappush(self._heap, (trip.start_time, self._seq, trip))
        self.admitted += 1
        if self._max_seen is None or trip.start_time > self._max_seen:
            self._max_seen = trip.start_time
        return self._release()

    def flush(self) -> List[TripRecord]:
        """End of stream: emit everything still buffered, in order."""
        out: List[TripRecord] = []
        while self._heap:
            _, _, trip = heapq.heappop(self._heap)
            out.append(trip)
        self.emitted += len(out)
        return out

    # ------------------------------------------------------------------
    def consistency_check(self) -> None:
        """Accounting invariant: every offered event is emitted, held,
        or dead-lettered — never two of those, never none.

        Raises:
            RuntimeError: on drift.
        """
        accounted = self.emitted + len(self._heap) + self.too_late + self.shed
        if accounted != self._seq or self.admitted != self.emitted + len(self._heap):
            raise RuntimeError(
                f"reorder accounting drift: offered={self._seq} "
                f"emitted={self.emitted} held={len(self._heap)} "
                f"late={self.too_late} shed={self.shed}"
            )
