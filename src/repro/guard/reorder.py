"""Watermark-based reordering of a late/out-of-order event stream.

Real feeds deliver events *approximately* in order: device batching and
retried uploads displace an event by seconds, not hours.  The chaos
harness models the benign end of this as adjacent swaps
(``ChaosConfig.p_swap``); :class:`WatermarkBuffer` generalises the
tolerance to *arbitrary bounded disorder* — the standard streaming
watermark construction:

* the **watermark** is ``max(event time seen) - lateness``: the point
  up to which the stream is declared complete;
* arriving events are held in a min-heap keyed by
  ``(start_time, arrival_seq)``; whenever the watermark advances, every
  buffered event at or below it is released in timestamp order (the
  arrival sequence breaks timestamp ties, so the emission order is a
  deterministic function of the input — no wall clock anywhere);
* an event older than the watermark arrives *too late* to reorder —
  emitting it would un-sort the output — so it is dead-lettered, never
  silently dropped;
* the buffer is bounded: when more than ``max_pending`` events are in
  flight the admission gate sheds the newest arrival to the dead-letter
  sink, which keeps memory finite under a stalled watermark (an
  upstream that stops advancing time).

For an already-sorted stream with ``lateness`` zero or more the buffer
is an identity (modulo buffering delay): every event is eventually
emitted exactly once and in input order — the bit-identity anchor the
guarded runtime's zero-fault parity test relies on.
"""

from __future__ import annotations

import heapq
from datetime import timedelta
from typing import List, Optional

import numpy as np

from ..core.tripblock import TripBlock, datetime_to_us, us_to_datetime
from ..datasets.trips import TripRecord
from .validation import DeadLetterSink, RejectedTrip

__all__ = ["WatermarkBuffer"]


class WatermarkBuffer:
    """Bounded-lateness reordering buffer for :class:`TripRecord` streams.

    Args:
        lateness_s: how far behind the newest event time an arrival may
            be and still get reordered into place.  ``0`` means only
            exact in-order streams pass untouched (anything older than
            the max seen is late).
        sink: dead-letter sink for too-late and shed events; a private
            one when omitted.
        max_pending: cap on buffered (admitted but unreleased) events;
            arrivals beyond it are shed.

    Raises:
        ValueError: on a negative lateness or non-positive capacity.
    """

    def __init__(
        self,
        lateness_s: float = 120.0,
        sink: Optional[DeadLetterSink] = None,
        max_pending: int = 10_000,
    ) -> None:
        if lateness_s < 0:
            raise ValueError(f"lateness_s must be non-negative, got {lateness_s}")
        if max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        self.lateness = timedelta(seconds=lateness_s)
        self.sink = sink if sink is not None else DeadLetterSink()
        self.max_pending = max_pending
        self._heap: List[tuple] = []
        # Columnar pending tail: on the sorted-stream fast path the
        # within-lateness suffix of each block is held as a TripBlock
        # (plus its arrival seqs) instead of heap entries — zero heap
        # churn in the steady state.  Invariants: the tail is sorted,
        # every heap timestamp <= every tail timestamp, and every heap
        # seq < every tail seq, so "heap first, then tail" is the exact
        # pending order and :meth:`_detach_tail` can always fall back to
        # the heap representation.
        self._tail: Optional[TripBlock] = None
        self._tail_seqs: Optional[np.ndarray] = None
        self._max_seen = None
        self._seq = 0
        self.admitted = 0
        self.emitted = 0
        self.too_late = 0
        self.shed = 0

    def __len__(self) -> int:
        """Events currently held (admitted, not yet emitted)."""
        n = len(self._heap)
        if self._tail is not None:
            n += len(self._tail)
        return n

    def _detach_tail(self) -> None:
        """Spill the columnar pending tail into the heap (leaving the
        sorted fast path); a no-op when no tail is held."""
        if self._tail is None:
            return
        tail, seqs = self._tail, self._tail_seqs
        self._tail = None
        self._tail_seqs = None
        S = tail.start_us
        for i in range(len(tail)):
            heapq.heappush(
                self._heap,
                (us_to_datetime(S[i]), int(seqs[i]), tail.trip(i)),
            )

    # ------------------------------------------------------------------
    def _reject(self, trip: TripRecord, rule: str, reason: str) -> None:
        self.sink.add(
            RejectedTrip(
                seq=self._seq - 1,
                rule=rule,
                reason=reason,
                order_id=trip.order_id,
                start_time=trip.start_time.isoformat(),
            )
        )

    def _release(self) -> List[TripRecord]:
        """Emit every buffered event the watermark has passed."""
        out: List[TripRecord] = []
        watermark = self._max_seen - self.lateness
        while self._heap and self._heap[0][0] <= watermark:
            _, _, trip = heapq.heappop(self._heap)
            out.append(trip)
        self.emitted += len(out)
        return out

    def push(self, trip: TripRecord) -> List[TripRecord]:
        """Offer one arrival; returns the events released by it (in
        timestamp order), possibly empty.

        A too-late arrival (older than the current watermark) and an
        arrival that overflows ``max_pending`` are dead-lettered and
        release nothing.
        """
        self._seq += 1
        if self._max_seen is not None:
            watermark = self._max_seen - self.lateness
            if trip.start_time < watermark:
                self.too_late += 1
                behind = (watermark - trip.start_time).total_seconds()
                self._reject(
                    trip, "too_late",
                    f"arrived {behind:.0f}s behind the watermark "
                    f"(lateness {self.lateness.total_seconds():.0f}s)",
                )
                return []
        if len(self) >= self.max_pending:
            self.shed += 1
            self._reject(
                trip, "shed",
                f"reorder buffer full ({self.max_pending} pending)",
            )
            return []
        self._detach_tail()
        heapq.heappush(self._heap, (trip.start_time, self._seq, trip))
        self.admitted += 1
        if self._max_seen is None or trip.start_time > self._max_seen:
            self._max_seen = trip.start_time
        return self._release()

    def push_block(self, block: TripBlock) -> TripBlock:
        """Offer a whole block of arrivals; returns the released trips.

        Bit-identical to calling :meth:`push` once per trip in order and
        concatenating the returned lists: same emission sequence, same
        dead-letter rows, same counters, same pending set.  The fast
        paths:

        * **sorted streams** (the overwhelmingly common case: the loader
          sorts by ``start_time``): when the heap is empty, the block is
          non-decreasing and nothing can be late, the release is a
          single ``searchsorted`` cut and the released run is a
          zero-copy slice of the block — no heap churn at all;
        * **general case**: late arrivals fall out of one vectorized
          comparison against the running-maximum watermark, and the
          released set/order is reconstructed with ``searchsorted`` over
          the per-arrival watermark plus one ``lexsort`` — provably the
          per-push heap-pop interleaving, because within a release step
          the heap pops by ``(start_time, seq)`` and steps are ordered.

        A block that could overflow ``max_pending`` routes through the
        scalar :meth:`push` loop (shedding decisions are inherently
        sequential).
        """
        n = len(block)
        if n == 0:
            return TripBlock.empty()
        if len(self) + n > self.max_pending:
            released: List[TripRecord] = []
            for trip in block.to_trips():
                released.extend(self.push(trip))
            return TripBlock.from_trips(released)

        S = block.start_us
        lat_us = self.lateness // timedelta(microseconds=1)
        max0_us = None if self._max_seen is None else datetime_to_us(self._max_seen)
        base = self._seq

        # Fast path: sorted block, nothing late, and every pending event
        # predates the block (the steady state of an ordered stream: the
        # pending set is at most the previous blocks' within-lateness
        # tail).  Then all pending events emit before any block row — a
        # pending timestamp <= S[0] never release-steps after a block
        # row — so the release is (pending prefix + block prefix), both
        # found with one ``searchsorted``, and the withheld suffix is
        # carried as a columnar tail: no heap entry, no per-trip record
        # is ever materialised while the stream stays sorted.  On the
        # pure identity case (nothing pending, nothing withheld) the
        # released run is a zero-copy slice of the block.
        first_us = int(S[0])
        tail = self._tail
        if tail is not None:
            pend_max_us = int(tail.start_us[-1])
        elif self._heap:
            pend_max_us = max(datetime_to_us(e[0]) for e in self._heap)
        else:
            pend_max_us = None
        if (
            (n == 1 or bool(np.all(S[1:] >= S[:-1])))
            and (max0_us is None or first_us >= max0_us - lat_us)
            and (pend_max_us is None or pend_max_us <= first_us)
        ):
            self._seq += n
            self.admitted += n
            last_max = int(S[-1]) if max0_us is None else max(max0_us, int(S[-1]))
            watermark_us = last_max - lat_us
            watermark = us_to_datetime(watermark_us)
            parts: List[TripBlock] = []
            drained: List[TripRecord] = []
            while self._heap and self._heap[0][0] <= watermark:
                drained.append(heapq.heappop(self._heap)[2])
            if drained:
                parts.append(TripBlock.from_trips(drained))
            tcut = 0
            if tail is not None:
                tcut = int(
                    np.searchsorted(tail.start_us, watermark_us, side="right")
                )
                if tcut:
                    parts.append(tail[:tcut])
            cut = int(np.searchsorted(S, watermark_us, side="right"))
            if cut:
                parts.append(block[:cut])

            new_tail: List[TripBlock] = []
            new_seqs: List[np.ndarray] = []
            if tail is not None and tcut < len(tail):
                new_tail.append(tail[tcut:])
                new_seqs.append(self._tail_seqs[tcut:])
            if cut < n:
                new_tail.append(block[cut:])
                new_seqs.append(
                    np.arange(base + 1 + cut, base + 1 + n, dtype=np.int64)
                )
            if new_tail:
                self._tail = (
                    new_tail[0] if len(new_tail) == 1 else TripBlock.concat(new_tail)
                )
                self._tail_seqs = (
                    new_seqs[0] if len(new_seqs) == 1 else np.concatenate(new_seqs)
                )
            else:
                self._tail = None
                self._tail_seqs = None

            self._max_seen = us_to_datetime(last_max)
            if len(parts) == 1:
                released_fast = parts[0]
            elif parts:
                released_fast = TripBlock.concat(parts)
            else:
                released_fast = TripBlock.empty()
            self.emitted += len(released_fast)
            return released_fast

        # General case (pending tail, if any, spills back to the heap).
        # M[i] = max event time after arrival i; late arrivals never
        # advance it (their time is below the watermark, hence below the
        # maximum), so one cumulative max serves both.
        self._detach_tail()
        self._seq += n
        cum = np.maximum.accumulate(S)
        M = cum if max0_us is None else np.maximum(cum, max0_us)
        late = np.zeros(n, dtype=bool)
        late[1:] = S[1:] < (M[:-1] - lat_us)
        if max0_us is not None:
            late[0] = int(S[0]) < max0_us - lat_us
        W = M - lat_us  # watermark after each arrival (non-decreasing)
        if np.any(late):
            m_before = np.empty(n, dtype=np.int64)
            m_before[0] = 0 if max0_us is None else max0_us
            m_before[1:] = M[:-1]
            lateness_s = self.lateness.total_seconds()
            for i in np.flatnonzero(late):
                self.too_late += 1
                behind = float(m_before[i] - lat_us - S[i]) / 1e6
                self.sink.add(
                    RejectedTrip(
                        seq=base + int(i),
                        rule="too_late",
                        reason=(
                            f"arrived {behind:.0f}s behind the watermark "
                            f"(lateness {lateness_s:.0f}s)"
                        ),
                        order_id=int(block.order_id[i]),
                        start_time=us_to_datetime(block.start_us[i]).isoformat(),
                    )
                )
        adm_idx = np.flatnonzero(~late)
        self.admitted += int(adm_idx.size)

        # Release step of every candidate: the first arrival whose
        # watermark reaches its timestamp (and, for new arrivals, no
        # earlier than their own arrival).  step < n means released
        # within this block; the emission order is (step, time, seq) —
        # exactly the per-push pop interleaving.
        old = self._heap
        old_ts = np.asarray(
            [datetime_to_us(entry[0]) for entry in old], dtype=np.int64
        )
        old_seq = np.asarray([entry[1] for entry in old], dtype=np.int64)
        old_step = np.searchsorted(W, old_ts, side="left")
        adm_ts = S[adm_idx]
        adm_seq = base + 1 + adm_idx
        adm_step = np.maximum(adm_idx, np.searchsorted(W, adm_ts, side="left"))

        old_rel = old_step < n
        new_rel = adm_step < n
        rel_old_pos = np.flatnonzero(old_rel)
        rel_new_rows = adm_idx[new_rel]
        old_block = TripBlock.from_trips([old[i][2] for i in rel_old_pos])
        new_block = block.take(rel_new_rows)
        rel_ts = np.concatenate([old_ts[old_rel], adm_ts[new_rel]])
        rel_seq = np.concatenate([old_seq[old_rel], adm_seq[new_rel]])
        rel_step = np.concatenate([old_step[old_rel], adm_step[new_rel]])
        order = np.lexsort((rel_seq, rel_ts, rel_step))
        released_block = TripBlock.concat([old_block, new_block]).take(order)

        pending = [old[i] for i in np.flatnonzero(~old_rel)]
        for i in adm_idx[~new_rel]:
            pending.append(
                (us_to_datetime(S[i]), base + 1 + int(i), block.trip(int(i)))
            )
        heapq.heapify(pending)
        self._heap = pending
        self._max_seen = us_to_datetime(M[-1])
        self.emitted += len(released_block)
        return released_block

    def flush(self) -> List[TripRecord]:
        """End of stream: emit everything still buffered, in order."""
        out: List[TripRecord] = []
        while self._heap:
            _, _, trip = heapq.heappop(self._heap)
            out.append(trip)
        if self._tail is not None:
            # Tail rows sort after every heap entry (see the invariants
            # on the fast path) and are already in (time, seq) order.
            out.extend(self._tail.to_trips())
            self._tail = None
            self._tail_seqs = None
        self.emitted += len(out)
        return out

    # ------------------------------------------------------------------
    def consistency_check(self) -> None:
        """Accounting invariant: every offered event is emitted, held,
        or dead-lettered — never two of those, never none.

        Raises:
            RuntimeError: on drift.
        """
        held = len(self)
        accounted = self.emitted + held + self.too_late + self.shed
        if accounted != self._seq or self.admitted != self.emitted + held:
            raise RuntimeError(
                f"reorder accounting drift: offered={self._seq} "
                f"emitted={self.emitted} held={held} "
                f"late={self.too_late} shed={self.shed}"
            )
