"""Circuit breakers with deterministic, replay-safe backoff.

The online tier leans on three subsystems that can wedge or throw
independently of the placement math: the periodic Peacock KS-2D test,
the Tier-2 incentive mechanism, and the demand forecaster.  A breaker
isolates each one behind the classic three-state machine —

* **closed**: calls pass through; ``failure_threshold`` *consecutive*
  failures trip it open;
* **open**: calls are refused for a cooldown measured in *events*
  (breaker calls), not wall-clock seconds, so a replay of the same
  stream trips, backs off, and recovers at exactly the same positions;
* **half-open**: after the cooldown one probe call is let through — a
  success closes the breaker, a failure re-opens it with the cooldown
  doubled (capped), plus a small *seeded* jitter so co-located breakers
  do not retry in lockstep.  The jitter RNG is seeded per breaker and
  only consumed on failures, which keeps fault-free runs bit-identical
  to unguarded ones.

Refused or failed calls return the configured fallback; the per-subsystem
fallbacks implement the paper-side degradations: the KS wrapper repeats
the last accepted test result (so the planner keeps its last accepted
penalty type), the incentive wrapper answers "no offer", the forecast
wrapper flatlines at the last observed value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..errors import BreakerOpenError
from ..forecast.base import Forecaster
from ..incentives.mechanism import IncentiveMechanism, OfferOutcome
from ..stats.ks2d import CachedKS2D, KSResult

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "GuardedKS2D",
    "GuardedIncentives",
    "GuardedForecaster",
]

#: Breaker states (plain strings so they serialise and print cleanly).
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery policy of a :class:`CircuitBreaker`.

    Attributes:
        failure_threshold: consecutive failures that trip the breaker.
        cooldown_events: refused calls before the first half-open probe.
        max_cooldown_events: cap on the doubled cooldown.
        jitter_events: upper bound (inclusive) on the seeded random
            extra cooldown added each time the breaker opens.
        seed: jitter RNG seed — identical configs back off identically.

    Raises:
        ValueError: on non-positive thresholds/cooldowns or a negative
            jitter.
    """

    failure_threshold: int = 3
    cooldown_events: int = 8
    max_cooldown_events: int = 64
    jitter_events: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold <= 0:
            raise ValueError(
                f"failure_threshold must be positive, got {self.failure_threshold}"
            )
        if self.cooldown_events <= 0 or self.max_cooldown_events < self.cooldown_events:
            raise ValueError(
                f"need 0 < cooldown_events <= max_cooldown_events, got "
                f"{self.cooldown_events}/{self.max_cooldown_events}"
            )
        if self.jitter_events < 0:
            raise ValueError(f"jitter_events must be >= 0, got {self.jitter_events}")


class CircuitBreaker:
    """Three-state breaker whose clock is the call counter.

    Args:
        name: label used in incidents and transition history.
        config: trip/backoff policy.
        on_transition: optional observer called with
            ``(name, old_state, new_state, call_index)`` — the guarded
            runtime hangs its incident log here.
    """

    def __init__(
        self,
        name: str,
        config: Optional[BreakerConfig] = None,
        on_transition: Optional[Callable[[str, str, str, int], None]] = None,
    ) -> None:
        self.name = name
        self.config = config or BreakerConfig()
        self.on_transition = on_transition
        self.state = CLOSED
        self.suspended = False  # ladder rung >= 1: refuse without tripping
        self.calls = 0
        self.failures = 0  # consecutive, resets on success
        self.total_failures = 0
        self.refused = 0
        self.fallbacks = 0
        self._cooldown = self.config.cooldown_events
        self._reopen_at = 0  # call index at which half-open probing starts
        self._rng = np.random.default_rng(self.config.seed)
        self.transitions: List[tuple] = []

    # ------------------------------------------------------------------
    def _move(self, new_state: str) -> None:
        if new_state == self.state:
            return
        old, self.state = self.state, new_state
        self.transitions.append((old, new_state, self.calls))
        if self.on_transition is not None:
            self.on_transition(self.name, old, new_state, self.calls)

    def _trip_open(self) -> None:
        jitter = 0
        if self.config.jitter_events:
            jitter = int(self._rng.integers(0, self.config.jitter_events + 1))
        self._reopen_at = self.calls + self._cooldown + jitter
        self._cooldown = min(self._cooldown * 2, self.config.max_cooldown_events)
        self._move(OPEN)

    # ------------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        """True while the breaker lets real calls through."""
        return self.state != OPEN and not self.suspended

    def suspend(self) -> None:
        """Administratively refuse calls without touching the state
        machine — the degradation ladder's "defer this subsystem".

        Refused calls take the configured fallback exactly as an open
        breaker's would, but the state stays wherever it was and the
        event clock keeps counting, so resuming continues the breaker's
        own history unperturbed.
        """
        self.suspended = True

    def resume(self) -> None:
        """Lift an administrative suspension."""
        self.suspended = False

    def admit(self) -> bool:
        """Count one call and decide whether the subsystem may be hit.

        ``False`` means refused: the breaker is suspended (ladder), or
        open and its cooldown has not elapsed.  ``True`` either passes
        a closed breaker or grants the single half-open probe — the
        caller must then report back via :meth:`success` or
        :meth:`failure`.
        """
        self.calls += 1
        if self.suspended:
            self.refused += 1
            return False
        if self.state == OPEN:
            if self.calls >= self._reopen_at:
                self._move(HALF_OPEN)
                return True
            self.refused += 1
            return False
        return True

    def failure(self) -> None:
        """Report that an admitted call failed."""
        self.failures += 1
        self.total_failures += 1
        if self.state == HALF_OPEN or self.failures >= self.config.failure_threshold:
            self._trip_open()

    def success(self) -> None:
        """Report that an admitted call succeeded."""
        self.failures = 0
        if self.state in (HALF_OPEN, OPEN):
            self._cooldown = self.config.cooldown_events
        self._move(CLOSED)

    def call(self, fn: Callable[..., Any], *args: Any, fallback: Any = ...) -> Any:
        """Route one call through the breaker.

        While open (and before the cooldown elapses) ``fn`` is not
        invoked at all; the fallback is returned instead.  A failure of
        ``fn`` is absorbed the same way.  ``fallback`` may be a value or
        a zero-argument callable (evaluated lazily).

        Raises:
            BreakerOpenError: a refused/failed call with no fallback
                configured.
        """
        if not self.admit():
            return self._fall_back(fallback, refused=True)
        try:
            result = fn(*args)
        except Exception as exc:  # noqa: BLE001 — the point of a breaker
            self.failure()
            return self._fall_back(fallback, cause=exc)
        self.success()
        return result

    def _fall_back(
        self, fallback: Any, refused: bool = False, cause: Optional[Exception] = None
    ) -> Any:
        if fallback is ...:
            detail = "refused while open" if refused else f"call failed: {cause}"
            raise BreakerOpenError(f"breaker {self.name!r}: {detail}") from cause
        self.fallbacks += 1
        return fallback() if callable(fallback) else fallback


# ----------------------------------------------------------------------
class GuardedKS2D:
    """Breaker-guarded drop-in for the planner's :class:`CachedKS2D`.

    Degradation: while the KS subsystem is broken the *last accepted*
    result is repeated, so :meth:`EsharingPlanner._check` re-selects the
    penalty type it already runs — exactly "fall back to the last
    accepted penalty type".  Before any test has succeeded, the fallback
    is a perfect-similarity result (statistic 0), i.e. "assume the live
    stream still matches history".
    """

    def __init__(self, inner: CachedKS2D, breaker: CircuitBreaker) -> None:
        self.inner = inner
        self.breaker = breaker
        self.last_good: Optional[KSResult] = None

    @property
    def historical(self) -> np.ndarray:
        """The fixed historical sample (delegated)."""
        return self.inner.historical

    def _fallback(self, n_live: int) -> KSResult:
        if self.last_good is not None:
            return self.last_good
        return KSResult(
            statistic=0.0, n1=self.inner.historical.shape[0],
            n2=n_live, p_value=1.0,
        )

    def test(self, live: Sequence) -> KSResult:
        """Guarded KS test; never raises, always returns a result."""
        n_live = int(np.asarray(live).shape[0])
        result = self.breaker.call(
            self.inner.test, live, fallback=lambda: self._fallback(n_live)
        )
        if self.breaker.state == CLOSED and self.breaker.failures == 0:
            self.last_good = result
        return result


class GuardedIncentives:
    """Breaker-guarded wrapper over an :class:`IncentiveMechanism`.

    Degradation: "no offer" — riders simply are not asked to relocate
    low-battery bikes while the Tier-2 mechanism is broken, which is
    safe (the fleet mutates only on an accepted offer).
    """

    NO_OFFER = OfferOutcome.no_offer("breaker open")

    def __init__(self, inner: IncentiveMechanism, breaker: CircuitBreaker) -> None:
        self.inner = inner
        self.breaker = breaker

    def offer_ride(self, origin: int, destination: int, final_destination) -> OfferOutcome:
        """Guarded offer; never raises, degrades to no-offer."""
        return self.breaker.call(
            self.inner.offer_ride, origin, destination, final_destination,
            fallback=self.NO_OFFER,
        )


class GuardedForecaster(Forecaster):
    """Breaker-guarded wrapper over any :class:`Forecaster`.

    Degradation: persistence — repeat the last observed value of the
    history (zero before any observation), the standard naive forecast.
    A failed ``fit`` leaves the model unfitted but usable: ``forecast``
    then simply keeps degrading until a later refit succeeds.
    """

    def __init__(self, inner: Forecaster, breaker: CircuitBreaker) -> None:
        self.inner = inner
        self.breaker = breaker
        self.fit_ok = False

    def fit(self, series: np.ndarray) -> "GuardedForecaster":
        def _fit() -> bool:
            self.inner.fit(series)
            return True

        self.fit_ok = bool(self.breaker.call(_fit, fallback=False))
        return self

    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        self._check_horizon(horizon)

        def _persistence() -> np.ndarray:
            arr = np.asarray(history, dtype=float).ravel()
            last = float(arr[-1]) if arr.size else 0.0
            return np.full(horizon, last)

        if not self.fit_ok:
            self.breaker.fallbacks += 1
            return _persistence()
        return self.breaker.call(
            self.inner.forecast, history, horizon, fallback=_persistence
        )
