"""The supervised online runtime: validate, reorder, degrade, survive.

:class:`GuardedRuntime` is the outermost layer of the online tier.  It
wraps the crash-safe :class:`~repro.resilience.CheckpointingService`
with the guardrails a live deployment needs between the network and the
planner::

    arrival ──▶ TripValidator ──▶ WatermarkBuffer ──▶ planner breaker
                   │ reject            │ late/shed         │ open
                   ▼                   ▼                   ▼
               dead-letter sink ◀──────┘            degraded serve

and supervises the whole pipe with a three-state health machine:

* **healthy** — every breaker closed, events flow through the journaled
  write-ahead path exactly as the unguarded service would serve them
  (with all fault rates at zero the outputs are bit-identical);
* **degraded** — a subsystem breaker is open or probing.  KS checks
  repeat the last accepted result, the incentive tier stops offering,
  and while the *planner* breaker is open requests are answered from
  the nearest-existing-station fallback — availability over
  durability, with every degraded decision recorded;
* **halted** — durability itself failed (checkpoint I/O retries
  exhausted, journal unusable, or no station left to serve from).  The
  runtime refuses further events: serving on without a recoverable
  journal would silently fork history.

A planner exception mid-trip is treated as in-memory corruption and
**self-healed** through the existing recovery machinery: the poisoned
service object is discarded and rebuilt from the latest snapshot plus
the journal tail — the same code path a process crash takes, minus the
process death.  The ``post_restore`` hook re-installs the guarded KS
wrapper before the tail replays, so the healed service continues the
exact guarded history.

Every noteworthy transition — breaker trips, degraded decisions,
self-heals, checkpoint retries, halts — lands in a structured
:class:`IncidentLog`, dumped atomically as JSONL for the
``esharing incidents`` inspection subcommand.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

import numpy as np

from ..core.costs import FacilityCostFn
from ..core.streaming import PlacementService
from ..core.tripblock import TripBlock
from ..datasets.trips import TripRecord
from ..errors import (
    BlockApplyError,
    RuntimeHaltedError,
    SnapshotError,
    StateDriftError,
)
from ..forecast.base import Forecaster
from ..incentives.mechanism import IncentiveMechanism
from ..ioutil import atomic_write_text, fs_fsync, fs_write, rotate_file
from ..resilience.service import CheckpointingService
from .breakers import (
    CLOSED,
    BreakerConfig,
    CircuitBreaker,
    GuardedForecaster,
    GuardedIncentives,
    GuardedKS2D,
)
from .overload import OverloadConfig, OverloadController
from .reorder import WatermarkBuffer
from .validation import DeadLetterSink, TripValidator, ValidationConfig

__all__ = [
    "HEALTHY",
    "DEGRADED",
    "HALTED",
    "GuardConfig",
    "Incident",
    "IncidentLog",
    "DegradedDecision",
    "GuardedRuntime",
]

#: Aux breakers the overload ladder suspends on rung >= 1.
_LADDER_AUX = ("ks", "incentive", "forecast")

#: Runtime health states (plain strings: serialisable, greppable).
HEALTHY, DEGRADED, HALTED = "healthy", "degraded", "halted"

#: Breaker names, in the order they are created (seed offsets follow it).
_BREAKER_NAMES = ("planner", "ks", "incentive", "forecast")


@dataclass(frozen=True)
class GuardConfig:
    """Policy knobs of a :class:`GuardedRuntime`.

    Attributes:
        validation: ingest-boundary invariants.
        lateness_s: watermark lateness bound of the reorder buffer.
        max_pending: admission-gate cap on buffered events (load
            shedding beyond it).
        checkpoint_attempts: tries per checkpoint write before the
            runtime halts.
        checkpoint_backoff_s: base sleep between checkpoint retries
            (doubles per attempt; tests inject a no-op sleeper).
        breaker: trip/backoff policy shared by the subsystem breakers
            (each breaker derives its own jitter seed from it, so
            co-located breakers never retry in lockstep).
        deadletter_keep: detail rows retained in the dead-letter sink.
        incident_keep: detail rows retained in the incident log.
        incident_log_max_bytes: on-disk size cap of ``incidents.jsonl``;
            past it the file rotates to ``incidents.1.jsonl`` (atomic
            rename) before the next flush appends.
        block_size: trips per columnar block on the :meth:`serve` path
            (validator masks, watermark release and WAL group commit all
            amortise per block).  ``1`` is the scalar parity oracle —
            exactly the historical per-trip pipeline.
        overload: admission-control policy (token bucket, bounded
            ingest queue, priority shedder, degradation ladder) —
            ``None`` (the default) serves unthrottled, exactly the
            historical pipeline.

    Raises:
        ValueError: on non-positive retry/rotation limits or block size.
    """

    validation: ValidationConfig = field(default_factory=ValidationConfig)
    lateness_s: float = 120.0
    max_pending: int = 10_000
    checkpoint_attempts: int = 4
    checkpoint_backoff_s: float = 0.05
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    deadletter_keep: int = 10_000
    incident_keep: int = 10_000
    incident_log_max_bytes: int = 1_000_000
    block_size: int = 256
    overload: Optional[OverloadConfig] = None

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError(f"block_size must be positive, got {self.block_size}")
        if self.checkpoint_attempts <= 0:
            raise ValueError(
                f"checkpoint_attempts must be positive, got {self.checkpoint_attempts}"
            )
        if self.checkpoint_backoff_s < 0:
            raise ValueError(
                f"checkpoint_backoff_s must be >= 0, got {self.checkpoint_backoff_s}"
            )
        if self.deadletter_keep <= 0 or self.incident_keep <= 0:
            raise ValueError("deadletter_keep and incident_keep must be positive")
        if self.incident_log_max_bytes <= 0:
            raise ValueError(
                f"incident_log_max_bytes must be positive, got "
                f"{self.incident_log_max_bytes}"
            )

    def breaker_for(self, name: str) -> BreakerConfig:
        """The per-subsystem breaker config (decorrelated jitter seed)."""
        return replace(self.breaker, seed=self.breaker.seed + _BREAKER_NAMES.index(name))


@dataclass(frozen=True)
class Incident:
    """One structured incident-log entry.

    ``seq`` is the ingest event counter at the time of the incident, so
    incidents line up against the offered stream, not wall clock.
    """

    seq: int
    kind: str
    detail: str


class IncidentLog:
    """Bounded structured log of runtime incidents.

    Counters are exact forever; detail rows rotate past ``keep``.  Two
    disk forms exist: :meth:`write_jsonl` atomically rewrites a full
    dump of the retained rows, and :meth:`append_jsonl` appends only the
    rows not yet flushed, rotating the file to its ``.1`` sibling past a
    size cap — the long-running form, where history accumulates across
    flushes instead of being rewritten away.
    """

    def __init__(self, keep: int = 10_000) -> None:
        if keep <= 0:
            raise ValueError(f"keep must be positive, got {keep}")
        self.keep = keep
        self.rows: List[Incident] = []
        self.total = 0
        self.by_kind: Dict[str, int] = {}
        self._flushed_total = 0

    def __len__(self) -> int:
        return self.total

    def __iter__(self):
        return iter(self.rows)

    def add(self, seq: int, kind: str, detail: str) -> None:
        """Record one incident."""
        self.total += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        self.rows.append(Incident(seq=seq, kind=kind, detail=detail))
        if len(self.rows) > self.keep:
            del self.rows[: len(self.rows) - self.keep]

    def to_text(self, limit: int = 20) -> str:
        """Human-readable summary, at most ``limit`` detail lines."""
        per_kind = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.by_kind.items())
        )
        lines = [f"{self.total} incident(s) ({per_kind or 'none'})"]
        for entry in self.rows[-limit:]:
            lines.append(f"  seq {entry.seq}: {entry.kind}: {entry.detail}")
        return "\n".join(lines)

    def write_jsonl(self, path: Union[str, Path], durable: bool = True) -> Path:
        """Dump retained incidents atomically as JSON lines."""
        lines = [
            json.dumps({"seq": r.seq, "kind": r.kind, "detail": r.detail})
            for r in self.rows
        ]
        return atomic_write_text(path, "\n".join(lines) + "\n", durable=durable)

    def append_jsonl(
        self,
        path: Union[str, Path],
        durable: bool = True,
        max_bytes: int = 1_000_000,
    ) -> Path:
        """Append the rows not yet flushed; rotate past ``max_bytes``.

        Each call flushes only incidents recorded since the previous
        call, so repeated flushes (one per epoch, one per supervised
        restart generation) grow one continuous history instead of
        rewriting it.  When the file plus the pending append would
        exceed ``max_bytes`` it is first renamed to ``<stem>.1<suffix>``
        (atomic ``os.replace``), replacing the previous rotated
        generation — on-disk history is bounded by roughly two caps.
        Rows that rotated out of memory before ever being flushed are
        skipped (the counters in :attr:`by_kind` remain exact).
        """
        path = Path(path)
        start = max(self._flushed_total, self.total - len(self.rows))
        fresh = self.rows[len(self.rows) - (self.total - start):] if self.total > start else []
        self._flushed_total = self.total
        if not fresh:
            # Nothing new, but the file must exist after a flush: an
            # operator greps an empty log, not a missing one.
            path.parent.mkdir(parents=True, exist_ok=True)
            path.touch()
            return path
        payload = "".join(
            json.dumps({"seq": r.seq, "kind": r.kind, "detail": r.detail}) + "\n"
            for r in fresh
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        rotate_file(path, max_bytes, len(payload), durable=durable)
        with open(path, "a", encoding="utf-8") as f:
            fs_write(f, payload, path)
            f.flush()
            if durable:
                fs_fsync(f.fileno(), path)
        return path


@dataclass(frozen=True)
class DegradedDecision:
    """A request answered by the nearest-station fallback.

    These responses are *not* journaled (the planner was unavailable, so
    they are outside the recoverable history); the runtime keeps them on
    this dedicated ledger instead, and mirrors each into the incident
    log.
    """

    order_id: int
    origin_station: int
    destination_station: int
    walking_m: float
    reason: str


class GuardedRuntime:
    """Supervised wrapper making the online tier degrade, not corrupt.

    Args:
        inner: the crash-safe service to supervise.  The runtime takes
            ownership: it re-points the planner's KS cache at a guarded
            wrapper and replaces ``inner.checkpoint`` with a
            retry-with-backoff version.
        config: guardrail policy.
        incentives: optional Tier-2 mechanism; it is wrapped behind the
            incentive breaker and driven once per *served* response.
            Note that incentive relocations mutate the fleet outside the
            journal, so attaching a mechanism trades bit-identical
            recoverability for Tier-2 coverage (exactly as the
            simulator does).
        forecaster: optional demand forecaster to guard; exposed as
            :attr:`forecaster`, not called by the runtime itself.
        facility_cost: opening-cost callable handed to self-heal
            recovery when the snapshot carries no declarative spec.
        sleep: sleeper used by checkpoint-retry backoff (tests inject a
            no-op; the serving path itself never sleeps).
    """

    def __init__(
        self,
        inner: CheckpointingService,
        config: Optional[GuardConfig] = None,
        incentives: Optional[IncentiveMechanism] = None,
        forecaster: Optional[Forecaster] = None,
        facility_cost: Optional[FacilityCostFn] = None,
        sleep: Callable[[float], None] = time.sleep,
        _preinstalled_ks: Optional[GuardedKS2D] = None,
    ) -> None:
        self.config = config or GuardConfig()
        self.inner = inner
        self._facility_cost = facility_cost
        self._sleep = sleep
        self.incidents = IncidentLog(keep=self.config.incident_keep)
        self.sink = DeadLetterSink(keep=self.config.deadletter_keep)
        self.validator = TripValidator(self.config.validation, sink=self.sink)
        self.buffer = WatermarkBuffer(
            lateness_s=self.config.lateness_s,
            sink=self.sink,
            max_pending=self.config.max_pending,
        )
        self.breakers: Dict[str, CircuitBreaker] = {}
        for name in _BREAKER_NAMES:
            if _preinstalled_ks is not None and name == "ks":
                breaker = _preinstalled_ks.breaker
            else:
                breaker = CircuitBreaker(name, self.config.breaker_for(name))
            breaker.on_transition = self._on_breaker_transition
            self.breakers[name] = breaker
        self.guarded_ks: Optional[GuardedKS2D] = _preinstalled_ks
        self._install_guards(inner.service)
        self._wrap_checkpoint(inner)
        self.incentives: Optional[GuardedIncentives] = None
        if incentives is not None:
            self.incentives = GuardedIncentives(incentives, self.breakers["incentive"])
        self.forecaster: Optional[GuardedForecaster] = None
        if forecaster is not None:
            self.forecaster = GuardedForecaster(forecaster, self.breakers["forecast"])
        self.overload: Optional[OverloadController] = None
        if self.config.overload is not None:
            self.overload = OverloadController(
                self.config.overload,
                sink=self.sink,
                incident=self._incident,
                breakers={name: self.breakers[name] for name in _LADDER_AUX},
            )
        self._halted = False
        self.halt_reason: Optional[str] = None
        self.degraded_decisions: List[DegradedDecision] = []
        self.deferred_decisions: List[DegradedDecision] = []
        self.served = 0
        self.duplicates = 0
        self.healed = 0

    # ------------------------------------------------------------------
    # wiring
    def _install_guards(self, service: PlacementService) -> None:
        """Point the planner's KS cache at the breaker-guarded wrapper.

        Used at construction and re-used as the ``post_restore`` hook of
        every self-heal, so a restored planner replays its journal tail
        through the same guarded stack (same breaker, same last-good
        fallback) the original run used.
        """
        planner = service.planner
        if isinstance(planner._ks_cache, GuardedKS2D):
            return  # already guarded (recovered via GuardedRuntime.recover)
        if self.guarded_ks is None:
            self.guarded_ks = GuardedKS2D(planner._ks_cache, self.breakers["ks"])
        else:
            self.guarded_ks.inner = planner._ks_cache
        planner._ks_cache = self.guarded_ks

    def _wrap_checkpoint(self, inner: CheckpointingService) -> None:
        """Shadow ``inner.checkpoint`` with a retry-with-backoff version."""
        original = inner.checkpoint
        cfg = self.config

        def retrying_checkpoint() -> Path:
            last: Optional[Exception] = None
            for attempt in range(cfg.checkpoint_attempts):
                try:
                    return original()
                except (OSError, SnapshotError) as exc:
                    last = exc
                    self._incident(
                        "checkpoint_retry",
                        f"attempt {attempt + 1}/{cfg.checkpoint_attempts}: {exc!r}",
                    )
                    if attempt + 1 < cfg.checkpoint_attempts:
                        self._sleep(cfg.checkpoint_backoff_s * (2 ** attempt))
            raise RuntimeHaltedError(
                f"checkpoint I/O failed {cfg.checkpoint_attempts} times: {last!r}"
            ) from last

        inner.checkpoint = retrying_checkpoint  # type: ignore[method-assign]

    def _on_breaker_transition(
        self, name: str, old: str, new: str, calls: int
    ) -> None:
        self._incident("breaker", f"{name}: {old} -> {new} at call {calls}")

    def _incident(self, kind: str, detail: str) -> None:
        self.incidents.add(self.validator.offered, kind, detail)

    # ------------------------------------------------------------------
    # health
    @property
    def health(self) -> str:
        """``healthy`` / ``degraded`` / ``halted`` (the state machine)."""
        if self._halted:
            return HALTED
        if any(b.state != CLOSED for b in self.breakers.values()):
            return DEGRADED
        if self.overload is not None and self.overload.rung > 0:
            return DEGRADED
        return HEALTHY

    @property
    def halted(self) -> bool:
        return self._halted

    def _halt(self, reason: str) -> None:
        if not self._halted:
            self._halted = True
            self.halt_reason = reason
            self._incident("halt", reason)

    def _require_live(self) -> None:
        if self._halted:
            raise RuntimeHaltedError(
                f"guarded runtime is halted: {self.halt_reason}"
            )

    # ------------------------------------------------------------------
    # the pipeline
    def ingest(self, trip: TripRecord):
        """Offer one arrival to the guarded pipeline.

        Returns the list of *outcomes* this arrival caused — possibly
        empty (validated away, or parked in the reorder buffer), or
        several (the watermark advanced and released buffered events).
        Each outcome is a :class:`ServiceResponse`, ``None`` (screened
        duplicate), or a :class:`DegradedDecision`.

        Raises:
            RuntimeHaltedError: the runtime is (or just became) halted.
        """
        self._require_live()
        if not self.validator.admit(trip):
            return []
        if self.overload is None:
            return [self._apply(t) for t in self.buffer.push(trip)]
        try:
            block = TripBlock.from_trips([trip])
        except (TypeError, ValueError):
            # Un-blockable garbage the validator nevertheless accepted:
            # it lawfully skips the (columnar) controller, counted so
            # the conservation equation stays exact.
            self.overload.note_bypass(1)
            return [self._apply(t) for t in self.buffer.push(trip)]
        seqs = np.array([self.validator.offered - 1], dtype=np.int64)
        granted, deferred = self.overload.offer(block, seqs)
        outcomes = []
        for t in granted.to_trips():
            outcomes.extend(self._apply(r) for r in self.buffer.push(t))
        for t in deferred.to_trips():
            outcomes.append(self._deferred(t))
        return outcomes

    def ingest_block(self, block: TripBlock):
        """Offer a whole columnar block to the guarded pipeline.

        The hot path of :meth:`serve`: the validator evaluates all rules
        as vectorized masks, the reorder buffer releases sorted runs as
        block slices, and the released run is applied through one
        group-commit journal write.  Outcomes are bit-identical to
        per-trip :meth:`ingest` calls (same responses, same counters,
        same dead-letter rows) except that within one block the
        validator's dead-letter rows are recorded before the buffer's
        (scalar ingestion interleaves them per trip).

        Raises:
            RuntimeHaltedError: the runtime is (or just became) halted.
        """
        self._require_live()
        offered_base = self.validator.offered
        mask = self.validator.admit_block(block)
        if bool(mask.all()):
            accepted = block
        else:
            accepted = block.take(np.flatnonzero(mask))
        if self.overload is None:
            released = self.buffer.push_block(accepted)
            return self._apply_block(released.to_trips())
        if len(accepted) == len(block):
            seqs = offered_base + np.arange(len(block), dtype=np.int64)
        else:
            seqs = offered_base + np.flatnonzero(mask).astype(np.int64)
        granted, deferred = self.overload.offer(accepted, seqs)
        released = self.buffer.push_block(granted)
        outcomes = self._apply_block(released.to_trips())
        for t in deferred.to_trips():
            outcomes.append(self._deferred(t))
        return outcomes

    def finish(self):
        """End of stream: drain the admission queue and reorder buffer.

        Raises:
            RuntimeHaltedError: the runtime is (or just became) halted.
        """
        self._require_live()
        outcomes: List = []
        if self.overload is not None:
            granted, deferred = self.overload.drain()
            if len(granted):
                released = self.buffer.push_block(granted)
                outcomes.extend(self._apply_block(released.to_trips()))
            for t in deferred.to_trips():
                outcomes.append(self._deferred(t))
        outcomes.extend(self._apply_block(self.buffer.flush()))
        return outcomes

    def ingest_many(
        self, trips: Iterable[TripRecord], block_size: Optional[int] = None
    ):
        """Ingest a stream *without* the end-of-stream flush.

        Exactly :meth:`serve` minus :meth:`finish` — the fleet
        supervisor re-serves a shard's bucket chunk by chunk through
        this, so only the final generation drains the reorder buffer.

        Raises:
            ValueError: on a non-positive block size.
            RuntimeHaltedError: the runtime is (or just became) halted.
        """
        size = self.config.block_size if block_size is None else block_size
        if size <= 0:
            raise ValueError(f"block_size must be positive, got {size}")
        outcomes = []
        if size == 1:
            for trip in trips:
                outcomes.extend(self.ingest(trip))
            return outcomes
        trips = trips if isinstance(trips, list) else list(trips)
        for lo in range(0, len(trips), size):
            chunk = trips[lo : lo + size]
            try:
                block = TripBlock.from_trips(chunk)
            except (TypeError, ValueError):
                # Un-blockable rows (e.g. non-numeric garbage from the
                # chaos harness): the scalar path judges them one by
                # one, exactly as before.
                for trip in chunk:
                    outcomes.extend(self.ingest(trip))
            else:
                outcomes.extend(self.ingest_block(block))
        return outcomes

    def serve(self, trips: Iterable[TripRecord], block_size: Optional[int] = None):
        """Convenience: ingest a whole stream, then :meth:`finish`.

        Args:
            trips: the arrival stream, in arrival order.
            block_size: trips per columnar block; defaults to
                ``config.block_size``.  ``1`` forces the scalar per-trip
                pipeline — the parity oracle the blocked path is tested
                against.
        """
        outcomes = self.ingest_many(trips, block_size=block_size)
        outcomes.extend(self.finish())
        return outcomes

    def _apply(self, trip: TripRecord):
        """Route one validated, ordered event into the planner tier."""
        breaker = self.breakers["planner"]
        if not breaker.admit():
            return self._degraded(trip, "planner breaker open")
        try:
            response = self.inner.handle_trip(trip)
        except RuntimeHaltedError as exc:  # checkpoint retries exhausted
            self._halt(str(exc))
            raise
        except OSError as exc:  # journal/durability I/O is not healable
            self._halt(f"journal I/O failed: {exc!r}")
            raise RuntimeHaltedError(self.halt_reason) from exc
        except Exception as exc:  # noqa: BLE001 — planner-tier corruption
            breaker.failure()
            self._incident(
                "planner_error", f"order {trip.order_id}: {exc!r}"
            )
            return self._self_heal(trip, exc)
        breaker.success()
        if response is None:
            self.duplicates += 1
            return None
        self.served += 1
        if self.incentives is not None and response.served:
            self.incentives.offer_ride(
                response.origin_station, response.destination_station, trip.end
            )
        return response

    def _apply_block(self, trips: List[TripRecord]):
        """Route a released run of events into the planner tier at once.

        Equivalent to ``[self._apply(t) for t in trips]`` — same
        responses, same breaker event clock (one breaker call per trip),
        same counters — but the journal write is a single group commit.
        The batch route needs an exception-free interior, so it is taken
        only while the planner breaker is closed and no incentive
        mechanism is attached (incentive offers mutate the fleet between
        trips, which makes each pickup depend on the previous response);
        otherwise the scalar path serves trip by trip.
        """
        outcomes: List = []
        n = len(trips)
        i = 0
        breaker = self.breakers["planner"]
        while i < n:
            if self.incentives is not None or breaker.state != CLOSED:
                outcomes.append(self._apply(trips[i]))
                i += 1
                continue
            chunk = trips[i:]
            breaker.admit()  # closed: always granted; counts one event
            try:
                responses = self.inner.handle_block(chunk)
            except RuntimeHaltedError as exc:  # checkpoint retries exhausted
                self._halt(str(exc))
                raise
            except OSError as exc:  # group commit itself failed
                self._halt(f"journal I/O failed: {exc!r}")
                raise RuntimeHaltedError(self.halt_reason) from exc
            except BlockApplyError as exc:
                # Event clock: the prefix's trips were admitted and
                # succeeded one by one on the scalar path.
                breaker.calls += exc.index
                for response in exc.outcomes:
                    if response is None:
                        self.duplicates += 1
                    else:
                        self.served += 1
                    outcomes.append(response)
                cause = exc.cause
                if isinstance(cause, RuntimeHaltedError):
                    self._halt(str(cause))
                    raise cause
                if isinstance(cause, OSError):
                    self._halt(f"journal I/O failed: {cause!r}")
                    raise RuntimeHaltedError(self.halt_reason) from cause
                if exc.index > 0:
                    breaker.success()  # the prefix reset the failure streak
                breaker.failure()
                failing = chunk[exc.index]
                self._incident(
                    "planner_error", f"order {failing.order_id}: {cause!r}"
                )
                outcomes.extend(self._self_heal_block(chunk, exc))
                i = n
            else:
                breaker.calls += len(chunk) - 1
                breaker.success()
                for response in responses:
                    if response is None:
                        self.duplicates += 1
                    else:
                        self.served += 1
                    outcomes.append(response)
                i = n
        return outcomes

    def _self_heal_block(self, chunk: List[TripRecord], exc: BlockApplyError):
        """Self-heal after a planner failure inside a group commit.

        Same recovery as :meth:`_self_heal` — discard the poisoned
        service, rebuild from snapshot + journal tail through the
        re-guarded planner — but the whole chunk was journaled *before*
        the failure, so the recovery replay applies not just the failing
        trip but every journaled trip after it too (the write-ahead
        contract: journaled means applied on recovery).  The replayed
        responses are matched back to the chunk's tail positions;
        duplicates screened before the commit stay ``None``; a trip the
        healed service has no response for (the failure hit before its
        journal record, which group commit makes impossible for fresh
        trips, but defensively) is served degraded.
        """
        before = self.inner.applied_seq
        try:
            self.inner.close()
            healed = CheckpointingService.recover(
                self.inner.directory,
                facility_cost=self._facility_cost,
                checkpoint_every=self.inner.checkpoint_every,
                keep=self.inner.store.keep,
                durable=self.inner.store.durable,
                post_restore=self._install_guards,
            )
        except Exception as recovery_exc:  # noqa: BLE001 — recovery broke
            self._halt(f"self-heal failed: {recovery_exc!r} (after {exc.cause!r})")
            raise RuntimeHaltedError(self.halt_reason) from recovery_exc
        self._wrap_checkpoint(healed)
        self.inner = healed
        self.healed += 1
        self._incident(
            "self_heal",
            f"recovered through seq {healed.applied_seq} "
            f"(snapshot {healed.last_recovery.snapshot_seq}, "
            f"replayed {healed.last_recovery.replayed})",
        )
        gained = healed.applied_seq - before
        tail = list(healed.service.responses[-gained:]) if gained > 0 else []
        outcomes: List = []
        applied = 0
        next_tail = 0
        for offset, fresh in enumerate(exc.remaining_fresh):
            trip = chunk[exc.index + offset]
            if not fresh:
                self.duplicates += 1
                outcomes.append(None)
            elif next_tail < len(tail):
                self.served += 1
                outcomes.append(tail[next_tail])
                next_tail += 1
                applied += 1
            else:
                outcomes.append(self._degraded(trip, "self-heal lost the event"))
        if applied:
            # Event clock: the failing trip's breaker call was already
            # counted; its replayed application plus the rest of the
            # journaled tail succeeded through the healed planner.
            breaker = self.breakers["planner"]
            breaker.calls += len(exc.remaining_fresh) - 1
            breaker.success()
        return outcomes

    def _degraded(self, trip: TripRecord, reason: str):
        """Answer from the nearest-station fallback, planner untouched."""
        try:
            response = self.inner.service.degraded_assign(trip)
        except StateDriftError as exc:
            self._halt(f"degraded serve impossible: {exc}")
            raise RuntimeHaltedError(self.halt_reason) from exc
        decision = DegradedDecision(
            order_id=response.order_id,
            origin_station=response.origin_station,
            destination_station=response.destination_station,
            walking_m=response.walking_m,
            reason=reason,
        )
        self.degraded_decisions.append(decision)
        self._incident(
            "degraded_decision",
            f"order {decision.order_id} -> station "
            f"{decision.destination_station} ({reason})",
        )
        return decision

    def _deferred(self, trip: TripRecord):
        """Answer a ladder-deferred trip from the nearest-station
        fallback — the rung-2 "nearest_only" serving mode.

        Same mechanics as :meth:`_degraded` but on a dedicated ledger:
        a deferred decision records overload (the planner is fine, the
        queue is not), a degraded one records a broken planner.  The
        aggregate incident is recorded by the controller; per-row
        incidents would drown the log exactly when it matters most.
        """
        try:
            response = self.inner.service.degraded_assign(trip)
        except StateDriftError as exc:
            self._halt(f"deferred serve impossible: {exc}")
            raise RuntimeHaltedError(self.halt_reason) from exc
        decision = DegradedDecision(
            order_id=response.order_id,
            origin_station=response.origin_station,
            destination_station=response.destination_station,
            walking_m=response.walking_m,
            reason="overload ladder: nearest-station-only serving",
        )
        self.deferred_decisions.append(decision)
        return decision

    def _self_heal(self, trip: TripRecord, cause: Exception):
        """Rebuild the poisoned in-memory service from durable state.

        The failed trip was journaled before the planner raised, so the
        recovery replay re-applies it through a healthy (re-guarded)
        planner; its response is the heal's return value.  When the trip
        never reached the journal (the failure hit earlier), the healed
        service simply has no response for it and the event is served
        degraded instead — at-least-once upstream delivery covers it.
        """
        before = self.inner.applied_seq
        try:
            self.inner.close()
            healed = CheckpointingService.recover(
                self.inner.directory,
                facility_cost=self._facility_cost,
                checkpoint_every=self.inner.checkpoint_every,
                keep=self.inner.store.keep,
                durable=self.inner.store.durable,
                post_restore=self._install_guards,
            )
        except Exception as exc:  # noqa: BLE001 — recovery itself broke
            self._halt(f"self-heal failed: {exc!r} (after {cause!r})")
            raise RuntimeHaltedError(self.halt_reason) from exc
        self._wrap_checkpoint(healed)
        self.inner = healed
        self.healed += 1
        self._incident(
            "self_heal",
            f"recovered through seq {healed.applied_seq} "
            f"(snapshot {healed.last_recovery.snapshot_seq}, "
            f"replayed {healed.last_recovery.replayed})",
        )
        if healed.applied_seq > before and healed.service.responses:
            self.served += 1
            return healed.service.responses[-1]
        return self._degraded(trip, "self-heal lost the event")

    # ------------------------------------------------------------------
    def flush_logs(self, directory: Union[str, Path], durable: bool = True) -> None:
        """Flush the dead-letter and incident JSONL logs.

        The dead-letter dump is an atomic rewrite of the retained rows;
        the incident log *appends* its fresh rows instead, rotating to
        ``incidents.1.jsonl`` past the configured size cap — so a
        long-running shard's incident history survives epoch after
        epoch instead of being rewritten away.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.sink.write_jsonl(directory / "deadletter.jsonl", durable=durable)
        self.incidents.append_jsonl(
            directory / "incidents.jsonl",
            durable=durable,
            max_bytes=self.config.incident_log_max_bytes,
        )

    def consistency_check(self) -> None:
        """Verify the guarded pipeline's end-to-end accounting.

        Raises:
            StateDriftError / RuntimeError: on drift in the inner
                service, the validator, the buffer, or the glue between
                them (every emitted event must be served, screened, or
                degraded — exactly once).
        """
        self.inner.consistency_check()
        self.validator.consistency_check()
        self.buffer.consistency_check()
        into_buffer = self.buffer.admitted + self.buffer.too_late + self.buffer.shed
        if self.overload is None:
            if self.validator.accepted != into_buffer:
                raise StateDriftError(
                    f"validator passed {self.validator.accepted} events but "
                    f"the buffer accounts for {into_buffer}"
                )
        else:
            self.overload.consistency_check()
            if self.validator.accepted != self.overload.offered:
                raise StateDriftError(
                    f"validator passed {self.validator.accepted} events but "
                    f"the overload controller was offered "
                    f"{self.overload.offered}"
                )
            if self.overload.admitted != into_buffer:
                raise StateDriftError(
                    f"controller admitted {self.overload.admitted} events "
                    f"but the buffer accounts for {into_buffer}"
                )
            if self.overload.deferred != len(self.deferred_decisions):
                raise StateDriftError(
                    f"controller deferred {self.overload.deferred} events "
                    f"but {len(self.deferred_decisions)} deferred decisions "
                    "were recorded"
                )
        outcomes = self.served + self.duplicates + len(self.degraded_decisions)
        if self.buffer.emitted != outcomes:
            raise StateDriftError(
                f"buffer emitted {self.buffer.emitted} events but "
                f"{outcomes} outcomes were recorded"
            )

    def close(self) -> None:
        """Release the inner service's journal handle."""
        self.inner.close()

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: Union[str, Path],
        config: Optional[GuardConfig] = None,
        facility_cost: Optional[FacilityCostFn] = None,
        checkpoint_every: int = 200,
        keep: int = 3,
        durable: bool = True,
        incentives: Optional[IncentiveMechanism] = None,
        forecaster: Optional[Forecaster] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "GuardedRuntime":
        """Rebuild a guarded runtime from a checkpoint directory.

        The KS guard is installed *before* the journal tail replays
        (via ``post_restore``), so the tail goes through the guarded
        stack.  Breaker counters restart closed — a process restart is
        exactly the "give the subsystem another chance" event — and the
        validator/buffer restart empty: at-least-once redelivery of the
        recent stream rebuilds their state, with already-served trips
        screened by order id as usual.
        """
        cfg = config or GuardConfig()
        ks_breaker = CircuitBreaker("ks", cfg.breaker_for("ks"))
        installed: List[GuardedKS2D] = []

        def hook(service: PlacementService) -> None:
            guard = GuardedKS2D(service.planner._ks_cache, ks_breaker)
            service.planner._ks_cache = guard
            installed.append(guard)

        inner = CheckpointingService.recover(
            directory,
            facility_cost=facility_cost,
            checkpoint_every=checkpoint_every,
            keep=keep,
            durable=durable,
            post_restore=hook,
        )
        return cls(
            inner,
            cfg,
            incentives=incentives,
            forecaster=forecaster,
            facility_cost=facility_cost,
            sleep=sleep,
            _preinstalled_ks=installed[0],
        )
