"""Admission control under overload: rate limit, shed, degrade, recover.

The guard layer validates and reorders arrivals but serves everything
it is given — past saturation the backlog (and its latency) just grows
without bound.  :class:`OverloadController` closes that gap with three
cooperating mechanisms, sitting between the validator and the
watermark buffer::

    validated block ──▶ token bucket ──▶ bounded FIFO queue ──▶ buffer
                          │ no tokens        │ overflow            ▲
                          ▼                  ▼                     │
                        queue          priority shedder      rung-2 drain
                                       (dead-lettered)      (nearest-only)

* **Token-bucket rate limiter** — admission capacity in trips/sec,
  measured on *event time* (the stream's own timestamps), so a replay
  of the same stream admits, queues and sheds at exactly the same
  positions regardless of wall clock.
* **Bounded ingest queue with backpressure** — admitted-but-ungranted
  rows wait in a columnar FIFO (a list of zero-copy
  :class:`~repro.core.tripblock.TripBlock` segments).  Crossing the
  high-water mark raises an explicit ``backpressure`` incident (the
  signal an upstream feed would subscribe to); falling under the
  low-water mark clears it.
* **Priority load-shedder** — when even the queue is full, the incoming
  rows are ranked by priority class (synthetic/low-value trips first,
  journal-bound real trips last) with a *seeded* tie-break inside each
  class, and the overflow is shed.  Every shed row is dead-lettered
  with rule ``overload_shed`` and a reason, so accounting stays exact;
  the tie-break RNG is consumed only on overflow, so runs that never
  overload draw nothing.
* **Degradation ladder** — three rungs driven by queue depth (and
  optionally per-epoch latency), with streak-based hysteresis so the
  ladder climbs and descends deliberately instead of flapping:

  ====  ================  ==============================================
  rung  name              behaviour
  ====  ================  ==============================================
  0     ``full``          everything runs
  1     ``defer_aux``     KS / incentives / forecast breakers suspended
                          (their existing fallbacks answer instead)
  2     ``nearest_only``  journaled serving stops; every queued and
                          incoming trip is answered from the
                          nearest-station fallback as a *deferred*
                          decision (own ledger, never journaled)
  ====  ================  ==============================================

**The zero-overload contract.**  While the queue is empty, the ladder
is on rung 0 and the bucket has tokens for the whole block, ``offer``
returns the *same block object* untouched and draws no randomness —
the controlled pipeline is bit-identical (journal bytes, checkpoints,
responses) to an uncontrolled one.  The gauntlet and the property
suite pin this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.tripblock import TripBlock, us_to_datetime
from ..errors import StateDriftError
from .breakers import CircuitBreaker
from .validation import DeadLetterSink, RejectedTrip

__all__ = [
    "RUNGS",
    "SHED_RULE",
    "LadderConfig",
    "OverloadConfig",
    "TokenBucket",
    "OverloadController",
]

#: Ladder rung names, by rung index.
RUNGS = ("full", "defer_aux", "nearest_only")

#: Dead-letter rule of rows removed by the priority shedder.
SHED_RULE = "overload_shed"

#: Breakers the ladder suspends on rung >= 1 (their fallbacks serve).
_AUX_BREAKERS = ("ks", "incentive", "forecast")


@dataclass(frozen=True)
class LadderConfig:
    """Hysteresis policy of the degradation ladder.

    Attributes:
        high_queue: queue-depth fraction (of ``queue_limit``) at or
            above which an observation counts toward escalation.
        low_queue: fraction at or below which an observation counts
            toward de-escalation.  Depths between the two reset both
            streaks — the dead band of the hysteresis.
        high_latency_s: per-epoch serve latency at or above which an
            observation escalates regardless of depth.  ``0`` disables
            the latency driver (the default: wall-clock-driven
            transitions would make journal content depend on host
            speed).
        low_latency_s: latency that must also hold for a de-escalation
            observation while the latency driver is enabled.
        escalate_after: consecutive high observations before climbing
            one rung.
        deescalate_after: consecutive low observations before stepping
            down one rung (higher than ``escalate_after`` by default:
            degrade fast, recover deliberately).

    Raises:
        ValueError: on fractions outside ``[0, 1]``, inverted bands, or
            non-positive streak lengths.
    """

    high_queue: float = 0.6
    low_queue: float = 0.2
    high_latency_s: float = 0.0
    low_latency_s: float = 0.0
    escalate_after: int = 2
    deescalate_after: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_queue <= self.high_queue <= 1.0:
            raise ValueError(
                f"need 0 <= low_queue <= high_queue <= 1, got "
                f"{self.low_queue}/{self.high_queue}"
            )
        if self.high_latency_s < 0 or self.low_latency_s < 0:
            raise ValueError("latency thresholds must be >= 0")
        if self.high_latency_s > 0 and self.low_latency_s > self.high_latency_s:
            raise ValueError(
                f"need low_latency_s <= high_latency_s, got "
                f"{self.low_latency_s}/{self.high_latency_s}"
            )
        if self.escalate_after <= 0 or self.deescalate_after <= 0:
            raise ValueError("escalate_after and deescalate_after must be positive")


@dataclass(frozen=True)
class OverloadConfig:
    """Admission-control policy of one guarded runtime (one shard).

    Attributes:
        rate_per_s: sustained admission rate of the token bucket, in
            trips per *event-time* second.
        burst: bucket capacity — the largest instantaneous burst
            admitted without queueing (and the bucket's genesis fill).
        queue_limit: bounded-ingest-queue capacity in rows; beyond it
            the shedder runs.
        high_water / low_water: queue-depth fractions at which the
            explicit backpressure signal raises / clears.
        shed_policy: ``"synthetic_first"`` sheds priority class 0
            (synthetic / low-value trips, marked by ``user_id < 0``)
            before class 1 (journal-bound real trips);
            ``"uniform"`` treats all rows as one class.
        seed: RNG seed of the within-class shed tie-break — consumed
            only on overflow, so non-overloaded runs draw nothing.
        ladder: degradation-ladder hysteresis policy.

    Raises:
        ValueError: on non-positive rate/burst/queue, inverted water
            marks, or an unknown shed policy.
    """

    rate_per_s: float = 50.0
    burst: int = 512
    queue_limit: int = 2048
    high_water: float = 0.75
    low_water: float = 0.25
    shed_policy: str = "synthetic_first"
    seed: int = 0
    ladder: LadderConfig = field(default_factory=LadderConfig)

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {self.rate_per_s}")
        if self.burst <= 0 or self.queue_limit <= 0:
            raise ValueError("burst and queue_limit must be positive")
        if not 0.0 <= self.low_water <= self.high_water <= 1.0:
            raise ValueError(
                f"need 0 <= low_water <= high_water <= 1, got "
                f"{self.low_water}/{self.high_water}"
            )
        if self.shed_policy not in ("synthetic_first", "uniform"):
            raise ValueError(
                f"unknown shed_policy {self.shed_policy!r} "
                "(known: synthetic_first, uniform)"
            )


class TokenBucket:
    """Token bucket on the stream's own event clock.

    Refill is driven by :meth:`advance` with the running maximum of the
    observed trip timestamps — never wall clock — so a replay of the
    same stream is granted tokens at exactly the same positions.
    """

    def __init__(self, rate_per_s: float, burst: int) -> None:
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_us: Optional[int] = None

    def advance(self, now_us: int) -> None:
        """Refill for event time reaching ``now_us`` (monotone)."""
        now_us = int(now_us)
        if self._last_us is None:
            self._last_us = now_us
            return
        if now_us > self._last_us:
            self.tokens = min(
                self.burst,
                self.tokens + (now_us - self._last_us) * self.rate_per_s / 1e6,
            )
            self._last_us = now_us

    def try_consume(self, n: int) -> bool:
        """Take exactly ``n`` tokens, or none at all."""
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def consume_up_to(self, want: int) -> int:
        """Take as many whole tokens as available, at most ``want``."""
        grant = int(min(int(want), math.floor(self.tokens)))
        if grant > 0:
            self.tokens -= grant
        return grant


class OverloadController:
    """Admission control + degradation ladder for one guarded runtime.

    Args:
        config: the policy.
        sink: dead-letter sink shed rows are recorded into (shared with
            the validator, so ``deadletter.jsonl`` holds both).
        incident: ``(kind, detail)`` callback into the runtime's
            incident log (``backpressure`` / ``overload_shed`` /
            ``ladder`` / ``overload_deferred`` kinds).
        breakers: the aux breakers (ks/incentive/forecast) the ladder
            suspends on rung >= 1; optional for standalone use.
    """

    def __init__(
        self,
        config: OverloadConfig,
        sink: DeadLetterSink,
        incident: Optional[Callable[[str, str], None]] = None,
        breakers: Optional[Dict[str, CircuitBreaker]] = None,
    ) -> None:
        self.config = config
        self.sink = sink
        self._incident = incident or (lambda kind, detail: None)
        self.breakers = breakers or {}
        self.bucket = TokenBucket(config.rate_per_s, config.burst)
        self._segments: List[TripBlock] = []
        self._depth = 0
        self._max_us: Optional[int] = None
        self._rng = np.random.default_rng(config.seed)
        self._latency_s: Optional[float] = None
        self._high_streak = 0
        self._low_streak = 0
        self.rung = 0
        self.backpressure = False
        #: ``(event_us, old_rung, new_rung)`` ladder history.
        self.transitions: List[Tuple[int, int, int]] = []
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.deferred = 0
        self.backpressure_signals = 0
        self.shed_events = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Rows currently waiting in the bounded ingest queue."""
        return self._depth

    @property
    def rung_name(self) -> str:
        return RUNGS[self.rung]

    def observe_latency(self, seconds: float) -> None:
        """Feed one per-epoch serve latency into the ladder.

        A no-op unless the ladder's latency thresholds are enabled —
        the deterministic default keeps journal content independent of
        host speed.
        """
        self._latency_s = float(seconds)

    # ------------------------------------------------------------------
    def offer(
        self, block: TripBlock, seqs: np.ndarray
    ) -> Tuple[TripBlock, TripBlock]:
        """Offer validated rows; returns ``(granted, deferred)`` blocks.

        ``granted`` rows proceed into the watermark buffer (the
        journaled path); ``deferred`` rows (rung 2 only) must be
        answered from the nearest-station fallback.  ``seqs`` carries
        each row's offered-stream position for dead-letter provenance.

        Zero-overload fast path: with an empty queue, rung 0 and tokens
        for the whole block, the input object itself is returned —
        bit-identical downstream behaviour, no copies, no RNG.
        """
        n = len(block)
        self.offered += n
        if n:
            latest = int(block.start_us.max())
            if self._max_us is None or latest > self._max_us:
                self._max_us = latest
            self.bucket.advance(self._max_us)
        if not self._segments and self.rung == 0 and self.bucket.try_consume(n):
            self.admitted += n
            return block, TripBlock.empty()

        # -- overflow: rank incoming rows, shed the excess -------------
        excess = self._depth + n - self.config.queue_limit
        if excess > 0:
            block, seqs, n = self._shed_overflow(block, seqs, excess)
        if n:
            self._segments.append(block)
            self._depth += n
        # Ladder and backpressure observe the post-enqueue, pre-dequeue
        # depth: the pressure the queue actually reached this round.
        self._observe(self._depth)

        if self.rung >= 2:
            deferred = self._pop(self._depth)
            count = len(deferred)
            if count:
                self.deferred += count
                self._incident(
                    "overload_deferred",
                    f"{count} trip(s) answered nearest-station on rung "
                    f"{RUNGS[self.rung]!r}",
                )
            return TripBlock.empty(), deferred
        granted = self._pop(self.bucket.consume_up_to(self._depth))
        self.admitted += len(granted)
        return granted, TripBlock.empty()

    def note_bypass(self, n: int) -> None:
        """Account rows that lawfully skipped the controller.

        The scalar fallback for un-blockable garbage rows feeds the
        buffer directly; counting them here keeps the conservation
        equation (`offered == admitted + shed + deferred + depth`)
        exact.
        """
        self.offered += n
        self.admitted += n

    def drain(self) -> Tuple[TripBlock, TripBlock]:
        """End of stream: empty the queue, ignoring the token budget.

        On rungs 0–1 the backlog is granted into the journaled path (a
        drain is not an admission decision — the trips were already
        admitted into the queue); on rung 2 it is deferred like
        everything else.
        """
        if self._depth == 0:
            return TripBlock.empty(), TripBlock.empty()
        rest = self._pop(self._depth)
        if self.rung >= 2:
            self.deferred += len(rest)
            self._incident(
                "overload_deferred",
                f"{len(rest)} queued trip(s) deferred at end of stream "
                f"(rung {RUNGS[self.rung]!r})",
            )
            return TripBlock.empty(), rest
        self.admitted += len(rest)
        return rest, TripBlock.empty()

    # ------------------------------------------------------------------
    def _classes(self, block: TripBlock) -> np.ndarray:
        """Priority class per row — lower sheds first."""
        if self.config.shed_policy == "synthetic_first":
            return np.where(block.user_id < 0, 0, 1).astype(np.int8)
        return np.zeros(len(block), dtype=np.int8)

    def _shed_overflow(
        self, block: TripBlock, seqs: np.ndarray, excess: int
    ) -> Tuple[TripBlock, np.ndarray, int]:
        """Shed ``excess`` incoming rows, lowest priority class first.

        Queued rows are never shed — they were admitted into the queue
        under an earlier decision; revoking it would make admission
        order-dependent.  The within-class tie-break is the only RNG
        draw in the controller, consumed exclusively here.
        """
        n = len(block)
        excess = min(excess, n)
        classes = self._classes(block)
        keys = self._rng.random(n)
        order = np.lexsort((keys, classes))
        victims = np.sort(order[:excess])
        survivors = np.sort(order[excess:])
        limit = self.config.queue_limit
        for i in victims.tolist():
            self.sink.add(
                RejectedTrip(
                    seq=int(seqs[i]),
                    rule=SHED_RULE,
                    reason=(
                        f"ingest queue full ({limit} rows): shed priority "
                        f"class {int(classes[i])}"
                    ),
                    order_id=int(block.order_id[i]),
                    start_time=us_to_datetime(block.start_us[i]).isoformat(),
                )
            )
        self.shed += int(victims.size)
        self.shed_events += 1
        self._incident(
            SHED_RULE,
            f"shed {victims.size} of {n} incoming row(s) at queue "
            f"{self._depth}/{limit}",
        )
        return block.take(survivors), seqs[survivors], int(survivors.size)

    def _pop(self, k: int) -> TripBlock:
        """Dequeue the first ``k`` rows (FIFO, zero-copy where possible)."""
        if k <= 0:
            return TripBlock.empty()
        parts: List[TripBlock] = []
        need = k
        while need and self._segments:
            seg = self._segments[0]
            if len(seg) <= need:
                parts.append(seg)
                self._segments.pop(0)
                need -= len(seg)
            else:
                parts.append(seg[:need])
                self._segments[0] = seg[need:]
                need = 0
        taken = k - need
        self._depth -= taken
        if not parts:
            return TripBlock.empty()
        return parts[0] if len(parts) == 1 else TripBlock.concat(parts)

    # ------------------------------------------------------------------
    def _observe(self, depth: int) -> None:
        limit = self.config.queue_limit
        if not self.backpressure and depth >= self.config.high_water * limit:
            self.backpressure = True
            self.backpressure_signals += 1
            self._incident("backpressure", f"raised: queue {depth}/{limit}")
        elif self.backpressure and depth <= self.config.low_water * limit:
            self.backpressure = False
            self._incident("backpressure", f"cleared: queue {depth}/{limit}")

        lad = self.config.ladder
        high = depth >= lad.high_queue * limit
        low = depth <= lad.low_queue * limit
        if lad.high_latency_s > 0 and self._latency_s is not None:
            high = high or self._latency_s >= lad.high_latency_s
            low = low and self._latency_s <= lad.low_latency_s
        if high:
            self._high_streak += 1
            self._low_streak = 0
        elif low:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0
        if self._high_streak >= lad.escalate_after and self.rung < len(RUNGS) - 1:
            self._set_rung(self.rung + 1, depth)
            self._high_streak = 0
        elif self._low_streak >= lad.deescalate_after and self.rung > 0:
            self._set_rung(self.rung - 1, depth)
            self._low_streak = 0

    def _set_rung(self, new: int, depth: int) -> None:
        old, self.rung = self.rung, new
        self.transitions.append((self._max_us or 0, old, new))
        self._incident(
            "ladder",
            f"{RUNGS[old]} -> {RUNGS[new]} (queue {depth}/"
            f"{self.config.queue_limit})",
        )
        if old == 0 and new >= 1:
            for name in _AUX_BREAKERS:
                breaker = self.breakers.get(name)
                if breaker is not None:
                    breaker.suspend()
        elif new == 0:
            for name in _AUX_BREAKERS:
                breaker = self.breakers.get(name)
                if breaker is not None:
                    breaker.resume()

    # ------------------------------------------------------------------
    def consistency_check(self) -> None:
        """Conservation: every offered row is accounted exactly once.

        Raises:
            StateDriftError: when
                ``offered != admitted + shed + deferred + depth``.
        """
        accounted = self.admitted + self.shed + self.deferred + self._depth
        if self.offered != accounted:
            raise StateDriftError(
                f"overload accounting drift: offered={self.offered} but "
                f"admitted={self.admitted} + shed={self.shed} + "
                f"deferred={self.deferred} + queued={self._depth} "
                f"= {accounted}"
            )
        if self._depth != sum(len(s) for s in self._segments):
            raise StateDriftError(
                f"queue depth counter {self._depth} disagrees with "
                f"segments ({sum(len(s) for s in self._segments)} rows)"
            )
