"""Semantic input validation at the ingest boundary.

A live dockless feed is never clean: coordinates wander outside the
city plane, timestamps jump backwards across device clock resets,
battery telemetry reports 470%, and a bike occasionally "teleports"
across town between two consecutive trips.  The CSV loader already
quarantines *syntactically* broken rows; :class:`TripValidator` is the
second line of defence — it checks rows that parsed fine but are
*semantically* impossible, before they can reach the planner and
corrupt online state (a NaN coordinate poisons every later
nearest-station query; a 50 km "trip" drains a battery model built for
a city).

Every rule keeps its own rejection counter and every rejected trip is
diverted — with the rule name and a human-readable reason — into a
:class:`DeadLetterSink`, the streaming sibling of the loader's
:class:`~repro.datasets.mobike.QuarantineReport`.  The sink can be
dumped atomically to a JSONL file for offline triage, so a rejected
event is never silently lost: ``accepted + dead-lettered == offered``
is an invariant the property tests pin down.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.tripblock import TripBlock, datetime_to_us, us_to_datetime
from ..datasets.trips import TripRecord
from ..geo.points import BoundingBox, Point
from ..ioutil import atomic_write_text

__all__ = [
    "ValidationConfig",
    "RejectedTrip",
    "DeadLetterSink",
    "TripValidator",
]


@dataclass(frozen=True)
class ValidationConfig:
    """Semantic invariants enforced at the ingest boundary.

    Attributes:
        bounds: the city plane; both trip endpoints must fall inside
            (use the demand grid's box with a margin).  ``None`` skips
            the bounds rule.
        max_backwards_s: how far a trip's ``start_time`` may precede the
            latest one already accepted before it counts as a clock
            fault rather than benign jitter.  The watermark buffer
            downstream tolerates *bounded* disorder; this rule rejects
            the unbounded kind (a device clock reset to last year).
        max_trip_m: longest plausible straight-line trip; also the
            finiteness guard (NaN/inf distances fail this rule).
        max_bike_speed_mps: fastest a bike may travel between the end
            of its previous trip and the start of the next one (the
            teleport rule).  ``0`` (the default) disables the rule:
            feeds whose rebalancing moves are invisible — including the
            synthetic workloads, which place each trip independently —
            would reject legitimate trips, so the rule is opt-in for
            feeds that report every movement.  Exact redeliveries of
            the previous trip (same order id) are exempt; the duplicate
            screen downstream owns those.
        battery_range: valid closed range for the optional per-trip
            battery reading; readings outside it (the 470% case) are
            rejected, absent readings pass.

    Raises:
        ValueError: on non-positive limits or an inverted battery range.
    """

    bounds: Optional[BoundingBox] = None
    max_backwards_s: float = 300.0
    max_trip_m: float = 50_000.0
    max_bike_speed_mps: float = 0.0
    battery_range: Tuple[float, float] = (0.0, 1.0)

    def __post_init__(self) -> None:
        if self.max_backwards_s < 0:
            raise ValueError(
                f"max_backwards_s must be non-negative, got {self.max_backwards_s}"
            )
        if self.max_trip_m <= 0:
            raise ValueError(f"max_trip_m must be positive, got {self.max_trip_m}")
        if self.max_bike_speed_mps < 0:
            raise ValueError(
                f"max_bike_speed_mps must be non-negative, got {self.max_bike_speed_mps}"
            )
        lo, hi = self.battery_range
        if not lo <= hi:
            raise ValueError(f"battery_range is inverted: {self.battery_range}")


@dataclass(frozen=True)
class RejectedTrip:
    """One dead-lettered event: the trip, which rule fired, and why.

    ``seq`` is the 0-based position in the offered stream, so a triage
    run can line rejections back up against the upstream feed.
    """

    seq: int
    rule: str
    reason: str
    order_id: int
    start_time: str


class DeadLetterSink:
    """Collects rejected events instead of dropping them on the floor.

    The streaming counterpart of the CSV loader's
    :class:`~repro.datasets.mobike.QuarantineReport`: bounded memory
    (the full :class:`RejectedTrip` detail is kept for the most recent
    ``keep`` rejections, counters are exact forever) and an atomic JSONL
    dump for offline inspection.
    """

    def __init__(self, keep: int = 10_000) -> None:
        if keep <= 0:
            raise ValueError(f"keep must be positive, got {keep}")
        self.keep = keep
        self.rows: List[RejectedTrip] = []
        self.total = 0
        self.by_rule: Dict[str, int] = {}

    def __len__(self) -> int:
        return self.total

    def __bool__(self) -> bool:
        return self.total > 0

    def __iter__(self):
        return iter(self.rows)

    def add(self, rejected: RejectedTrip) -> None:
        """Record one rejection (detail rows rotate past ``keep``)."""
        self.total += 1
        self.by_rule[rejected.rule] = self.by_rule.get(rejected.rule, 0) + 1
        self.rows.append(rejected)
        if len(self.rows) > self.keep:
            del self.rows[: len(self.rows) - self.keep]

    def to_text(self, limit: int = 20) -> str:
        """Human-readable summary, at most ``limit`` detail lines."""
        per_rule = ", ".join(
            f"{rule}={count}" for rule, count in sorted(self.by_rule.items())
        )
        lines = [f"{self.total} event(s) dead-lettered ({per_rule or 'none'})"]
        for entry in self.rows[-limit:]:
            lines.append(
                f"  seq {entry.seq} order {entry.order_id}: "
                f"{entry.rule}: {entry.reason}"
            )
        return "\n".join(lines)

    def write_jsonl(self, path: Union[str, Path], durable: bool = True) -> Path:
        """Dump the retained detail rows atomically as JSON lines."""
        lines = [
            json.dumps(
                {
                    "seq": r.seq,
                    "rule": r.rule,
                    "reason": r.reason,
                    "order_id": r.order_id,
                    "start_time": r.start_time,
                }
            )
            for r in self.rows
        ]
        return atomic_write_text(path, "\n".join(lines) + "\n", durable=durable)


class TripValidator:
    """Stateful semantic validator for a live trip stream.

    Rules run in a fixed order and the *first* failure names the
    rejection (one rejection per trip, so per-rule counters sum to the
    rejected total).  The validator is stateful — the monotonicity rule
    tracks the latest accepted timestamp, the teleport rule the last
    known position and time of each bike — and deterministic: the same
    stream always yields the same accept/reject sequence, which is what
    lets the guarded runtime's recovery path re-derive identical
    decisions by re-feeding the stream.

    Args:
        config: the invariants to enforce.
        sink: where rejections go; a fresh private sink when omitted.
    """

    #: Rule names in evaluation order (also the counter keys).
    RULES = (
        "finite",
        "bounds",
        "clock",
        "distance",
        "battery",
        "teleport",
    )

    def __init__(
        self,
        config: Optional[ValidationConfig] = None,
        sink: Optional[DeadLetterSink] = None,
    ) -> None:
        self.config = config or ValidationConfig()
        self.sink = sink if sink is not None else DeadLetterSink()
        self.offered = 0
        self.accepted = 0
        self.counters: Dict[str, int] = {rule: 0 for rule in self.RULES}
        self._latest: Optional[datetime] = None
        self._bike_last: Dict[int, Tuple[int, datetime, float, float]] = {}

    # ------------------------------------------------------------------
    def _first_violation(self, trip: TripRecord) -> Optional[Tuple[str, str]]:
        cfg = self.config
        coords = (trip.start.x, trip.start.y, trip.end.x, trip.end.y)
        if not all(math.isfinite(c) for c in coords):
            shown = ", ".join(f"{float(c):.1f}" for c in coords)
            return "finite", f"non-finite coordinate in ({shown})"
        if cfg.bounds is not None:
            for label, point in (("start", trip.start), ("end", trip.end)):
                if not cfg.bounds.contains(point):
                    return (
                        "bounds",
                        f"{label} ({point.x:.1f}, {point.y:.1f}) outside the "
                        "city plane",
                    )
        if self._latest is not None:
            back = (self._latest - trip.start_time).total_seconds()
            if back > cfg.max_backwards_s:
                return (
                    "clock",
                    f"start_time {back:.0f}s behind the stream "
                    f"(limit {cfg.max_backwards_s:.0f}s)",
                )
        if not trip.distance <= cfg.max_trip_m:  # also catches NaN
            return (
                "distance",
                f"trip length {trip.distance:.0f} m exceeds {cfg.max_trip_m:.0f} m",
            )
        battery = getattr(trip, "battery", None)
        if battery is not None:
            lo, hi = cfg.battery_range
            if not (math.isfinite(battery) and lo <= battery <= hi):
                return (
                    "battery",
                    f"battery {battery!r} outside [{lo}, {hi}]",
                )
        if cfg.max_bike_speed_mps > 0:
            last = self._bike_last.get(trip.bike_id)
            if last is not None:
                last_order, t_prev, x_prev, y_prev = last
                gap_s = (trip.start_time - t_prev).total_seconds()
                hop_m = math.hypot(trip.start.x - x_prev, trip.start.y - y_prev)
                if (
                    trip.order_id != last_order  # redelivery: dedup's job
                    and hop_m > max(gap_s, 0.0) * cfg.max_bike_speed_mps
                ):
                    return (
                        "teleport",
                        f"bike {trip.bike_id} moved {hop_m:.0f} m in "
                        f"{max(gap_s, 0.0):.0f}s",
                    )
        return None

    def admit(self, trip: TripRecord) -> bool:
        """Validate one event; dead-letters and returns False on failure.

        Accepted trips advance the validator's clock and the bike's last
        known position; rejected trips leave the state untouched (a
        garbage event must not poison the invariants used to judge the
        next one).
        """
        seq = self.offered
        self.offered += 1
        violation = self._first_violation(trip)
        if violation is not None:
            rule, reason = violation
            self.counters[rule] += 1
            self.sink.add(
                RejectedTrip(
                    seq=seq,
                    rule=rule,
                    reason=reason,
                    order_id=trip.order_id,
                    start_time=trip.start_time.isoformat(),
                )
            )
            return False
        self.accepted += 1
        if self._latest is None or trip.start_time > self._latest:
            self._latest = trip.start_time
        self._bike_last[trip.bike_id] = (
            trip.order_id, trip.start_time, trip.end.x, trip.end.y,
        )
        return True

    # ------------------------------------------------------------------
    def admit_block(self, block: TripBlock) -> np.ndarray:
        """Validate a whole block; returns the per-trip accept mask.

        Bit-identical to calling :meth:`admit` once per trip in order —
        same counters, same dead-letter rows (rule, reason string, seq),
        same ``_latest`` clock — but every rule is evaluated as one
        vectorized mask over the block's columns.  The first-violation
        attribution is reproduced by masking each rule with the
        negations of the rules before it.

        Two scalar escape hatches preserve exactness:

        * the **teleport** rule is inherently sequential per bike, so a
          config that enables it routes the whole block through the
          scalar :meth:`admit` loop;
        * rows whose vectorized trip length lands within a few ulps of
          ``max_trip_m`` are re-judged with the scalar ``math.hypot``
          (``np.hypot`` is not bitwise interchangeable with it — see
          ``core/replay.py``).

        The blocked path does not maintain the per-bike last-position
        table (``_bike_last``): with the teleport rule disabled — the
        only configuration that reaches this path — nothing reads it.
        """
        cfg = self.config
        n = len(block)
        if n == 0:
            return np.zeros(0, dtype=bool)
        if cfg.max_bike_speed_mps > 0:
            return np.asarray([self.admit(t) for t in block.to_trips()], dtype=bool)

        sx, sy = block.start_x, block.start_y
        ex, ey = block.end_x, block.end_y
        finite_ok = (
            np.isfinite(sx) & np.isfinite(sy) & np.isfinite(ex) & np.isfinite(ey)
        )
        if cfg.bounds is not None:
            b = cfg.bounds
            bounds_ok = (
                (b.min_x <= sx) & (sx <= b.max_x)
                & (b.min_y <= sy) & (sy <= b.max_y)
                & (b.min_x <= ex) & (ex <= b.max_x)
                & (b.min_y <= ey) & (ey <= b.max_y)
            )
        else:
            bounds_ok = np.ones(n, dtype=bool)

        dist = np.hypot(sx - ex, sy - ey)
        dist_fail = ~(dist <= cfg.max_trip_m)  # NaN/inf distances fail too
        # Ulp guard: np.hypot and math.hypot agree to ~1 ulp; only rows
        # within a few ulps of the limit can flip, re-judge those scalar.
        tol = 4.0 * np.spacing(np.float64(cfg.max_trip_m))
        near = np.isfinite(dist) & (np.abs(dist - cfg.max_trip_m) <= tol)
        for i in np.flatnonzero(near):
            d = math.hypot(float(sx[i]) - float(ex[i]), float(sy[i]) - float(ey[i]))
            dist_fail[i] = not d <= cfg.max_trip_m

        lo, hi = cfg.battery_range
        bat = block.battery
        bat_fail = block.has_battery & ~(
            np.isfinite(bat) & (lo <= bat) & (bat <= hi)
        )

        # Clock rule: the running "latest accepted" is a prefix maximum.
        # Trips failing only the clock rule have start < running max, so
        # the prefix max over stateless-passing trips equals the prefix
        # max over fully-accepted trips — the recurrence vectorizes.
        stateless_ok = finite_ok & bounds_ok & ~dist_fail & ~bat_fail
        S = block.start_us
        int_min = np.iinfo(np.int64).min
        cum = np.maximum.accumulate(np.where(stateless_ok, S, int_min))
        prev = np.empty(n, dtype=np.int64)
        prev[0] = int_min
        prev[1:] = cum[:-1]
        latest_us = None if self._latest is None else datetime_to_us(self._latest)
        if latest_us is not None:
            np.maximum(prev, latest_us, out=prev)
        has_prev = prev != int_min
        back_us = np.subtract(
            prev, S, out=np.zeros(n, dtype=np.int64), where=has_prev
        )
        clock_fail = has_prev & ((back_us / 1e6) > cfg.max_backwards_s)

        fail_finite = ~finite_ok
        fail_bounds = finite_ok & ~bounds_ok
        fail_clock = finite_ok & bounds_ok & clock_fail
        fail_dist = finite_ok & bounds_ok & ~clock_fail & dist_fail
        fail_bat = finite_ok & bounds_ok & ~clock_fail & ~dist_fail & bat_fail
        mask = stateless_ok & ~clock_fail

        base = self.offered
        self.offered += n
        n_accept = int(np.count_nonzero(mask))
        self.accepted += n_accept
        if n_accept:
            new_latest = int(S[mask].max())
            if latest_us is None or new_latest > latest_us:
                self._latest = us_to_datetime(new_latest)

        if n_accept < n:
            rules = np.zeros(n, dtype=np.int8)
            for code, rule_mask in enumerate(
                (fail_finite, fail_bounds, fail_clock, fail_dist, fail_bat),
                start=1,
            ):
                rules[rule_mask] = code
            back_s = back_us / 1e6
            for i in np.flatnonzero(~mask):
                rule, reason = self._block_reason(
                    block, int(i), int(rules[i]), float(back_s[i])
                )
                self.counters[rule] += 1
                self.sink.add(
                    RejectedTrip(
                        seq=base + int(i),
                        rule=rule,
                        reason=reason,
                        order_id=int(block.order_id[i]),
                        start_time=us_to_datetime(block.start_us[i]).isoformat(),
                    )
                )
        return mask

    def _block_reason(
        self, block: TripBlock, i: int, code: int, back_s: float
    ) -> Tuple[str, str]:
        """Rebuild the scalar rejection (rule, reason) for block row ``i``."""
        cfg = self.config
        sx, sy = float(block.start_x[i]), float(block.start_y[i])
        ex, ey = float(block.end_x[i]), float(block.end_y[i])
        if code == 1:
            shown = ", ".join(f"{c:.1f}" for c in (sx, sy, ex, ey))
            return "finite", f"non-finite coordinate in ({shown})"
        if code == 2:
            if not cfg.bounds.contains(Point(sx, sy)):
                label, px, py = "start", sx, sy
            else:
                label, px, py = "end", ex, ey
            return (
                "bounds",
                f"{label} ({px:.1f}, {py:.1f}) outside the city plane",
            )
        if code == 3:
            return (
                "clock",
                f"start_time {back_s:.0f}s behind the stream "
                f"(limit {cfg.max_backwards_s:.0f}s)",
            )
        if code == 4:
            d = math.hypot(sx - ex, sy - ey)
            return (
                "distance",
                f"trip length {d:.0f} m exceeds {cfg.max_trip_m:.0f} m",
            )
        battery = float(block.battery[i])
        lo, hi = cfg.battery_range
        return "battery", f"battery {battery!r} outside [{lo}, {hi}]"

    # ------------------------------------------------------------------
    @property
    def rejected(self) -> int:
        """Events dead-lettered by this validator so far."""
        return self.offered - self.accepted

    def consistency_check(self) -> None:
        """Accounting invariant: counters sum to the rejected total.

        Raises:
            RuntimeError: when a rejection was lost or double-counted.
        """
        total = sum(self.counters.values())
        if total != self.rejected or self.accepted + total != self.offered:
            raise RuntimeError(
                f"validator accounting drift: offered={self.offered} "
                f"accepted={self.accepted} rule counts={total}"
            )
