"""Guarded online runtime: the robustness layer of the live service.

Everything between the raw event feed and the crash-safe placement
service lives here:

* :mod:`~repro.guard.validation` — semantic input validation with
  per-rule counters and a dead-letter sink;
* :mod:`~repro.guard.reorder` — watermark-based reordering of bounded
  out-of-order streams;
* :mod:`~repro.guard.breakers` — deterministic circuit breakers and the
  per-subsystem degradations (KS test, incentives, forecasting);
* :mod:`~repro.guard.overload` — admission control for traffic past
  saturation: event-time token bucket, bounded ingest queue with
  backpressure, seeded priority load-shedder, and a three-rung
  degradation ladder with hysteresis;
* :mod:`~repro.guard.runtime` — the :class:`GuardedRuntime` supervisor
  tying it together with a healthy/degraded/halted state machine,
  self-healing through crash recovery, and a structured incident log.

``python -m repro.guard`` runs the chaos gauntlet: a faulted 5k-trip
stream through the full guarded stack, with end-to-end accounting and a
zero-fault bit-identity check against the unguarded service.
"""

from .breakers import (
    BreakerConfig,
    CircuitBreaker,
    GuardedForecaster,
    GuardedIncentives,
    GuardedKS2D,
)
from .overload import (
    RUNGS,
    SHED_RULE,
    LadderConfig,
    OverloadConfig,
    OverloadController,
    TokenBucket,
)
from .reorder import WatermarkBuffer
from .runtime import (
    DEGRADED,
    HALTED,
    HEALTHY,
    DegradedDecision,
    GuardConfig,
    GuardedRuntime,
    Incident,
    IncidentLog,
)
from .validation import (
    DeadLetterSink,
    RejectedTrip,
    TripValidator,
    ValidationConfig,
)

__all__ = [
    "ValidationConfig",
    "RejectedTrip",
    "DeadLetterSink",
    "TripValidator",
    "WatermarkBuffer",
    "BreakerConfig",
    "CircuitBreaker",
    "GuardedKS2D",
    "GuardedIncentives",
    "GuardedForecaster",
    "GuardConfig",
    "GuardedRuntime",
    "Incident",
    "IncidentLog",
    "DegradedDecision",
    "HEALTHY",
    "DEGRADED",
    "HALTED",
    "RUNGS",
    "SHED_RULE",
    "LadderConfig",
    "OverloadConfig",
    "OverloadController",
    "TokenBucket",
]
