"""The chaos gauntlet: ``python -m repro.guard``.

Runs the full guarded stack against a hostile 5k-trip stream —
duplicates, drops, bounded reorder, clock skew, garbage fields, and
injected KS/incentive exceptions — and verifies that

* the run completes without an uncaught exception and never halts
  (degraded is fine; halted means durability was lost, which no stream
  fault should cause);
* every rejected event is accounted for in the dead-letter sink
  (``accepted + dead-lettered == offered``, end to end);
* the injector's fault counters are consistent with the damage actually
  observed in the stream (a fault that stops firing fails the smoke);
* with **all fault rates at zero**, the guarded runtime is bit-identical
  to the unguarded :class:`~repro.resilience.CheckpointingService` on
  the same seed — responses and full checkpoint state (modulo the KS
  wall-clock timing, which is not part of logical state).

``--shards N`` (N > 1) runs the geo-sharded variant instead: the same
clean stream served through :class:`repro.shard.ShardedRuntime` must be
bit-identical, shard by shard, to standalone single-shard oracles built
from the same specs (outcomes *and* journal bytes), and the hostile
stream must stay fully accounted for across the fleet
(``served + degraded + duplicates + dead-lettered == offered`` on every
shard, summing to the stream length).

Exit status 0 on success, 1 with a FAIL line per violation — same
contract as ``python -m repro.resilience.chaos``, so CI can run both.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from datetime import datetime, timedelta
from pathlib import Path
from typing import List

import numpy as np

from ..core.costs import constant_facility_cost
from ..core.esharing import EsharingConfig, EsharingPlanner
from ..core.streaming import PlacementService
from ..datasets.trips import TripRecord
from ..energy.fleet import Fleet
from ..geo.points import BoundingBox, Point
from ..incentives.charging_cost import ChargingCostParams
from ..incentives.mechanism import IncentiveMechanism
from ..resilience.chaos import ChaosConfig, FaultInjector
from ..resilience.service import CheckpointingService, constant_cost_spec
from .runtime import HALTED, GuardConfig, GuardedRuntime
from .validation import ValidationConfig

PLANE = 2000.0
COST_VALUE = 8000.0


def _make_trips(n: int, seed: int) -> List[TripRecord]:
    rng = np.random.default_rng(seed)
    t0 = datetime(2017, 5, 10)
    return [
        TripRecord(
            order_id=i, user_id=i % 40, bike_id=i % 60, bike_type=1,
            start_time=t0 + timedelta(seconds=30 * i),
            start=Point(*rng.uniform(0.0, PLANE, 2)),
            end=Point(*rng.uniform(0.0, PLANE, 2)),
            battery=float(rng.uniform(0.1, 1.0)),
        )
        for i in range(n)
    ]


def _build_service(seed: int) -> PlacementService:
    anchors = [
        Point(float(x), float(y))
        for x in (0, 667, 1333, 2000)
        for y in (0, 667, 1333, 2000)
    ]
    historical = np.random.default_rng(seed).uniform(0.0, PLANE, size=(300, 2))
    planner = EsharingPlanner(
        anchors,
        constant_facility_cost(COST_VALUE),
        historical,
        np.random.default_rng(seed + 1),
        EsharingConfig(beta=2.0, history_window=200),
    )
    fleet = Fleet(planner.stations, n_bikes=120, rng=np.random.default_rng(seed + 2))
    return PlacementService(planner, fleet)


def _guard_config() -> GuardConfig:
    margin = 100.0
    return GuardConfig(
        validation=ValidationConfig(
            bounds=BoundingBox(-margin, -margin, PLANE + margin, PLANE + margin),
            max_backwards_s=3600.0,  # chaos clock skew stays under an hour
        ),
        lateness_s=600.0,
    )


def _gauntlet(n_trips: int, seed: int, block_size: int = None) -> int:
    failures = 0
    records = _make_trips(n_trips, seed)
    workdir = Path(tempfile.mkdtemp(prefix="esharing-guard-"))
    try:
        # ------------------------------------------------------------------
        # 1. Zero-fault parity: guarded == unguarded, bit for bit.
        plain = CheckpointingService(
            _build_service(seed), workdir / "plain", checkpoint_every=500,
            durable=False, facility_cost_spec=constant_cost_spec(COST_VALUE),
        )
        plain.serve(records)
        guarded_inner = CheckpointingService(
            _build_service(seed), workdir / "guarded", checkpoint_every=500,
            durable=False, facility_cost_spec=constant_cost_spec(COST_VALUE),
        )
        runtime = GuardedRuntime(guarded_inner, _guard_config())
        runtime.serve(records, block_size=block_size)
        runtime.consistency_check()
        if runtime.sink.total != 0 or runtime.incidents.total != 0:
            print(
                f"FAIL: clean stream triggered guards: {runtime.sink.total} "
                f"dead-lettered, {runtime.incidents.total} incident(s)"
            )
            failures += 1
        if runtime.inner.service.responses != plain.service.responses:
            print("FAIL: zero-fault guarded responses diverged from unguarded")
            failures += 1
        g_state = runtime.inner.service.state_dict()
        p_state = plain.service.state_dict()
        g_state["planner"]["ks_seconds"] = p_state["planner"]["ks_seconds"] = 0.0
        if g_state != p_state:
            print("FAIL: zero-fault guarded state diverged from unguarded")
            failures += 1
        plain.close()
        runtime.close()

        # ------------------------------------------------------------------
        # 2. The gauntlet proper: every fault category at once.
        injector = FaultInjector(ChaosConfig(
            seed=seed,
            p_duplicate=0.03, p_drop=0.03, p_swap=0.05,
            p_clock_skew=0.02, skew_max_s=900.0,
            p_garbage=0.02,
            p_late=0.02, late_max_positions=8,
            p_subsystem_error=0.10,
        ))
        hostile = injector.mutate_trips(records)
        summary = injector.summary()
        if len(hostile) != len(records) - summary.drops + summary.duplicates:
            print(
                "FAIL: fault accounting drift: "
                f"{len(records)} in, {len(hostile)} out, {summary.to_text()}"
            )
            failures += 1

        inner = CheckpointingService(
            _build_service(seed), workdir / "hostile", checkpoint_every=500,
            durable=False, facility_cost_spec=constant_cost_spec(COST_VALUE),
        )
        mechanism = IncentiveMechanism(
            inner.service.fleet, ChargingCostParams(),
            rng=np.random.default_rng(seed + 3),
            stations=inner.service.planner.station_set,
        )
        mechanism.offer_ride = injector.failing(  # type: ignore[method-assign]
            mechanism.offer_ride, "incentive"
        )
        runtime = GuardedRuntime(inner, _guard_config(), incentives=mechanism)
        ks_inner = runtime.guarded_ks.inner
        ks_inner.test = injector.failing(ks_inner.test, "ks")  # type: ignore[method-assign]
        try:
            runtime.serve(hostile, block_size=block_size)
        except Exception as exc:  # noqa: BLE001 — the gauntlet's whole point
            print(f"FAIL: guarded runtime raised on the hostile stream: {exc!r}")
            failures += 1
        else:
            runtime.consistency_check()
            if runtime.health == HALTED:
                print(f"FAIL: runtime halted: {runtime.halt_reason}")
                failures += 1
            if runtime.validator.offered != len(hostile):
                print(
                    f"FAIL: {len(hostile)} events offered but validator saw "
                    f"{runtime.validator.offered}"
                )
                failures += 1
            accounted = (
                runtime.validator.rejected
                + runtime.buffer.too_late + runtime.buffer.shed
            )
            if runtime.sink.total != accounted:
                print(
                    f"FAIL: dead-letter sink holds {runtime.sink.total} but "
                    f"{accounted} rejections were recorded"
                )
                failures += 1
            gauntlet_summary = injector.summary()
            ks_faults = gauntlet_summary.subsystem_errors.get("ks", 0)
            incentive_faults = gauntlet_summary.subsystem_errors.get("incentive", 0)
            if ks_faults == 0 or incentive_faults == 0:
                print(
                    "FAIL: subsystem fault injection never fired "
                    f"(ks={ks_faults}, incentive={incentive_faults})"
                )
                failures += 1
            if runtime.validator.counters["finite"] + runtime.validator.counters["bounds"] == 0:
                print("FAIL: garbage coordinates never reached the validator")
                failures += 1
            runtime.flush_logs(workdir / "logs", durable=False)
            dead_lines = (
                (workdir / "logs" / "deadletter.jsonl").read_text().splitlines()
            )
            if len(dead_lines) != len(runtime.sink.rows):
                print("FAIL: dead-letter JSONL does not match the sink")
                failures += 1
            print(
                f"gauntlet: {len(hostile)} hostile events "
                f"({gauntlet_summary.to_text()}); "
                f"{runtime.sink.to_text().splitlines()[0]}; "
                f"{runtime.incidents.total} incident(s); "
                f"final health {runtime.health}"
            )
        runtime.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        print(f"guard gauntlet: {failures} failure(s)")
        return 1
    print(
        f"guard gauntlet OK: zero-fault bit-identity and hostile-stream "
        f"accounting verified over {n_trips} trips"
    )
    return 0


def _build_city(n_shards: int, directory: Path, seed: int):
    """The gauntlet's demo city as a geo-sharded fleet."""
    from ..shard import ShardPlan, ShardedRuntime

    plan = ShardPlan.from_bounds(BoundingBox(0.0, 0.0, PLANE, PLANE), n_shards)
    anchors = [
        Point(float(x), float(y))
        for x in (0, 667, 1333, 2000)
        for y in (0, 667, 1333, 2000)
    ]
    historical = np.random.default_rng(seed).uniform(0.0, PLANE, size=(300, 2))
    return ShardedRuntime(
        plan, directory, anchors, historical, seed=seed,
        guard=_guard_config(), durable=False,
    )


def _sharded_gauntlet(
    n_trips: int, seed: int, n_shards: int, block_size: int = None
) -> int:
    from ..shard import ShardRouter, build_shard_runtime

    failures = 0
    records = _make_trips(n_trips, seed)
    workdir = Path(tempfile.mkdtemp(prefix="esharing-guard-shard-"))
    try:
        # ------------------------------------------------------------------
        # 1. Clean-stream parity: every fleet shard == its standalone
        #    oracle, outcomes and journal bytes.
        city = _build_city(n_shards, workdir / "clean", seed)
        outcome = city.serve(records, block_size=block_size)
        if outcome.deadlettered or any(r.incidents for r in outcome.reports):
            print(
                f"FAIL: clean stream triggered guards: {outcome.deadlettered} "
                f"dead-lettered, "
                f"{sum(r.incidents for r in outcome.reports)} incident(s)"
            )
            failures += 1
        buckets = ShardRouter(city.plan).split_trips(records)
        by_id = {r.shard_id: r for r in outcome.reports}
        for sid in range(n_shards):
            if not buckets[sid]:
                continue
            oracle = build_shard_runtime(city.spec(sid), workdir / f"oracle-{sid}")
            expected = oracle.serve(buckets[sid], block_size=block_size)
            oracle.close()
            if by_id[sid].outcomes != tuple(expected):
                print(
                    f"FAIL: shard {sid} outcomes diverged from its "
                    "standalone oracle"
                )
                failures += 1
            fleet_journal = (
                workdir / "clean" / f"shard-{sid:03d}" / "journal.jsonl"
            ).read_bytes()
            oracle_journal = (
                workdir / f"oracle-{sid}" / "journal.jsonl"
            ).read_bytes()
            if fleet_journal != oracle_journal:
                print(
                    f"FAIL: shard {sid} journal bytes diverged from its "
                    "standalone oracle"
                )
                failures += 1

        # ------------------------------------------------------------------
        # 2. Hostile-stream accounting across the fleet.
        injector = FaultInjector(ChaosConfig(
            seed=seed,
            p_duplicate=0.03, p_drop=0.03, p_swap=0.05,
            p_clock_skew=0.02, skew_max_s=900.0,
            p_garbage=0.02,
            p_late=0.02, late_max_positions=8,
        ))
        hostile = injector.mutate_trips(records)
        summary = injector.summary()
        hostile_city = _build_city(n_shards, workdir / "hostile", seed)
        try:
            hostile_outcome = hostile_city.serve(hostile, block_size=block_size)
        except Exception as exc:  # noqa: BLE001 — the gauntlet's whole point
            print(f"FAIL: sharded runtime raised on the hostile stream: {exc!r}")
            failures += 1
        else:
            if hostile_outcome.health == HALTED:
                print("FAIL: sharded fleet halted on the hostile stream")
                for report in hostile_outcome.reports:
                    print(
                        f"  shard {report.shard_id:03d}: health "
                        f"{report.health}, {report.served} served, "
                        f"{report.incidents} incident(s)"
                    )
                failures += 1
            offered = sum(r.offered for r in hostile_outcome.reports)
            if offered != len(hostile):
                print(
                    f"FAIL: {len(hostile)} hostile events offered but the "
                    f"fleet's validators saw {offered}"
                )
                failures += 1
            for report in hostile_outcome.reports:
                accounted = (
                    report.served + report.degraded
                    + report.duplicates + report.deadlettered
                )
                if accounted != report.offered:
                    print(
                        f"FAIL: shard {report.shard_id} accounting drift: "
                        f"{report.offered} offered vs {accounted} accounted"
                    )
                    failures += 1
            if summary.garbage_fields and not hostile_outcome.deadlettered:
                print("FAIL: garbage fields never reached a shard validator")
                failures += 1
            print(
                f"sharded gauntlet: {len(hostile)} hostile events "
                f"({summary.to_text()}) across {n_shards} shards; "
                f"{hostile_outcome.served} served, "
                f"{hostile_outcome.deadlettered} dead-lettered, "
                f"{len(hostile_outcome.referrals)} cross-shard referral(s); "
                f"worst health {hostile_outcome.health}"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        print(f"sharded guard gauntlet: {failures} failure(s)")
        return 1
    print(
        f"sharded guard gauntlet OK: per-shard oracle bit-identity and "
        f"hostile-stream accounting verified over {n_trips} trips on "
        f"{n_shards} shards"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.guard",
        description="chaos gauntlet for the guarded online runtime",
    )
    parser.add_argument("--trips", type=int, default=5000, help="stream length")
    parser.add_argument("--seed", type=int, default=0, help="chaos + workload seed")
    parser.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="trips per columnar block on the guarded stream path "
        "(default: the GuardConfig default; 1 = the scalar oracle)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run the geo-sharded gauntlet on this many shards "
        "(1 = the classic single-runtime gauntlet)",
    )
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.block_size is not None and args.block_size <= 0:
        parser.error(f"--block-size must be positive, got {args.block_size}")
    if args.shards > 1:
        return _sharded_gauntlet(
            args.trips, args.seed, args.shards, block_size=args.block_size
        )
    return _gauntlet(args.trips, args.seed, block_size=args.block_size)


if __name__ == "__main__":
    sys.exit(main())
