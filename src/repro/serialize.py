"""Round-trip-exact state primitives shared by the checkpoint formats.

The crash-recovery contract is *bit identity*: a restored planner must
make the same coin flips, measure the same distances and write the same
responses as the uninterrupted run.  Everything here therefore
round-trips exactly through JSON:

* floats — Python's ``json`` emits ``repr``-shortest decimal strings,
  which parse back to the identical IEEE-754 double;
* NumPy RNGs — captured via ``Generator.bit_generator.state`` (plain
  ints/strings) and restored onto a freshly constructed bit generator of
  the same class;
* :class:`~repro.geo.points.Point`, :class:`datetime` and
  :class:`~repro.datasets.trips.TripRecord` — field-wise encodings with
  no precision loss.
"""

from __future__ import annotations

import copy
from datetime import datetime
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .datasets.trips import TripRecord
from .geo.points import Point

__all__ = [
    "rng_to_state",
    "rng_from_state",
    "points_to_state",
    "points_from_state",
    "datetime_to_state",
    "datetime_from_state",
    "trip_to_state",
    "trip_from_state",
]


def rng_to_state(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-safe snapshot of a NumPy ``Generator``'s full bit stream.

    The returned dict is a deep copy, so later draws on ``rng`` do not
    mutate an already-captured checkpoint.
    """
    return copy.deepcopy(rng.bit_generator.state)


def rng_from_state(state: Dict[str, Any]) -> np.random.Generator:
    """Rebuild a ``Generator`` that continues the captured bit stream.

    Raises:
        ValueError: if the bit-generator class named in ``state`` does
            not exist in :mod:`numpy.random`.
    """
    name = state.get("bit_generator")
    cls = getattr(np.random, str(name), None)
    if cls is None or not isinstance(name, str):
        raise ValueError(f"unknown bit generator {name!r} in RNG state")
    bit_gen = cls()
    bit_gen.state = copy.deepcopy(state)
    return np.random.Generator(bit_gen)


def points_to_state(points: Sequence[Point]) -> List[List[float]]:
    """Encode points as ``[[x, y], ...]`` (floats round-trip exactly)."""
    return [[p.x, p.y] for p in points]


def points_from_state(state: Sequence[Sequence[float]]) -> List[Point]:
    """Decode the :func:`points_to_state` encoding."""
    return [Point(float(x), float(y)) for x, y in state]


def datetime_to_state(moment: datetime) -> str:
    """ISO-8601 encoding; microseconds and timezone survive."""
    return moment.isoformat()


def datetime_from_state(state: str) -> datetime:
    """Decode the :func:`datetime_to_state` encoding."""
    return datetime.fromisoformat(state)


def trip_to_state(trip: TripRecord) -> Dict[str, Any]:
    """Field-wise encoding of a :class:`TripRecord` for the journal."""
    return {
        "order_id": trip.order_id,
        "user_id": trip.user_id,
        "bike_id": trip.bike_id,
        "bike_type": trip.bike_type,
        "start_time": datetime_to_state(trip.start_time),
        "start": [trip.start.x, trip.start.y],
        "end": [trip.end.x, trip.end.y],
        "geodesic_m": trip.geodesic_m,
        "battery": trip.battery,
    }


def trip_from_state(state: Dict[str, Any]) -> TripRecord:
    """Decode the :func:`trip_to_state` encoding.

    Raises:
        KeyError: if a required field is missing.
    """
    geodesic: Optional[float] = state.get("geodesic_m")
    battery: Optional[float] = state.get("battery")
    return TripRecord(
        order_id=int(state["order_id"]),
        user_id=int(state["user_id"]),
        bike_id=int(state["bike_id"]),
        bike_type=int(state["bike_type"]),
        start_time=datetime_from_state(state["start_time"]),
        start=Point(float(state["start"][0]), float(state["start"][1])),
        end=Point(float(state["end"][0]), float(state["end"][1])),
        geodesic_m=None if geodesic is None else float(geodesic),
        battery=None if battery is None else float(battery),
    )
