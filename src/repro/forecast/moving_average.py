"""Moving-average baseline (Table II, "MA").

The simplest statistical predictor: the forecast for every future step is
the mean of the last ``window`` observations ("wz" in the paper's table).
"""

from __future__ import annotations

import numpy as np

from .base import Forecaster

__all__ = ["MovingAverage"]


class MovingAverage(Forecaster):
    """Flat forecast equal to the trailing window mean.

    Args:
        window: number of trailing observations averaged (``wz``).

    Raises:
        ValueError: if ``window`` is not positive.
    """

    def __init__(self, window: int = 3) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window

    def fit(self, series: np.ndarray) -> "MovingAverage":
        """MA has no trainable state; provided for interface parity."""
        return self

    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Mean of the last ``window`` points, repeated ``horizon`` times.

        Raises:
            ValueError: if the history is empty.
        """
        self._check_horizon(horizon)
        hist = np.asarray(history, dtype=float).ravel()
        if hist.size == 0:
            raise ValueError("cannot forecast from an empty history")
        tail = hist[-self.window :]
        return np.full(horizon, float(tail.mean()))

    def __repr__(self) -> str:
        return f"MovingAverage(window={self.window})"
