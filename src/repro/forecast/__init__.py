"""Prediction engine: NumPy LSTM plus MA and ARIMA statistical baselines."""

from .base import Forecaster, rolling_forecasts, rolling_rmse, train_test_split_series
from .metrics import mae, mape, mase, rmse
from .moving_average import MovingAverage
from .arima import Arima
from .exponential_smoothing import HoltWinters, SeasonalNaive
from .ensemble import MeanEnsemble, ValidationSelector
from .lstm import LstmConfig, LstmForecaster, sliding_windows
from .multicell import MultiCellForecaster
from .features import DemandSeries, build_demand_series, weekday_weekend_split

__all__ = [
    "Forecaster",
    "rolling_forecasts",
    "rolling_rmse",
    "train_test_split_series",
    "mae",
    "mape",
    "mase",
    "rmse",
    "MovingAverage",
    "Arima",
    "HoltWinters",
    "SeasonalNaive",
    "MeanEnsemble",
    "ValidationSelector",
    "LstmConfig",
    "LstmForecaster",
    "sliding_windows",
    "MultiCellForecaster",
    "DemandSeries",
    "build_demand_series",
    "weekday_weekend_split",
]
