"""Building forecastable series from trip data.

Section V-A trains per-grid predictors on hourly request counts, splitting
the two-week window into weekday (7 train / 3 test) and weekend
(3 train / 1 test) sets because the two regimes come from different
distributions (validated by the KS test, Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..datasets.trips import TripDataset
from ..geo.grid import UniformGrid

__all__ = ["DemandSeries", "build_demand_series", "weekday_weekend_split"]


@dataclass(frozen=True)
class DemandSeries:
    """Hourly request counts with their day-type labels.

    Attributes:
        counts: shape ``(hours,)`` total requests per hour, or
            ``(hours, cells)`` when per-grid resolution is kept.
        hour_of_day: hour-of-day (0..23) of each row.
        is_weekend: day-type flag of each row.
    """

    counts: np.ndarray
    hour_of_day: np.ndarray
    is_weekend: np.ndarray

    def __post_init__(self) -> None:
        n = self.counts.shape[0]
        if self.hour_of_day.shape != (n,) or self.is_weekend.shape != (n,):
            raise ValueError("label arrays must match the series length")

    @property
    def hours(self) -> int:
        return int(self.counts.shape[0])

    def totals(self) -> np.ndarray:
        """Total demand per hour regardless of per-grid resolution."""
        if self.counts.ndim == 1:
            return self.counts
        return self.counts.sum(axis=1)


def build_demand_series(
    dataset: TripDataset, grid: UniformGrid, per_cell: bool = False
) -> DemandSeries:
    """Hourly demand series over the dataset's full span.

    The window is aligned to whole calendar days (midnight of the first
    trip's day through the end of the last trip's day) so day-type splits
    always see complete 24-hour blocks.

    Args:
        dataset: trip records.
        grid: spatial binning for per-cell mode.
        per_cell: keep the ``(hours, cells)`` resolution instead of the
            total per hour.
    """
    first, last = dataset.span
    start = first.replace(hour=0, minute=0, second=0, microsecond=0)
    n_days = (last.date() - start.date()).days + 1
    series, stamps = dataset.hourly_arrival_series(grid, start=start, hours=n_days * 24)
    counts = series if per_cell else series.sum(axis=1)
    hour_of_day = np.asarray([s.hour for s in stamps])
    is_weekend = np.asarray([s.weekday() >= 5 for s in stamps])
    return DemandSeries(counts=counts, hour_of_day=hour_of_day, is_weekend=is_weekend)


def weekday_weekend_split(
    series: DemandSeries,
    weekday_train_days: int = 7,
    weekend_train_days: int = 3,
) -> Tuple[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]:
    """The paper's train/test protocol.

    Weekday hours are concatenated chronologically and the first
    ``weekday_train_days`` days become training data (likewise for
    weekends).  Returns ``((wd_train, wd_test), (we_train, we_test))`` of
    1-D total-demand arrays.

    Raises:
        ValueError: if the series lacks enough weekday or weekend days.
    """
    totals = series.totals()
    wd = totals[~series.is_weekend]
    we = totals[series.is_weekend]
    wd_split = weekday_train_days * 24
    we_split = weekend_train_days * 24
    if wd.size <= wd_split:
        raise ValueError(
            f"only {wd.size // 24} weekday days available, "
            f"need more than {weekday_train_days}"
        )
    if we.size <= we_split:
        raise ValueError(
            f"only {we.size // 24} weekend days available, "
            f"need more than {weekend_train_days}"
        )
    return (wd[:wd_split], wd[wd_split:]), (we[:we_split], we[we_split:])
