"""Forecaster interface and rolling evaluation.

All predictors in the engine implement the same contract: ``fit`` on a
training series, then ``forecast`` the next ``horizon`` values given a
history.  Section V-A evaluates predictors by forecasting "the next 1 to
6 hours" over a held-out test segment; :func:`rolling_rmse` reproduces
that protocol — slide over the test segment, forecast ``horizon`` steps
from each position, and score all predictions with RMSE.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

import numpy as np

from .metrics import rmse

__all__ = ["Forecaster", "rolling_forecasts", "rolling_rmse", "train_test_split_series"]


class Forecaster(ABC):
    """Common interface of every prediction model in the engine."""

    @abstractmethod
    def fit(self, series: np.ndarray) -> "Forecaster":
        """Train on a 1-D series of hourly request counts; returns self."""

    @abstractmethod
    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Predict the ``horizon`` values following ``history``.

        ``history`` is the observed series up to "now"; implementations
        may use only its tail.  Returns an array of length ``horizon``.
        """

    def _check_horizon(self, horizon: int) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")


def train_test_split_series(series: np.ndarray, train_fraction: float) -> Tuple[np.ndarray, np.ndarray]:
    """Chronological split of a series into train and test segments.

    Raises:
        ValueError: if the fraction leaves either side empty.
    """
    arr = np.asarray(series, dtype=float).ravel()
    split = int(round(len(arr) * train_fraction))
    if split <= 0 or split >= len(arr):
        raise ValueError(
            f"train_fraction {train_fraction} leaves an empty split for length {len(arr)}"
        )
    return arr[:split], arr[split:]


def rolling_forecasts(
    model: Forecaster,
    train: np.ndarray,
    test: np.ndarray,
    horizon: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Walk-forward predictions over ``test``.

    From each test position ``t`` the model sees
    ``concat(train, test[:t])`` and forecasts ``horizon`` steps; only
    forecasts whose targets lie inside ``test`` are kept.

    Returns:
        ``(pred, actual)`` arrays of equal length.

    Raises:
        ValueError: if ``test`` is shorter than ``horizon``.
    """
    train = np.asarray(train, dtype=float).ravel()
    test = np.asarray(test, dtype=float).ravel()
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if len(test) < horizon:
        raise ValueError(f"test segment shorter than horizon {horizon}")
    preds: List[float] = []
    actuals: List[float] = []
    for t in range(0, len(test) - horizon + 1, horizon):
        history = np.concatenate([train, test[:t]])
        out = np.asarray(model.forecast(history, horizon), dtype=float).ravel()
        if out.shape[0] != horizon:
            raise ValueError(
                f"forecaster returned {out.shape[0]} values for horizon {horizon}"
            )
        preds.extend(out.tolist())
        actuals.extend(test[t : t + horizon].tolist())
    return np.asarray(preds), np.asarray(actuals)


def rolling_rmse(
    model: Forecaster,
    train: np.ndarray,
    test: np.ndarray,
    horizon: int = 1,
    fit: bool = True,
) -> float:
    """Fit on ``train`` (optionally) and score walk-forward RMSE on ``test``."""
    if fit:
        model.fit(np.asarray(train, dtype=float).ravel())
    pred, actual = rolling_forecasts(model, train, test, horizon=horizon)
    return rmse(pred, actual)
