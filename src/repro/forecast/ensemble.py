"""Model selection and ensembling over forecasters.

Section II-B: the framework "can be integrated with any prediction
engine".  These combinators make that integration concrete:

* :class:`ValidationSelector` — fit several candidate forecasters, score
  them walk-forward on a held-out validation tail of the training series,
  and delegate to the winner (how the paper's Table II effectively picks
  the 2-layer back=12 LSTM).
* :class:`MeanEnsemble` — average the member forecasts, a strong
  variance-reduction baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .base import Forecaster, rolling_rmse, train_test_split_series

__all__ = ["ValidationSelector", "MeanEnsemble"]


class MeanEnsemble(Forecaster):
    """Average of the member forecasters' predictions.

    Args:
        members: at least one forecaster.

    Raises:
        ValueError: on an empty member list.
    """

    def __init__(self, members: Sequence[Forecaster]) -> None:
        if not members:
            raise ValueError("ensemble needs at least one member")
        self.members = list(members)

    def fit(self, series: np.ndarray) -> "MeanEnsemble":
        """Fit every member on the same series."""
        for m in self.members:
            m.fit(series)
        return self

    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Elementwise mean of the member forecasts."""
        self._check_horizon(horizon)
        outputs = [
            np.asarray(m.forecast(history, horizon), dtype=float).ravel()
            for m in self.members
        ]
        return np.mean(outputs, axis=0)

    def __repr__(self) -> str:
        return f"MeanEnsemble({len(self.members)} members)"


class ValidationSelector(Forecaster):
    """Pick the best candidate on a validation tail, then use only it.

    Args:
        candidates: named forecasters to compete.
        validation_fraction: tail share of the training series reserved
            for walk-forward scoring.
        horizon: the horizon the validation scores (match deployment).

    Raises:
        ValueError: on no candidates or a degenerate fraction.
    """

    def __init__(
        self,
        candidates: Dict[str, Forecaster],
        validation_fraction: float = 0.25,
        horizon: int = 1,
    ) -> None:
        if not candidates:
            raise ValueError("need at least one candidate")
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError(
                f"validation_fraction must be in (0, 1), got {validation_fraction}"
            )
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.candidates = dict(candidates)
        self.validation_fraction = validation_fraction
        self.horizon = horizon
        self.best_name: Optional[str] = None
        self.scores: Dict[str, float] = {}

    def fit(self, series: np.ndarray) -> "ValidationSelector":
        """Score every candidate on the validation tail; refit the winner
        on the full series.

        Candidates that fail to fit (e.g. a series too short for their
        lookback) are scored as infinitely bad rather than aborting the
        selection.
        """
        arr = np.asarray(series, dtype=float).ravel()
        train, valid = train_test_split_series(arr, 1.0 - self.validation_fraction)
        self.scores = {}
        for name, model in self.candidates.items():
            try:
                self.scores[name] = rolling_rmse(
                    model, train, valid, horizon=self.horizon
                )
            except (ValueError, RuntimeError):
                self.scores[name] = float("inf")
        self.best_name = min(self.scores, key=self.scores.get)
        if not np.isfinite(self.scores[self.best_name]):
            raise ValueError("no candidate could be fit on the series")
        self.candidates[self.best_name].fit(arr)
        return self

    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Delegate to the selected winner.

        Raises:
            RuntimeError: if called before :meth:`fit`.
        """
        self._check_horizon(horizon)
        if self.best_name is None:
            raise RuntimeError("ValidationSelector.forecast called before fit")
        return self.candidates[self.best_name].forecast(history, horizon)

    def __repr__(self) -> str:
        return f"ValidationSelector(best={self.best_name!r})"
