"""Forecast error metrics.

The paper scores predictors with RMSE (Eq. 14):
``RMSE(h*) = sqrt(E[(h* - h)^2])`` where ``h*`` is the predicted and
``h`` the actual number of requests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmse", "mae", "mape", "mase"]


def _validate(pred, actual) -> tuple:
    p = np.asarray(pred, dtype=float).ravel()
    a = np.asarray(actual, dtype=float).ravel()
    if p.shape != a.shape:
        raise ValueError(f"shape mismatch: pred {p.shape} vs actual {a.shape}")
    if p.size == 0:
        raise ValueError("empty inputs")
    return p, a


def rmse(pred, actual) -> float:
    """Root mean square error (Eq. 14)."""
    p, a = _validate(pred, actual)
    return float(np.sqrt(np.mean((p - a) ** 2)))


def mae(pred, actual) -> float:
    """Mean absolute error."""
    p, a = _validate(pred, actual)
    return float(np.mean(np.abs(p - a)))


def mape(pred, actual, eps: float = 1e-9) -> float:
    """Mean absolute percentage error against ``max(|actual|, eps)``."""
    p, a = _validate(pred, actual)
    return float(np.mean(np.abs(p - a) / np.maximum(np.abs(a), eps)))


def mase(pred, actual, train, period: int = 24) -> float:
    """Mean absolute scaled error against the seasonal-naive baseline.

    The scale is the in-sample MAE of the period-``period`` naive
    forecast on ``train`` — values below 1 mean the model beats the
    seasonal naive, the scale-free comparison appropriate for hourly
    demand counts.

    Raises:
        ValueError: if the training series is too short for one period
            or the naive scale is zero (a perfectly periodic series).
    """
    p, a = _validate(pred, actual)
    t = np.asarray(train, dtype=float).ravel()
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if t.size <= period:
        raise ValueError(
            f"training series of {t.size} too short for period {period}"
        )
    scale = float(np.mean(np.abs(t[period:] - t[:-period])))
    if scale == 0:
        raise ValueError("seasonal-naive scale is zero; MASE undefined")
    return float(np.mean(np.abs(p - a)) / scale)
