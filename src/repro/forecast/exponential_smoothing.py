"""Holt–Winters exponential smoothing and the seasonal-naive baseline.

Two extra statistical predictors beyond the paper's MA/ARIMA grid.
Hourly bike demand is strongly seasonal (period 24), so a seasonal model
is the *fair* statistical baseline for the LSTM — these extend the
Table II comparison (see ``bench_table2_extended``).

* :class:`SeasonalNaive` — tomorrow's hour h equals today's hour h (or
  the mean of the last ``k`` same-hour observations).
* :class:`HoltWinters` — additive level/trend/seasonality, fit by
  minimising one-step squared error over the smoothing parameters with
  scipy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import optimize

from .base import Forecaster

__all__ = ["SeasonalNaive", "HoltWinters"]


class SeasonalNaive(Forecaster):
    """Forecast = mean of the last ``window`` same-phase observations.

    Args:
        period: season length in steps (24 for hourly daily seasonality).
        window: how many past seasons to average (1 = plain seasonal naive).

    Raises:
        ValueError: on non-positive period or window.
    """

    def __init__(self, period: int = 24, window: int = 1) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.period = period
        self.window = window

    def fit(self, series: np.ndarray) -> "SeasonalNaive":
        """No trainable state; provided for interface parity."""
        return self

    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Repeat the seasonal pattern of the trailing seasons.

        Raises:
            ValueError: if the history is shorter than one period.
        """
        self._check_horizon(horizon)
        hist = np.asarray(history, dtype=float).ravel()
        if hist.size < self.period:
            raise ValueError(
                f"history of {hist.size} shorter than period {self.period}"
            )
        out = np.empty(horizon)
        for h in range(horizon):
            phase_observations = []
            # Steps back that share the phase of history end + h + 1.
            offset = (h % self.period) - self.period
            for k in range(self.window):
                pos = hist.size + offset - k * self.period
                if 0 <= pos < hist.size:
                    phase_observations.append(hist[pos])
            out[h] = float(np.mean(phase_observations)) if phase_observations else float(hist[-1])
        return out

    def __repr__(self) -> str:
        return f"SeasonalNaive(period={self.period}, window={self.window})"


class HoltWinters(Forecaster):
    """Additive Holt–Winters (level + trend + seasonality).

    Smoothing parameters ``(alpha, beta, gamma)`` are estimated on the
    training series by minimising the one-step sum of squared errors.

    Args:
        period: season length in steps.
        damped_trend: multiply the trend by 0.98 per step ahead, a common
            guard against runaway extrapolation on short series.

    Raises:
        ValueError: on a non-positive period.
    """

    def __init__(self, period: int = 24, damped_trend: bool = True) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.damped_trend = damped_trend
        self._params: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._params is not None

    # ------------------------------------------------------------------
    def _decompose(self, x: np.ndarray, alpha: float, beta: float, gamma: float):
        """Run the recursions; returns (level, trend, season, residual SSE)."""
        m = self.period
        season = np.zeros(m)
        # Initial seasonality: per-phase mean minus overall mean of the
        # first two seasons.
        head = x[: 2 * m] if x.size >= 2 * m else x
        overall = float(head.mean())
        for phase in range(m):
            vals = head[phase::m]
            season[phase] = float(vals.mean()) - overall if vals.size else 0.0
        level = overall
        trend = 0.0
        sse = 0.0
        for t in range(x.size):
            phase = t % m
            pred = level + trend + season[phase]
            err = x[t] - pred
            sse += err * err
            new_level = alpha * (x[t] - season[phase]) + (1 - alpha) * (level + trend)
            trend = beta * (new_level - level) + (1 - beta) * trend
            season[phase] = gamma * (x[t] - new_level) + (1 - gamma) * season[phase]
            level = new_level
        return level, trend, season, sse

    def fit(self, series: np.ndarray) -> "HoltWinters":
        """Estimate the smoothing parameters on ``series``.

        Raises:
            ValueError: if the series is shorter than two periods.
        """
        x = np.asarray(series, dtype=float).ravel()
        if x.size < 2 * self.period:
            raise ValueError(
                f"series of {x.size} too short for period {self.period} "
                f"(need at least {2 * self.period})"
            )

        def objective(params: np.ndarray) -> float:
            a, b, g = np.clip(params, 1e-4, 1.0 - 1e-4)
            return self._decompose(x, float(a), float(b), float(g))[3]

        result = optimize.minimize(
            objective,
            x0=np.array([0.3, 0.05, 0.2]),
            method="Nelder-Mead",
            options={"maxiter": 200, "xatol": 1e-3, "fatol": 1e-2},
        )
        self._params = np.clip(result.x, 1e-4, 1.0 - 1e-4)
        return self

    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Extrapolate level + damped trend + seasonal component.

        Raises:
            RuntimeError: if called before :meth:`fit`.
            ValueError: if the history is shorter than one period.
        """
        self._check_horizon(horizon)
        if self._params is None:
            raise RuntimeError("HoltWinters.forecast called before fit")
        hist = np.asarray(history, dtype=float).ravel()
        if hist.size < self.period:
            raise ValueError(
                f"history of {hist.size} shorter than period {self.period}"
            )
        a, b, g = (float(v) for v in self._params)
        level, trend, season, _ = self._decompose(hist, a, b, g)
        out = np.empty(horizon)
        damp = 1.0
        trend_sum = 0.0
        for h in range(1, horizon + 1):
            damp = damp * 0.98 if self.damped_trend else 1.0
            trend_sum += trend * damp
            phase = (hist.size + h - 1) % self.period
            out[h - 1] = level + trend_sum + season[phase]
        return out

    def __repr__(self) -> str:
        return f"HoltWinters(period={self.period}, damped={self.damped_trend})"
