"""Spatially-resolved demand forecasting with shared LSTM weights.

The paper trains the LSTM "for each grid" (Section V-A) — with 23.9K
bins that is only tractable on their GPU farm.  This module gets the
per-grid resolution at laptop cost by *pooling*: every active cell's
z-scored history contributes supervised windows to one shared-weight
LSTM (bike-demand dynamics are similar across cells once scaled), and
forecasts are produced per cell by de-normalising with that cell's own
statistics.  Inactive cells (no variance) forecast their constant mean.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .lstm import LstmConfig, LstmForecaster, sliding_windows

__all__ = ["MultiCellForecaster"]


class MultiCellForecaster:
    """One shared LSTM over many per-cell series.

    Args:
        config: hyperparameters of the shared LSTM.
        min_std: cells whose series' standard deviation is below this are
            treated as constant (forecast = historical mean).
    """

    def __init__(self, config: Optional[LstmConfig] = None, min_std: float = 1e-6) -> None:
        self.config = config or LstmConfig()
        if min_std < 0:
            raise ValueError(f"min_std cannot be negative, got {min_std}")
        self.min_std = min_std
        self._model = LstmForecaster(self.config)
        self._means: Optional[np.ndarray] = None
        self._stds: Optional[np.ndarray] = None
        self._active: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._means is not None

    @property
    def n_cells(self) -> int:
        """Number of cells seen at fit time.

        Raises:
            RuntimeError: before :meth:`fit`.
        """
        if self._means is None:
            raise RuntimeError("n_cells unavailable before fit")
        return int(self._means.size)

    # ------------------------------------------------------------------
    def fit(self, series: np.ndarray) -> "MultiCellForecaster":
        """Train on an ``(hours, cells)`` matrix of per-cell counts.

        Raises:
            ValueError: on a non-2-D input, a series too short for the
                lookback, or no active cells.
        """
        arr = np.asarray(series, dtype=float)
        if arr.ndim != 2:
            raise ValueError(f"expected an (hours, cells) matrix, got shape {arr.shape}")
        hours, cells = arr.shape
        if hours <= self.config.lookback:
            raise ValueError(
                f"{hours} hours too short for lookback {self.config.lookback}"
            )
        self._means = arr.mean(axis=0)
        self._stds = arr.std(axis=0)
        self._active = self._stds > self.min_std
        if not np.any(self._active):
            raise ValueError("no cell has variance; nothing to learn")
        xs: List[np.ndarray] = []
        ys: List[np.ndarray] = []
        for c in np.flatnonzero(self._active):
            normed = (arr[:, c] - self._means[c]) / self._stds[c]
            X, y = sliding_windows(normed, self.config.lookback)
            xs.append(X)
            ys.append(y)
        self._model.fit_windows(np.vstack(xs), np.concatenate(ys))
        return self

    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Per-cell recursive forecast.

        Args:
            history: ``(hours, cells)`` matrix ending "now"; the cell
                count must match the fit-time layout.
            horizon: steps ahead.

        Returns:
            ``(horizon, cells)`` forecast matrix (clipped at zero —
            demand counts cannot be negative).

        Raises:
            RuntimeError: before :meth:`fit`.
            ValueError: on layout mismatch, short history, or bad horizon.
        """
        if self._means is None:
            raise RuntimeError("MultiCellForecaster.forecast called before fit")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        arr = np.asarray(history, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != self.n_cells:
            raise ValueError(
                f"history must be (hours, {self.n_cells}), got {arr.shape}"
            )
        if arr.shape[0] < self.config.lookback:
            raise ValueError(
                f"history of {arr.shape[0]} hours shorter than lookback "
                f"{self.config.lookback}"
            )
        out = np.empty((horizon, self.n_cells))
        active = np.flatnonzero(self._active)
        for c in np.flatnonzero(~self._active):
            out[:, c] = self._means[c]
        if active.size:
            # One batched forward pass per step for all active cells.
            means = self._means[active]
            stds = self._stds[active]
            windows = (arr[-self.config.lookback:, active].T - means[:, None]) / stds[:, None]
            for h in range(horizon):
                nxt = self._model.predict_normalised_batch(windows)
                out[h, active] = nxt * stds + means
                windows = np.hstack([windows[:, 1:], nxt[:, None]])
        return np.clip(out, 0.0, None)

    def forecast_totals(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Convenience: per-step total demand across all cells."""
        return self.forecast(history, horizon).sum(axis=1)
