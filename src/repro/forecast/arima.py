"""ARIMA baseline (Table II, "ARIMA").

A self-contained ARIMA(p, d, q) in the Box–Jenkins tradition [32]:

* difference the series ``d`` times,
* estimate the ARMA(p, q) coefficients by minimising the conditional sum
  of squared one-step residuals (CSS) with scipy,
* forecast recursively and integrate the differences back.

The paper sweeps the lag order ``p`` and degree of differencing ``d``
(with an implicit small MA term); ``q`` defaults to 0, making the
default configuration the AR(I) family shown in the table.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import optimize

from .base import Forecaster

__all__ = ["Arima"]


def _difference(series: np.ndarray, d: int) -> np.ndarray:
    out = series
    for _ in range(d):
        out = np.diff(out)
    return out


def _css_residuals(params: np.ndarray, x: np.ndarray, p: int, q: int) -> np.ndarray:
    """One-step conditional residuals of an ARMA(p, q) with intercept."""
    c = params[0]
    ar = params[1 : 1 + p]
    ma = params[1 + p : 1 + p + q]
    n = x.size
    resid = np.zeros(n)
    start = max(p, 1)
    for t in range(start, n):
        ar_part = float(ar @ x[t - p : t][::-1]) if p else 0.0
        ma_part = 0.0
        for j in range(1, q + 1):
            if t - j >= start:
                ma_part += ma[j - 1] * resid[t - j]
        resid[t] = x[t] - c - ar_part - ma_part
    return resid[start:]


class Arima(Forecaster):
    """ARIMA(p, d, q) fit by conditional least squares.

    Args:
        p: autoregressive lag order.
        d: degree of differencing.
        q: moving-average order.

    Raises:
        ValueError: on negative orders or all-zero model (p=q=0 with no
            intercept cannot forecast anything useful but is permitted —
            it degenerates to the mean of the differenced series).
    """

    def __init__(self, p: int = 2, d: int = 0, q: int = 0) -> None:
        if p < 0 or d < 0 or q < 0:
            raise ValueError(f"orders must be non-negative, got p={p} d={d} q={q}")
        self.p = p
        self.d = d
        self.q = q
        self._params: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._params is not None

    def fit(self, series: np.ndarray) -> "Arima":
        """Estimate coefficients on ``series`` via CSS.

        Raises:
            ValueError: if the differenced series is too short to fit.
        """
        arr = np.asarray(series, dtype=float).ravel()
        x = _difference(arr, self.d)
        min_len = max(self.p, 1) + self.p + self.q + 2
        if x.size < min_len:
            raise ValueError(
                f"series too short for ARIMA({self.p},{self.d},{self.q}): "
                f"need {min_len} differenced points, have {x.size}"
            )
        n_params = 1 + self.p + self.q
        x0 = np.zeros(n_params)
        x0[0] = float(x.mean())

        def objective(params: np.ndarray) -> float:
            resid = _css_residuals(params, x, self.p, self.q)
            return float(resid @ resid)

        if self.p == 0 and self.q == 0:
            self._params = x0
            return self
        result = optimize.minimize(objective, x0, method="L-BFGS-B")
        # L-BFGS-B can stall on flat regions; keep whatever point it
        # reached — CSS is well-behaved for these small models.
        self._params = np.asarray(result.x, dtype=float)
        return self

    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Recursive multi-step forecast from ``history``.

        Raises:
            RuntimeError: if called before :meth:`fit`.
            ValueError: if the history is shorter than the model memory.
        """
        self._check_horizon(horizon)
        if self._params is None:
            raise RuntimeError("Arima.forecast called before fit")
        hist = np.asarray(history, dtype=float).ravel()
        if hist.size < self.d + self.p + 1:
            raise ValueError(
                f"history of {hist.size} too short for ARIMA({self.p},{self.d},{self.q})"
            )
        x = _difference(hist, self.d)
        c = self._params[0]
        ar = self._params[1 : 1 + self.p]
        ma = self._params[1 + self.p :]
        resid = _css_residuals(self._params, x, self.p, self.q) if (self.p or self.q) else np.array([])

        ext = x.tolist()
        resid_ext = ([0.0] * (len(ext) - len(resid))) + resid.tolist()
        for _ in range(horizon):
            t = len(ext)
            ar_part = 0.0
            for i in range(1, self.p + 1):
                ar_part += ar[i - 1] * ext[t - i]
            ma_part = 0.0
            for j in range(1, self.q + 1):
                if t - j < len(resid_ext):
                    ma_part += ma[j - 1] * resid_ext[t - j]
            ext.append(c + ar_part + ma_part)
            resid_ext.append(0.0)  # future shocks have zero expectation

        diff_forecast = np.asarray(ext[len(x) :], dtype=float)
        return _integrate(hist, diff_forecast, self.d)

    def __repr__(self) -> str:
        return f"Arima(p={self.p}, d={self.d}, q={self.q})"


def _integrate(history: np.ndarray, diff_forecast: np.ndarray, d: int) -> np.ndarray:
    """Invert ``d`` rounds of differencing for a forecast continuation."""
    if d == 0:
        return diff_forecast
    # Last values of each differencing level, innermost first.
    levels = [history]
    for _ in range(d):
        levels.append(np.diff(levels[-1]))
    out = diff_forecast
    for level in range(d - 1, -1, -1):
        anchor = levels[level][-1]
        out = anchor + np.cumsum(out)
    return out
