"""A from-scratch NumPy LSTM for short-term demand forecasting.

The paper's prediction engine is a stacked LSTM [30] ("we stack 128 LSTM
cells as the hidden layer and extend the depth of the network by
increasing the number of layers") trained on hourly request counts with a
configurable *backward* window (Table II's ``back`` parameter).
TensorFlow and a GPU are not available in this reproduction, so the cell
is implemented directly: fused-gate forward pass, full backpropagation
through time, Adam optimiser, gradient-norm clipping, z-score input
normalisation.  Multi-step forecasts are produced recursively.

The implementation is deliberately explicit (one method per pass) so the
gradient path is auditable; the test suite checks it against numerical
differentiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .base import Forecaster

__all__ = ["LstmConfig", "LstmForecaster", "sliding_windows"]


def sliding_windows(series: np.ndarray, lookback: int) -> Tuple[np.ndarray, np.ndarray]:
    """Supervised pairs: windows of ``lookback`` values and their successor.

    Returns:
        ``(X, y)`` with ``X`` of shape ``(n, lookback)`` and ``y`` of
        shape ``(n,)``.

    Raises:
        ValueError: if the series is too short to produce one window.
    """
    arr = np.asarray(series, dtype=float).ravel()
    if lookback <= 0:
        raise ValueError(f"lookback must be positive, got {lookback}")
    n = arr.size - lookback
    if n <= 0:
        raise ValueError(
            f"series of length {arr.size} too short for lookback {lookback}"
        )
    X = np.stack([arr[i : i + lookback] for i in range(n)])
    y = arr[lookback:]
    return X, y


@dataclass(frozen=True)
class LstmConfig:
    """Hyperparameters of the LSTM forecaster.

    Attributes:
        lookback: backward window in time steps (paper's ``back``).
        hidden_size: units per layer (paper uses 128).
        n_layers: stacked LSTM layers (paper sweeps 1-3).
        epochs: training epochs.
        batch_size: minibatch size.
        learning_rate: Adam step size.
        clip_norm: global gradient-norm clip.
        seed: parameter-init / shuffling seed.
    """

    lookback: int = 12
    hidden_size: int = 32
    n_layers: int = 2
    epochs: int = 60
    batch_size: int = 32
    learning_rate: float = 5e-3
    clip_norm: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.lookback <= 0:
            raise ValueError(f"lookback must be positive, got {self.lookback}")
        if self.hidden_size <= 0:
            raise ValueError(f"hidden_size must be positive, got {self.hidden_size}")
        if self.n_layers <= 0:
            raise ValueError(f"n_layers must be positive, got {self.n_layers}")
        if self.epochs <= 0:
            raise ValueError(f"epochs must be positive, got {self.epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -40.0, 40.0)))


@dataclass
class _LayerCache:
    """Per-timestep intermediates one LSTM layer needs for BPTT."""

    x: List[np.ndarray] = field(default_factory=list)
    h_prev: List[np.ndarray] = field(default_factory=list)
    c_prev: List[np.ndarray] = field(default_factory=list)
    i: List[np.ndarray] = field(default_factory=list)
    f: List[np.ndarray] = field(default_factory=list)
    g: List[np.ndarray] = field(default_factory=list)
    o: List[np.ndarray] = field(default_factory=list)
    c: List[np.ndarray] = field(default_factory=list)
    tanh_c: List[np.ndarray] = field(default_factory=list)
    h_seq: Optional[np.ndarray] = None


class LstmForecaster(Forecaster):
    """Stacked-LSTM one-step-ahead forecaster with recursive multi-step.

    Parameters (per layer ``l``): ``W[l]`` (input->gates), ``U[l]``
    (hidden->gates), ``b[l]``; a dense head ``Wy, by`` reads the final
    hidden state.  Gate order in the fused matrices is ``i, f, g, o``.
    """

    def __init__(self, config: Optional[LstmConfig] = None, **kwargs) -> None:
        self.config = config or LstmConfig(**kwargs)
        if config is not None and kwargs:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self._rng = np.random.default_rng(self.config.seed)
        self._params: Dict[str, np.ndarray] = {}
        self._adam_m: Dict[str, np.ndarray] = {}
        self._adam_v: Dict[str, np.ndarray] = {}
        self._adam_t = 0
        self._mean = 0.0
        self._std = 1.0
        self.loss_history: List[float] = []
        self._init_params()

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def _init_params(self) -> None:
        cfg = self.config
        H = cfg.hidden_size
        for layer in range(cfg.n_layers):
            D = 1 if layer == 0 else H
            scale_w = 1.0 / np.sqrt(D)
            scale_u = 1.0 / np.sqrt(H)
            self._params[f"W{layer}"] = self._rng.normal(0, scale_w, size=(D, 4 * H))
            self._params[f"U{layer}"] = self._rng.normal(0, scale_u, size=(H, 4 * H))
            b = np.zeros(4 * H)
            b[H : 2 * H] = 1.0  # forget-gate bias trick: remember by default
            self._params[f"b{layer}"] = b
        self._params["Wy"] = self._rng.normal(0, 1.0 / np.sqrt(H), size=(H, 1))
        self._params["by"] = np.zeros(1)
        for key, val in self._params.items():
            self._adam_m[key] = np.zeros_like(val)
            self._adam_v[key] = np.zeros_like(val)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def _forward(self, X: np.ndarray) -> Tuple[np.ndarray, List[_LayerCache]]:
        """Run the network on normalised windows ``X`` of shape (B, T).

        Returns:
            ``(y_pred, caches)`` with ``y_pred`` of shape (B,).
        """
        cfg = self.config
        B, T = X.shape
        H = cfg.hidden_size
        inputs = X[:, :, None]  # (B, T, 1)
        caches: List[_LayerCache] = []
        for layer in range(cfg.n_layers):
            W = self._params[f"W{layer}"]
            U = self._params[f"U{layer}"]
            b = self._params[f"b{layer}"]
            h = np.zeros((B, H))
            c = np.zeros((B, H))
            cache = _LayerCache()
            h_seq = np.empty((B, T, H))
            for t in range(T):
                x_t = inputs[:, t, :]
                gates = x_t @ W + h @ U + b
                i = _sigmoid(gates[:, :H])
                f = _sigmoid(gates[:, H : 2 * H])
                g = np.tanh(gates[:, 2 * H : 3 * H])
                o = _sigmoid(gates[:, 3 * H :])
                cache.x.append(x_t)
                cache.h_prev.append(h)
                cache.c_prev.append(c)
                c = f * c + i * g
                tanh_c = np.tanh(c)
                h = o * tanh_c
                cache.i.append(i)
                cache.f.append(f)
                cache.g.append(g)
                cache.o.append(o)
                cache.c.append(c)
                cache.tanh_c.append(tanh_c)
                h_seq[:, t, :] = h
            cache.h_seq = h_seq
            caches.append(cache)
            inputs = h_seq
        y = inputs[:, -1, :] @ self._params["Wy"] + self._params["by"]
        return y[:, 0], caches

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def _backward(
        self, X: np.ndarray, y_pred: np.ndarray, y_true: np.ndarray,
        caches: List[_LayerCache],
    ) -> Dict[str, np.ndarray]:
        """Full BPTT; returns gradients of mean-squared-error / 2."""
        cfg = self.config
        B, T = X.shape
        H = cfg.hidden_size
        grads = {k: np.zeros_like(v) for k, v in self._params.items()}

        dy = (y_pred - y_true)[:, None] / B  # (B, 1)
        top_h_last = caches[-1].h_seq[:, -1, :]
        grads["Wy"] = top_h_last.T @ dy
        grads["by"] = dy.sum(axis=0)

        # Gradient flowing into each layer's output sequence.
        d_out = np.zeros((B, T, H))
        d_out[:, -1, :] = dy @ self._params["Wy"].T

        for layer in range(cfg.n_layers - 1, -1, -1):
            cache = caches[layer]
            W = self._params[f"W{layer}"]
            U = self._params[f"U{layer}"]
            D = W.shape[0]
            dW = grads[f"W{layer}"]
            dU = grads[f"U{layer}"]
            db = grads[f"b{layer}"]
            d_in = np.zeros((B, T, D))
            dh_next = np.zeros((B, H))
            dc_next = np.zeros((B, H))
            for t in range(T - 1, -1, -1):
                dh = d_out[:, t, :] + dh_next
                o = cache.o[t]
                tanh_c = cache.tanh_c[t]
                do = dh * tanh_c
                dc = dh * o * (1.0 - tanh_c**2) + dc_next
                i = cache.i[t]
                f = cache.f[t]
                g = cache.g[t]
                di = dc * g
                df = dc * cache.c_prev[t]
                dg = dc * i
                da = np.concatenate(
                    [
                        di * i * (1.0 - i),
                        df * f * (1.0 - f),
                        dg * (1.0 - g**2),
                        do * o * (1.0 - o),
                    ],
                    axis=1,
                )
                dW += cache.x[t].T @ da
                dU += cache.h_prev[t].T @ da
                db += da.sum(axis=0)
                d_in[:, t, :] = da @ W.T
                dh_next = da @ U.T
                dc_next = dc * f
            d_out = d_in  # becomes the output-gradient of the layer below
        return grads

    def _adam_step(self, grads: Dict[str, np.ndarray]) -> None:
        cfg = self.config
        norm = np.sqrt(sum(float((g**2).sum()) for g in grads.values()))
        scale = min(1.0, cfg.clip_norm / (norm + 1e-12))
        self._adam_t += 1
        b1, b2, eps = 0.9, 0.999, 1e-8
        lr = cfg.learning_rate
        for key, g in grads.items():
            g = g * scale
            self._adam_m[key] = b1 * self._adam_m[key] + (1 - b1) * g
            self._adam_v[key] = b2 * self._adam_v[key] + (1 - b2) * g * g
            m_hat = self._adam_m[key] / (1 - b1**self._adam_t)
            v_hat = self._adam_v[key] / (1 - b2**self._adam_t)
            self._params[key] -= lr * m_hat / (np.sqrt(v_hat) + eps)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(self, series: np.ndarray) -> "LstmForecaster":
        """Train on a 1-D series of hourly counts.

        Raises:
            ValueError: if the series is too short for the lookback.
        """
        cfg = self.config
        arr = np.asarray(series, dtype=float).ravel()
        self._mean = float(arr.mean())
        self._std = float(arr.std()) or 1.0
        normed = (arr - self._mean) / self._std
        X, y = sliding_windows(normed, cfg.lookback)
        self.fit_windows(X, y)
        return self

    def fit_windows(self, X: np.ndarray, y: np.ndarray) -> "LstmForecaster":
        """Train directly on pre-normalised supervised windows.

        Used by multi-series wrappers (e.g. the per-grid forecaster) that
        pool windows from many cells under shared weights.  No input
        scaling is applied — callers own the normalisation, and
        :meth:`forecast` will de-normalise with whatever ``_mean`` /
        ``_std`` the caller configured (defaults: identity).

        Raises:
            ValueError: on shape mismatches.
        """
        cfg = self.config
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[1] != cfg.lookback:
            raise ValueError(
                f"expected windows of shape (n, {cfg.lookback}), got {X.shape}"
            )
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"{X.shape[0]} windows but {y.shape[0]} targets"
            )
        if X.shape[0] == 0:
            raise ValueError("no training windows")
        n = X.shape[0]
        self.loss_history = []
        for _ in range(cfg.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                y_pred, caches = self._forward(X[idx])
                grads = self._backward(X[idx], y_pred, y[idx], caches)
                self._adam_step(grads)
                epoch_loss += float(((y_pred - y[idx]) ** 2).sum())
            self.loss_history.append(epoch_loss / n)
        return self

    def predict_normalised(self, window: np.ndarray) -> float:
        """One-step prediction on an already-normalised window.

        Raises:
            RuntimeError: if called before training.
            ValueError: on a wrong-length window.
        """
        return float(self.predict_normalised_batch(np.asarray(window)[None, :])[0])

    def predict_normalised_batch(self, windows: np.ndarray) -> np.ndarray:
        """One-step predictions for a batch of normalised windows.

        Args:
            windows: shape ``(batch, lookback)``.

        Returns:
            Array of ``batch`` predictions.

        Raises:
            RuntimeError: if called before training.
            ValueError: on a wrong window width.
        """
        if not self.loss_history:
            raise RuntimeError("predict_normalised_batch called before fit")
        W = np.asarray(windows, dtype=float)
        if W.ndim != 2 or W.shape[1] != self.config.lookback:
            raise ValueError(
                f"expected windows of shape (n, {self.config.lookback}), got {W.shape}"
            )
        y, _ = self._forward(W)
        return np.asarray(y, dtype=float)

    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Recursive multi-step forecast from the tail of ``history``.

        Raises:
            RuntimeError: if called before :meth:`fit`.
            ValueError: if the history is shorter than the lookback.
        """
        self._check_horizon(horizon)
        if not self.loss_history:
            raise RuntimeError("LstmForecaster.forecast called before fit")
        cfg = self.config
        hist = np.asarray(history, dtype=float).ravel()
        if hist.size < cfg.lookback:
            raise ValueError(
                f"history of {hist.size} shorter than lookback {cfg.lookback}"
            )
        window = ((hist[-cfg.lookback :] - self._mean) / self._std).tolist()
        out = []
        for _ in range(horizon):
            y, _ = self._forward(np.asarray(window[-cfg.lookback :])[None, :])
            nxt = float(y[0])
            window.append(nxt)
            out.append(nxt * self._std + self._mean)
        return np.asarray(out)

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"LstmForecaster(lookback={cfg.lookback}, hidden={cfg.hidden_size}, "
            f"layers={cfg.n_layers})"
        )
