"""Exception taxonomy for runtime state protection and crash recovery.

The long-running service tier (Fig. 3) needs failures it can *reason*
about: invariant violations between live views must surface as typed
errors even under ``python -O`` (a bare ``assert`` is stripped), and the
recovery path must distinguish a torn checkpoint file (skip to the
previous good one) from an incompatible format version (refuse loudly).
"""

from __future__ import annotations

__all__ = [
    "StateDriftError",
    "SnapshotError",
    "SnapshotCorruptError",
    "SnapshotVersionError",
    "JournalCorruptError",
    "InjectedCrash",
    "WorkerCrashError",
    "BreakerOpenError",
    "RuntimeHaltedError",
    "InjectedSubsystemError",
    "BlockApplyError",
]


class StateDriftError(RuntimeError):
    """Two live views of the system state disagree.

    Raised by consistency checks (planner vs fleet vs retired-id
    bookkeeping) in place of ``assert`` so the guard survives
    ``python -O``.  Seeing this means in-memory state is corrupt; the
    safe reaction is to restore the latest checkpoint.
    """


class SnapshotError(RuntimeError):
    """Base class for checkpoint save/load failures."""


class SnapshotCorruptError(SnapshotError):
    """A snapshot file failed its checksum or could not be parsed.

    Torn / partially-written files land here; recovery skips them and
    falls back to the previous good snapshot.
    """


class SnapshotVersionError(SnapshotError):
    """A snapshot was written by an incompatible format version.

    Unlike corruption this is never silently skipped: loading must be
    refused so an operator can migrate the file deliberately.
    """


class JournalCorruptError(RuntimeError):
    """The trip journal is damaged somewhere other than its tail.

    A torn *final* record is the expected signature of a crash mid-append
    and is dropped silently; a bad checksum earlier in the file means the
    journal cannot be trusted and replay must stop.
    """


class InjectedCrash(RuntimeError):
    """A simulated crash raised by the chaos harness.

    Production code never raises this; tests and the fault-injection
    smoke job use it to cut a run short at a controlled point.
    """


class WorkerCrashError(RuntimeError):
    """A process-pool worker died without returning a result.

    Raised by :class:`repro.parallel.ParallelRunner` when a worker
    process exits abnormally (segfault, ``os._exit``, OOM kill) or a
    task exceeds its timeout.  Ordinary exceptions raised *inside* a
    task are re-raised as themselves; this error means the pool itself
    broke, so the fan-out must be treated as failed rather than silently
    hanging on futures that will never complete.
    """


class BreakerOpenError(RuntimeError):
    """A circuit breaker refused a call because the subsystem is open.

    Raised by :meth:`repro.guard.CircuitBreaker.call` when no fallback
    was configured; guarded wrappers that *do* carry a fallback absorb
    the open state and never surface this error.
    """


class RuntimeHaltedError(RuntimeError):
    """The guarded runtime gave up and refuses further events.

    Entered only when durability itself fails (checkpoint I/O retries
    exhausted, journal unusable): serving on would risk unrecoverable
    state, so the supervisor fails stopped rather than failing open.
    """


class InjectedSubsystemError(RuntimeError):
    """A simulated subsystem failure raised by the chaos harness.

    Production code never raises this; the fault injector wraps KS /
    incentive / forecast calls with it so tests can prove the circuit
    breakers open, fall back, and recover deterministically.
    """


class BlockApplyError(RuntimeError):
    """A group-committed block failed partway through its apply loop.

    Raised by :meth:`repro.resilience.CheckpointingService.handle_block`
    when applying trip ``index`` of the block raised ``cause``.  Every
    trip of the block was already durably journaled (group commit writes
    the WAL *before* any apply), so the supervisor can recover: the
    journal replay re-applies the failing trip and the rest of the block
    through a healed service.

    Attributes:
        index: 0-based position in the block where the apply failed.
        outcomes: per-position outcomes for positions ``< index``
            (``None`` for screened duplicates, otherwise the response).
        remaining_fresh: for positions ``index ..`` in order, ``True``
            when the position was journaled (fresh) and ``False`` when
            it was screened as a duplicate.  ``remaining_fresh[0]`` is
            always ``True`` — the failing trip was being applied.
        cause: the exception the apply raised.
    """

    def __init__(self, index, outcomes, remaining_fresh, cause) -> None:
        super().__init__(f"block apply failed at position {index}: {cause!r}")
        self.index = index
        self.outcomes = outcomes
        self.remaining_fresh = remaining_fresh
        self.cause = cause
