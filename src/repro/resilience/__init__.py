"""Crash-safe service state: checkpoints, trip journal, chaos harness.

The paper's Fig. 3 backend is a long-running stateful server — Algorithm
2's opened stations, rescaled opening costs, KS live window and RNG
stream accumulate for days.  This subsystem makes that tier survive
crashes with **bit-identical recovery**:

* :class:`SnapshotStore` — versioned, checksummed, atomically-written
  snapshots of the full mutable state (torn files are detected and
  skipped to the previous good snapshot);
* :class:`TripJournal` — a write-ahead log of every trip, so
  ``restore(snapshot) + replay(journal tail)`` reproduces the exact
  state and response stream an uninterrupted run would have produced;
* :class:`CheckpointingService` — the crash-safe wrapper gluing the two
  around a :class:`~repro.core.streaming.PlacementService`;
* :class:`FaultInjector` — chaos tooling that injects crashes,
  duplicated/reordered/dropped trips and torn checkpoint writes, for the
  recovery tests and the CI fault-injection smoke job;
* :class:`FaultFS` — deterministic *storage*-level fault injection on
  the :mod:`repro.ioutil` write/fsync seam (ENOSPC, torn writes, fsync
  failure, payload-keyed poison markers, at-rest bit-rot);
* :func:`scrub_tree` — the background integrity scrubber: verifies
  every snapshot and WAL checksum, demotes corrupt snapshots to the
  previous good version, rebuilds torn journal tails and sweeps orphan
  tmp files, over one checkpoint directory or a whole sharded fleet.
"""

from ..errors import (
    InjectedCrash,
    JournalCorruptError,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    StateDriftError,
)
from .chaos import ChaosConfig, FaultInjector, simulate_period_crash
from .faultfs import FaultFS, FaultFSConfig
from .journal import JournalEntry, TripJournal
from .scrub import (
    ScrubFinding,
    ScrubReport,
    repair_journal_tail,
    scrub_checkpoint_dir,
    scrub_journal,
    scrub_snapshots,
    scrub_tree,
)
from .service import (
    CheckpointingService,
    RecoveryInfo,
    constant_cost_spec,
    facility_cost_from_spec,
)
from .snapshot import (
    SNAPSHOT_VERSION,
    Snapshot,
    SnapshotStore,
    decode_snapshot,
    encode_snapshot,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "ChaosConfig",
    "CheckpointingService",
    "FaultFS",
    "FaultFSConfig",
    "FaultInjector",
    "ScrubFinding",
    "ScrubReport",
    "repair_journal_tail",
    "scrub_checkpoint_dir",
    "scrub_journal",
    "scrub_snapshots",
    "scrub_tree",
    "InjectedCrash",
    "JournalCorruptError",
    "JournalEntry",
    "RecoveryInfo",
    "Snapshot",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotStore",
    "SnapshotVersionError",
    "StateDriftError",
    "TripJournal",
    "constant_cost_spec",
    "decode_snapshot",
    "encode_snapshot",
    "facility_cost_from_spec",
    "simulate_period_crash",
]
