"""Deterministic filesystem fault injection for the durable tier.

:class:`FaultFS` plugs into the :mod:`repro.ioutil` fault seam
(:func:`~repro.ioutil.install_fs_seam`) and interposes every durable
write and fsync in the process — snapshot tmp files, the write-ahead
journal, incident logs — simulating the disk failures a long-running
deployment actually meets:

* **ENOSPC** — the write fails before a single byte lands;
* **torn write** — a seeded prefix of the payload lands, then the write
  raises ``EIO`` (a short write surfaced as the error it is: the journal
  gains a repairable torn tail, an atomic write loses only its tmp);
* **fsync failure** — the data is in the page cache but durability
  cannot be promised, so the fsync raises ``EIO``;
* **poison markers** — any write whose payload contains a marker
  substring always fails (a bad sector keyed to specific records: the
  deterministic mechanism behind poison-block quarantine);
* **bit-rot** (:meth:`FaultFS.bitrot`) — flip one seeded byte of a file
  at rest, the damage the integrity scrubber exists to catch.

All randomness comes from one seeded generator drawn in write order, and
a category with rate zero consumes **no** draws — the same decoupling
rule the trip-level chaos harness follows, so enabling one fault class
never shifts another's schedule.

The invariant the injector exists to prove: **no injected write or
fsync failure may leave an orphan ``*.tmp-*`` file or a corrupted
current file** — an atomic destination holds the old bytes or the new
bytes, never a prefix, and journal damage is confined to a repairable
torn tail.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Dict, Optional, Tuple, Union

import numpy as np

from ..ioutil import install_fs_seam

__all__ = ["FaultFSConfig", "FaultFS"]


@dataclass(frozen=True)
class FaultFSConfig:
    """Schedule of one deterministic disk-fault campaign.

    Attributes:
        seed: root seed of the write-ordered fault draws.
        p_enospc: per-write probability the write fails with ``ENOSPC``
            before any byte lands.
        p_torn: per-write probability a strict prefix of the payload
            lands and the write raises ``EIO``.
        p_fsync: per-fsync probability the fsync raises ``EIO`` (the
            data was written; durability was not promised).
        match: substring filter on the target path; empty matches every
            path.  Lets a schedule aim at one shard directory or one
            file class (``"journal.jsonl"``).
        max_faults: optional cap on faults injected across all
            categories; afterwards the seam is a passthrough (models a
            transient outage that clears).
        poison_markers: payload substrings whose presence always fails
            the write with ``EIO`` — deterministic, draw-free, keyed to
            record content rather than write order.

    Raises:
        ValueError: on rates outside ``[0, 1]`` or a non-positive cap.
    """

    seed: int = 0
    p_enospc: float = 0.0
    p_torn: float = 0.0
    p_fsync: float = 0.0
    match: str = ""
    max_faults: Optional[int] = None
    poison_markers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("p_enospc", "p_torn", "p_fsync"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.max_faults is not None and self.max_faults <= 0:
            raise ValueError(f"max_faults must be positive, got {self.max_faults}")


class _Injection:
    """Context manager installing/restoring a FaultFS on the ioutil seam."""

    def __init__(self, fs: "FaultFS") -> None:
        self._fs = fs
        self._previous: Optional[object] = None

    def __enter__(self) -> "FaultFS":
        self._previous = install_fs_seam(self._fs)
        return self._fs

    def __exit__(self, *exc_info) -> None:
        install_fs_seam(self._previous)


@dataclass
class _Counters:
    enospc: int = 0
    torn: int = 0
    fsync: int = 0
    poisoned: int = 0
    writes: int = 0
    fsyncs: int = 0

    @property
    def faults(self) -> int:
        return self.enospc + self.torn + self.fsync + self.poisoned


class FaultFS:
    """The seam object: seeded disk faults with exact accounting.

    Use :meth:`inject` to scope the installation::

        fs = FaultFS(FaultFSConfig(seed=7, p_torn=0.05, match=str(root)))
        with fs.inject():
            fleet.serve(trips)
        assert fs.counters.torn > 0

    Attributes:
        config: the fault schedule.
        counters: per-category fault and traffic counts.
        faults_by_path: injected-fault count per target path (string
            keys) — the gauntlet uses it to attribute damage to shards.
    """

    def __init__(self, config: Optional[FaultFSConfig] = None) -> None:
        self.config = config or FaultFSConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.counters = _Counters()
        self.faults_by_path: Dict[str, int] = {}

    def inject(self) -> _Injection:
        """Install on the ioutil seam for a ``with`` block; always
        restores the previous seam on exit, even when the block raises."""
        return _Injection(self)

    # ------------------------------------------------------------------
    def _eligible(self, path: Path) -> bool:
        return self.config.match in str(path)

    def _budget_left(self) -> bool:
        cap = self.config.max_faults
        return cap is None or self.counters.faults < cap

    def _record(self, path: Path) -> None:
        key = str(path)
        self.faults_by_path[key] = self.faults_by_path.get(key, 0) + 1

    # ------------------------------------------------------------------
    # the seam protocol
    def write(self, fh: IO, data, path: Path) -> None:
        """Seam hook for every journal/snapshot write: check poison
        markers, then draw ENOSPC / torn-write faults in write order
        before (possibly partially) writing ``data`` to ``fh``."""
        self.counters.writes += 1
        if not self._eligible(path):
            fh.write(data)
            return
        text = data if isinstance(data, str) else data.decode("utf-8", "replace")
        for marker in self.config.poison_markers:
            if marker in text:
                # Draw-free and budget-exempt: a bad sector does not heal
                # because other faults happened first.
                self.counters.poisoned += 1
                self._record(path)
                raise OSError(errno.EIO, f"injected poisoned write: {path}")
        cfg = self.config
        if cfg.p_enospc > 0 and self._budget_left():
            if self._rng.uniform() < cfg.p_enospc:
                self.counters.enospc += 1
                self._record(path)
                raise OSError(errno.ENOSPC, f"injected ENOSPC: {path}")
        if cfg.p_torn > 0 and self._budget_left():
            if self._rng.uniform() < cfg.p_torn and len(data) > 1:
                cut = int(self._rng.integers(1, len(data)))
                fh.write(data[:cut])
                self.counters.torn += 1
                self._record(path)
                raise OSError(
                    errno.EIO, f"injected torn write ({cut}/{len(data)}): {path}"
                )
        fh.write(data)

    def fsync(self, fileno: int, path: Path) -> None:
        """Seam hook for every fsync: draw a failure (raised *before*
        the real fsync, so the data may still be in the page cache) or
        pass through to ``os.fsync``."""
        self.counters.fsyncs += 1
        cfg = self.config
        if cfg.p_fsync > 0 and self._eligible(path) and self._budget_left():
            if self._rng.uniform() < cfg.p_fsync:
                self.counters.fsync += 1
                self._record(path)
                raise OSError(errno.EIO, f"injected fsync failure: {path}")
        os.fsync(fileno)

    # ------------------------------------------------------------------
    @staticmethod
    def bitrot(path: Union[str, Path], seed: int = 0) -> int:
        """Flip one seeded bit of ``path`` in place; returns the byte
        offset flipped.

        Models silent at-rest corruption (cosmic ray, failing sector):
        the file keeps its length and structure but one byte lies.  The
        checksum layers — snapshot header, per-line journal digests —
        are what must catch it.

        Raises:
            ValueError: if the file is empty (nothing to rot).
        """
        path = Path(path)
        raw = bytearray(path.read_bytes())
        if not raw:
            raise ValueError(f"cannot bit-rot empty file: {path}")
        rng = np.random.default_rng(seed)
        offset = int(rng.integers(0, len(raw)))
        raw[offset] ^= 1 << int(rng.integers(0, 8))
        path.write_bytes(bytes(raw))
        return offset

    def to_text(self) -> str:
        """One-line human summary of the campaign so far."""
        c = self.counters
        return (
            f"faultfs: {c.faults} fault(s) over {c.writes} write(s) / "
            f"{c.fsyncs} fsync(s) — enospc={c.enospc} torn={c.torn} "
            f"fsync={c.fsync} poisoned={c.poisoned}"
        )
