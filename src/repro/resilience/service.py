"""The crash-safe placement service: WAL + periodic snapshots + recovery.

:class:`CheckpointingService` wraps a
:class:`~repro.core.streaming.PlacementService` with the write-ahead
protocol::

    journal.append(trip)      # durable first
    service.handle_trip(trip) # then apply
    every N trips: snapshot   # atomic, checksummed, rotated

so that after any crash, ``recover(directory)`` = *latest good snapshot*
+ *journal tail replay* reproduces the exact in-memory state — station
set, fleet batteries, RNG bit stream, response list — the uninterrupted
run would have had.  Duplicate deliveries (an at-least-once upstream
queue redelivering a trip) are screened by order id before they reach
the journal, so replay never double-applies.

The planner's opening-cost function is a callable and cannot be
serialised; snapshots carry an optional declarative *spec* for the
common cases (see :func:`constant_cost_spec`) and
:meth:`CheckpointingService.recover` accepts an explicit
``facility_cost`` for everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from ..core.costs import FacilityCostFn, constant_facility_cost
from ..core.streaming import PlacementService, ServiceResponse
from ..datasets.trips import TripRecord
from ..errors import BlockApplyError, SnapshotError, StateDriftError
from .journal import TripJournal
from .snapshot import SnapshotStore, WriteBytes

__all__ = [
    "CheckpointingService",
    "RecoveryInfo",
    "constant_cost_spec",
    "facility_cost_from_spec",
    "JOURNAL_NAME",
]

JOURNAL_NAME = "journal.jsonl"
"""Filename of the write-ahead trip journal inside a checkpoint directory."""


def constant_cost_spec(value: float) -> Dict[str, Any]:
    """Declarative snapshot spec for a constant opening cost.

    Raises:
        ValueError: on a negative cost.
    """
    if value < 0:
        raise ValueError(f"facility cost must be non-negative, got {value}")
    return {"kind": "constant", "value": float(value)}


def facility_cost_from_spec(spec: Optional[Dict[str, Any]]) -> FacilityCostFn:
    """Rebuild an opening-cost function from its snapshot spec.

    Raises:
        ValueError: when the spec is missing (the original cost was an
            opaque callable — pass ``facility_cost=`` to ``recover``) or
            names an unknown kind.
    """
    if spec is None:
        raise ValueError(
            "snapshot carries no facility-cost spec; the original run used "
            "an opaque callable — pass facility_cost= explicitly to recover()"
        )
    kind = spec.get("kind")
    if kind == "constant":
        return constant_facility_cost(float(spec["value"]))
    raise ValueError(f"unknown facility-cost spec kind {kind!r}")


@dataclass(frozen=True)
class RecoveryInfo:
    """What a :meth:`CheckpointingService.recover` call actually did.

    Attributes:
        snapshot_seq: journal sequence the restored snapshot was current
            through (0 = the genesis snapshot).
        replayed: journal-tail records re-applied on top of it.
        snapshot_path: file the state was restored from.
    """

    snapshot_seq: int
    replayed: int
    snapshot_path: Optional[Path]


class CheckpointingService:
    """Crash-safe wrapper around a :class:`PlacementService`.

    Construction adopts a *fresh* checkpoint directory and immediately
    writes the genesis snapshot (so recovery works even if the process
    dies before the first periodic checkpoint — the "empty journal"
    case).  An already-populated directory is refused: resuming existing
    state must go through :meth:`recover`, otherwise two diverging
    histories could share one journal.

    Args:
        service: the live service to protect.  Must not have served any
            trips yet (its response ledger seeds the journal accounting).
        directory: checkpoint directory (snapshots + journal).
        checkpoint_every: trips between periodic snapshots (>= 1).
        keep: snapshot generations to retain.
        durable: fsync journal appends and snapshot writes (tests disable
            for speed; crash-consistency within the process is kept).
        facility_cost_spec: declarative description of the planner's
            opening cost (see :func:`constant_cost_spec`) stored in every
            snapshot so :meth:`recover` can rebuild it without help.
        dedup: screen out trips whose order id was already served
            (at-least-once upstream delivery).
        write_bytes: snapshot writer override for fault injection.

    Raises:
        ValueError: on a non-positive ``checkpoint_every``, a service
            with prior responses, or a directory that already holds
            snapshots.
    """

    def __init__(
        self,
        service: PlacementService,
        directory: Union[str, Path],
        checkpoint_every: int = 200,
        keep: int = 3,
        durable: bool = True,
        facility_cost_spec: Optional[Dict[str, Any]] = None,
        dedup: bool = True,
        write_bytes: Optional[WriteBytes] = None,
    ) -> None:
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if service.responses:
            raise ValueError(
                "service has already handled trips; wrap it before serving "
                "(or rebuild via CheckpointingService.recover)"
            )
        self.service = service
        self.directory = Path(directory)
        self.checkpoint_every = checkpoint_every
        self.dedup = dedup
        self.facility_cost_spec = facility_cost_spec
        self.store = SnapshotStore(
            self.directory, keep=keep, durable=durable, write_bytes=write_bytes
        )
        if self.store.list():
            raise ValueError(
                f"{self.directory} already holds snapshots; use "
                "CheckpointingService.recover() to resume them"
            )
        self.journal = TripJournal(self.directory / JOURNAL_NAME, durable=durable)
        self._applied = 0
        self._seen: set = set()
        self.last_recovery: Optional[RecoveryInfo] = None
        self.checkpoint()  # genesis: recovery works from trip zero

    # ------------------------------------------------------------------
    @property
    def applied_seq(self) -> int:
        """Journal sequence number of the last trip applied to the service."""
        return self._applied

    def handle_trip(self, trip: TripRecord) -> Optional[ServiceResponse]:
        """Serve one trip under the write-ahead protocol.

        Returns ``None`` for a screened duplicate (its original response
        is already in ``service.responses``); otherwise the service's
        response.  The trip is durably journaled *before* any state
        mutates, so a crash at any point is recoverable.
        """
        if self.dedup and trip.order_id in self._seen:
            return None
        seq = self.journal.append(trip)
        response = self.service.handle_trip(trip)
        self._seen.add(trip.order_id)
        self._applied = seq
        if seq % self.checkpoint_every == 0:
            self.checkpoint()
        return response

    def serve(self, trips: Iterable[TripRecord]) -> List[Optional[ServiceResponse]]:
        """Serve a batch in arrival order (one ``None`` per duplicate)."""
        return [self.handle_trip(t) for t in trips]

    def handle_block(self, trips: List[TripRecord]) -> List[Optional[ServiceResponse]]:
        """Serve a block under the *group-commit* write-ahead protocol.

        Same responses, journal bytes, sequence numbers, dedup decisions
        and checkpoint cadence as per-trip :meth:`handle_trip` calls —
        but the block's fresh trips are journaled with a single fsynced
        write (:meth:`TripJournal.append_block`) before any of them is
        applied.  The dedup screen runs first (it sees earlier trips of
        the same block, like the sequential path would), so a duplicate
        is never journaled twice.

        Group commit shifts one failure boundary: when applying trip
        ``i`` raises, trips ``> i`` of the block are *already journaled*
        (the scalar path would not have journaled them yet), so a
        recovery replay applies them too.  That is surfaced as a
        :class:`~repro.errors.BlockApplyError` carrying the applied
        prefix's outcomes and the fresh/duplicate classification of the
        remainder — everything a supervisor needs to account for a heal.

        Raises:
            OSError: journal I/O failed; no trip of the block was
                applied (the WAL write precedes every apply).
            BlockApplyError: applying one trip failed (including a
                checkpoint failure directly after it); see above.
        """
        responses: List[Optional[ServiceResponse]] = [None] * len(trips)
        fresh: List[TripRecord] = []
        fresh_pos: List[int] = []
        pending: set = set()
        for i, trip in enumerate(trips):
            if self.dedup and (trip.order_id in self._seen or trip.order_id in pending):
                continue
            fresh.append(trip)
            fresh_pos.append(i)
            if self.dedup:
                pending.add(trip.order_id)
        seqs = self.journal.append_block(fresh)
        for j, trip in enumerate(fresh):
            pos = fresh_pos[j]
            try:
                response = self.service.handle_trip(trip)
                self._seen.add(trip.order_id)
                self._applied = seqs[j]
                responses[pos] = response
                if seqs[j] % self.checkpoint_every == 0:
                    self.checkpoint()
            except Exception as exc:  # noqa: BLE001 — classified by caller
                fresh_set = set(fresh_pos[j:])
                raise BlockApplyError(
                    index=pos,
                    outcomes=responses[:pos],
                    remaining_fresh=[
                        p in fresh_set for p in range(pos, len(trips))
                    ],
                    cause=exc,
                ) from exc
        return responses

    def checkpoint(self) -> Path:
        """Write a snapshot of the full service state now.

        Returns:
            The snapshot's path.
        """
        payload = {
            "service": self.service.state_dict(),
            "applied": self._applied,
            "seen_orders": sorted(self._seen),
            "facility_cost_spec": self.facility_cost_spec,
            "dedup": self.dedup,
        }
        return self.store.save(payload, self._applied)

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: Union[str, Path],
        facility_cost: Optional[FacilityCostFn] = None,
        checkpoint_every: int = 200,
        keep: int = 3,
        durable: bool = True,
        write_bytes: Optional[WriteBytes] = None,
        post_restore: Optional[Callable[[PlacementService], None]] = None,
    ) -> "CheckpointingService":
        """Rebuild the service from a checkpoint directory after a crash.

        Loads the newest *good* snapshot (torn files are skipped), then
        replays the journal tail beyond it — reproducing exactly the
        state an uninterrupted run would hold.  Recovery is read-only
        until new trips arrive, so recovering twice from the same
        directory yields identical services.

        Args:
            directory: the checkpoint directory to resume.
            facility_cost: the planner's opening-cost function; optional
                when the snapshot carries a spec.
            checkpoint_every: periodic-snapshot cadence for the resumed
                service.
            keep: snapshot generations to retain going forward.
            durable: fsync policy going forward.
            write_bytes: snapshot writer override for fault injection.
            post_restore: hook invoked with the restored
                :class:`PlacementService` *before* the journal tail is
                replayed.  The guarded runtime uses it to re-install its
                subsystem wrappers (e.g. the breaker-guarded KS test) so
                the tail replays through exactly the stack the original
                run used — without it, a run that degraded mid-stream
                would replay its tail through the unguarded subsystems
                and diverge.

        Raises:
            SnapshotError: when no usable snapshot exists.
            SnapshotVersionError: on a format-version mismatch.
            JournalCorruptError: on mid-file journal damage.
            ValueError: when neither a spec nor ``facility_cost`` is
                available.
        """
        directory = Path(directory)
        store = SnapshotStore(
            directory, keep=keep, durable=durable, write_bytes=write_bytes
        )
        snapshot = store.load_latest()
        payload = snapshot.payload
        spec = payload.get("facility_cost_spec")
        if facility_cost is None:
            facility_cost = facility_cost_from_spec(spec)
        service = PlacementService.from_state(payload["service"], facility_cost)
        if post_restore is not None:
            post_restore(service)

        wrapper = cls.__new__(cls)
        wrapper.service = service
        wrapper.directory = directory
        wrapper.checkpoint_every = checkpoint_every
        wrapper.dedup = bool(payload.get("dedup", True))
        wrapper.facility_cost_spec = spec
        wrapper.store = store
        wrapper.journal = TripJournal(directory / JOURNAL_NAME, durable=durable)
        wrapper._applied = int(payload["applied"])
        wrapper._seen = set(payload.get("seen_orders", []))
        tail = wrapper.journal.replay(after_seq=wrapper._applied)
        for entry in tail:
            # Already journaled (and already deduped at ingestion): apply
            # directly, without re-appending.
            wrapper.service.handle_trip(entry.trip)
            wrapper._seen.add(entry.trip.order_id)
            wrapper._applied = entry.seq
        wrapper.last_recovery = RecoveryInfo(
            snapshot_seq=snapshot.seq,
            replayed=len(tail),
            snapshot_path=snapshot.path,
        )
        return wrapper

    # ------------------------------------------------------------------
    def consistency_check(self) -> None:
        """Verify the wrapper's accounting on top of the service's own.

        Raises:
            StateDriftError: on planner/fleet drift or journal-accounting
                drift (every applied trip must have produced exactly one
                response).
        """
        self.service.consistency_check()
        if len(self.service.responses) != self._applied:
            raise StateDriftError(
                f"journal says {self._applied} trips applied but the service "
                f"holds {len(self.service.responses)} responses"
            )
        if self._applied >= self.journal.next_seq:
            raise StateDriftError(
                f"applied sequence {self._applied} is ahead of the journal "
                f"(next seq {self.journal.next_seq})"
            )

    def close(self) -> None:
        """Release the journal file handle (safe to call repeatedly)."""
        self.journal.close()
