"""Write-ahead trip journal with exact replay recovery.

Every trip is appended (and flushed, optionally fsynced) *before* it is
applied to the service, so the durable journal is always at least as
long as any state a snapshot can capture.  Recovery is then::

    restore(latest good snapshot)        # state through journal seq S
    replay(journal entries with seq > S) # the tail the crash cut off

and reproduces the exact state and response stream of an uninterrupted
run — the trips are the only input, and the restored RNG replays the
same coin flips.

Record format, one per line::

    <sha256-prefix> {"seq": n, "trip": {...}}

The checksum covers the JSON body.  A damaged *final* line is the
expected signature of a crash mid-append and is dropped silently; damage
anywhere earlier means the file cannot be trusted and raises
:class:`~repro.errors.JournalCorruptError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, List, Optional, Union

from ..datasets.trips import TripRecord
from ..errors import JournalCorruptError
from ..ioutil import checksum_hex
from ..serialize import trip_from_state, trip_to_state

__all__ = ["JournalEntry", "TripJournal", "CHECKSUM_PREFIX_LEN"]

CHECKSUM_PREFIX_LEN = 16
"""Hex chars of the per-record SHA-256 stored in front of each line."""


@dataclass(frozen=True)
class JournalEntry:
    """One replayable journal record.

    Attributes:
        seq: 1-based append sequence number.
        trip: the journaled trip.
    """

    seq: int
    trip: TripRecord


def _encode_line(seq: int, trip: TripRecord) -> str:
    body = json.dumps(
        {"seq": seq, "trip": trip_to_state(trip)},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    digest = checksum_hex(body.encode("utf-8"))[:CHECKSUM_PREFIX_LEN]
    return f"{digest} {body}\n"


def _decode_line(line: str) -> Optional[JournalEntry]:
    """Parse one journal line; ``None`` signals a damaged record."""
    digest, sep, body = line.rstrip("\n").partition(" ")
    if not sep or len(digest) != CHECKSUM_PREFIX_LEN:
        return None
    if checksum_hex(body.encode("utf-8"))[:CHECKSUM_PREFIX_LEN] != digest:
        return None
    try:
        record = json.loads(body)
        return JournalEntry(seq=int(record["seq"]), trip=trip_from_state(record["trip"]))
    except (ValueError, KeyError, TypeError, IndexError):
        return None


class TripJournal:
    """Append-only write-ahead log of trips, one checksummed line each.

    Args:
        path: the journal file; created on first append, re-opened for
            append when it already exists (sequence numbering continues
            from the durable tail).
        durable: ``fsync`` after every append so records survive power
            loss, not just process crash.  Tests disable it for speed.

    Raises:
        JournalCorruptError: if an existing file is damaged anywhere
            other than its final record.
    """

    def __init__(self, path: Union[str, Path], durable: bool = True) -> None:
        self.path = Path(path)
        self.durable = durable
        self._fh: Optional[IO[str]] = None
        self._next_seq = self._scan_tail() + 1

    def _scan_tail(self) -> int:
        if not self.path.exists():
            return 0
        entries = self.scan()
        return entries[-1].seq if entries else 0

    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`append` will assign."""
        return self._next_seq

    def append(self, trip: TripRecord) -> int:
        """Durably journal one trip; returns its sequence number.

        The record is flushed (and fsynced when ``durable``) before this
        returns, so a trip is never applied to the service without being
        recoverable from disk.
        """
        seq = self._next_seq
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(_encode_line(seq, trip))
        self._fh.flush()
        if self.durable:
            os.fsync(self._fh.fileno())
        self._next_seq = seq + 1
        return seq

    def close(self) -> None:
        """Close the underlying file handle (reopened on next append)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    def scan(self) -> List[JournalEntry]:
        """Every intact record in order, dropping only a torn tail.

        Raises:
            JournalCorruptError: if a damaged record is followed by an
                intact one (mid-file corruption — the log cannot be
                trusted) or if sequence numbers are not consecutive.
        """
        if not self.path.exists():
            return []
        entries: List[JournalEntry] = []
        torn_at: Optional[int] = None
        with open(self.path, "r", encoding="utf-8") as f:
            for line_no, line in enumerate(f, start=1):
                if line.strip() == "":
                    continue
                entry = _decode_line(line)
                if entry is None:
                    # Tolerated only as the very last record (torn append).
                    torn_at = line_no
                    continue
                if torn_at is not None:
                    raise JournalCorruptError(
                        f"{self.path}: damaged record at line {torn_at} is "
                        "followed by intact records — journal unusable"
                    )
                if entries and entry.seq != entries[-1].seq + 1:
                    raise JournalCorruptError(
                        f"{self.path}: sequence jump {entries[-1].seq} -> "
                        f"{entry.seq} at line {line_no}"
                    )
                entries.append(entry)
        return entries

    def replay(self, after_seq: int = 0) -> List[JournalEntry]:
        """Records with ``seq > after_seq`` — the tail a recovery applies.

        Raises:
            JournalCorruptError: as for :meth:`scan`.
        """
        return [e for e in self.scan() if e.seq > after_seq]
