"""Write-ahead trip journal with exact replay recovery.

Every trip is appended (and flushed, optionally fsynced) *before* it is
applied to the service, so the durable journal is always at least as
long as any state a snapshot can capture.  Recovery is then::

    restore(latest good snapshot)        # state through journal seq S
    replay(journal entries with seq > S) # the tail the crash cut off

and reproduces the exact state and response stream of an uninterrupted
run — the trips are the only input, and the restored RNG replays the
same coin flips.

Record format, one per line::

    <sha256-prefix> {"seq": n, "trip": {...}}

The checksum covers the JSON body.  A damaged *final* line is the
expected signature of a crash mid-append and is dropped silently; damage
anywhere earlier means the file cannot be trusted and raises
:class:`~repro.errors.JournalCorruptError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, List, Optional, Sequence, Union

import numpy as np

from ..core.tripblock import TripBlock, us_to_datetime
from ..datasets.trips import TripRecord
from ..errors import JournalCorruptError
from ..ioutil import checksum_hex, checksum_hex_many, fs_fsync, fs_write
from ..serialize import trip_from_state, trip_to_state

__all__ = ["JournalEntry", "TripJournal", "CHECKSUM_PREFIX_LEN"]

CHECKSUM_PREFIX_LEN = 16
"""Hex chars of the per-record SHA-256 stored in front of each line."""


@dataclass(frozen=True)
class JournalEntry:
    """One replayable journal record.

    Attributes:
        seq: 1-based append sequence number.
        trip: the journaled trip.
    """

    seq: int
    trip: TripRecord


def _encode_line(seq: int, trip: TripRecord) -> str:
    body = json.dumps(
        {"seq": seq, "trip": trip_to_state(trip)},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    digest = checksum_hex(body.encode("utf-8"))[:CHECKSUM_PREFIX_LEN]
    return f"{digest} {body}\n"


def _encode_block_lines(seqs: Sequence[int], block: TripBlock) -> List[str]:
    """Journal lines for a whole :class:`TripBlock`, built straight from
    the columns — byte-identical to :func:`_encode_line` on each
    materialised trip.

    The hand-assembled body relies on three facts about the scalar
    encoding: ``json.dumps(sort_keys=True)`` emits the trip keys in the
    fixed alphabetical order reproduced here; JSON renders Python ints
    and floats via ``repr`` (the ``tolist()`` columns are native Python
    scalars, so ``repr`` matches what the per-trip path serialises); and
    the only string field is an ISO-8601 timestamp, which never needs
    escaping.  Non-finite floats cannot take this shortcut (the scalar
    path raises through ``json.dumps(allow_nan=False)``), so those
    blocks fall back to the per-trip encoder for identical errors.
    """
    finite = np.isfinite(block.start_x) & np.isfinite(block.start_y)
    finite &= np.isfinite(block.end_x) & np.isfinite(block.end_y)
    finite &= np.isfinite(block.geodesic_m) | ~block.has_geodesic
    finite &= np.isfinite(block.battery) | ~block.has_battery
    if not bool(finite.all()):
        return [_encode_line(s, t) for s, t in zip(seqs, block.to_trips())]
    if not bool((block.start_us % 1_000_000).any()):
        # Whole-second timestamps (the normal trip feed): numpy renders
        # the ISO strings in one vectorized call, character-identical to
        # ``datetime.isoformat`` at second resolution.
        iso = np.datetime_as_string(
            block.start_us.astype("datetime64[us]").astype("datetime64[s]")
        ).tolist()
    else:
        iso = [us_to_datetime(us).isoformat() for us in block.start_us.tolist()]
    bodies = []
    append = bodies.append
    for seq, o, u, b, bt, ts, x1, y1, x2, y2, g, hg, ba, hb in zip(
        seqs,
        block.order_id.tolist(),
        block.user_id.tolist(),
        block.bike_id.tolist(),
        block.bike_type.tolist(),
        iso,
        block.start_x.tolist(),
        block.start_y.tolist(),
        block.end_x.tolist(),
        block.end_y.tolist(),
        block.geodesic_m.tolist(),
        block.has_geodesic.tolist(),
        block.battery.tolist(),
        block.has_battery.tolist(),
    ):
        battery = repr(ba) if hb else "null"
        geodesic = repr(g) if hg else "null"
        body = (
            f'{{"seq":{seq},"trip":{{'
            f'"battery":{battery},'
            f'"bike_id":{b},'
            f'"bike_type":{bt},'
            f'"end":[{x2!r},{y2!r}],'
            f'"geodesic_m":{geodesic},'
            f'"order_id":{o},'
            f'"start":[{x1!r},{y1!r}],'
            f'"start_time":"{ts}",'
            f'"user_id":{u}}}}}'
        )
        append(body)
    # Checksums for the whole group commit in one batched pass rather
    # than a fresh hashlib round-trip per line.
    digests = checksum_hex_many(
        (body.encode("utf-8") for body in bodies), CHECKSUM_PREFIX_LEN
    )
    return [f"{d} {body}\n" for d, body in zip(digests, bodies)]


def _decode_line(line: str) -> Optional[JournalEntry]:
    """Parse one journal line; ``None`` signals a damaged record."""
    digest, sep, body = line.rstrip("\n").partition(" ")
    if not sep or len(digest) != CHECKSUM_PREFIX_LEN:
        return None
    if checksum_hex(body.encode("utf-8"))[:CHECKSUM_PREFIX_LEN] != digest:
        return None
    try:
        record = json.loads(body)
        return JournalEntry(seq=int(record["seq"]), trip=trip_from_state(record["trip"]))
    except (ValueError, KeyError, TypeError, IndexError):
        return None


class TripJournal:
    """Append-only write-ahead log of trips, one checksummed line each.

    Args:
        path: the journal file; created on first append, re-opened for
            append when it already exists (sequence numbering continues
            from the durable tail).
        durable: ``fsync`` after every append so records survive power
            loss, not just process crash.  Tests disable it for speed.

    Raises:
        JournalCorruptError: if an existing file is damaged anywhere
            other than its final record.
    """

    def __init__(self, path: Union[str, Path], durable: bool = True) -> None:
        self.path = Path(path)
        self.durable = durable
        self._fh: Optional[IO[str]] = None
        self._next_seq = self._scan_tail() + 1

    def _scan_tail(self) -> int:
        if not self.path.exists():
            return 0
        entries = self.scan()
        return entries[-1].seq if entries else 0

    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`append` will assign."""
        return self._next_seq

    def append(self, trip: TripRecord) -> int:
        """Durably journal one trip; returns its sequence number.

        The record is flushed (and fsynced when ``durable``) before this
        returns, so a trip is never applied to the service without being
        recoverable from disk.
        """
        seq = self._next_seq
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        fs_write(self._fh, _encode_line(seq, trip), self.path)
        self._fh.flush()
        if self.durable:
            fs_fsync(self._fh.fileno(), self.path)
        self._next_seq = seq + 1
        return seq

    def append_block(
        self, trips: Union[Sequence[TripRecord], TripBlock]
    ) -> List[int]:
        """Group-commit: durably journal a whole block with **one**
        write + flush + fsync; returns the assigned sequence numbers.

        The bytes written are identical to per-trip :meth:`append` calls
        — same records, same order, same sequence numbers — but the
        fsync cost is amortised over the block, which is where the
        blocked stream path earns most of its speedup on a durable
        journal.  A columnar :class:`~repro.core.tripblock.TripBlock` is
        accepted directly and encoded straight from its arrays
        (:func:`_encode_block_lines`) — same bytes again, without
        materialising per-trip records.

        Crash semantics are unchanged: the block goes out as one
        contiguous write, so a crash mid-commit leaves an intact prefix
        of the block's records plus at most one torn final line — the
        exact shape :meth:`scan` already tolerates.  Records of the
        block *after* the tear are simply absent (never applied either:
        the caller applies only after this returns), so recovery still
        sees a journal that is at least as long as any applied state.
        """
        if not len(trips):
            return []
        first = self._next_seq
        seqs = list(range(first, first + len(trips)))
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        if isinstance(trips, TripBlock):
            lines = _encode_block_lines(seqs, trips)
        else:
            lines = [_encode_line(s, t) for s, t in zip(seqs, trips)]
        fs_write(self._fh, "".join(lines), self.path)
        self._fh.flush()
        if self.durable:
            fs_fsync(self._fh.fileno(), self.path)
        self._next_seq = seqs[-1] + 1
        return seqs

    def close(self) -> None:
        """Close the underlying file handle (reopened on next append)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    def scan(self) -> List[JournalEntry]:
        """Every intact record in order, dropping only a torn tail.

        Raises:
            JournalCorruptError: if a damaged record is followed by an
                intact one (mid-file corruption — the log cannot be
                trusted) or if sequence numbers are not consecutive.
        """
        if not self.path.exists():
            return []
        entries: List[JournalEntry] = []
        torn_at: Optional[int] = None
        with open(self.path, "r", encoding="utf-8") as f:
            for line_no, line in enumerate(f, start=1):
                if line.strip() == "":
                    continue
                entry = _decode_line(line)
                if entry is None:
                    # Tolerated only as the very last record (torn append).
                    torn_at = line_no
                    continue
                if torn_at is not None:
                    raise JournalCorruptError(
                        f"{self.path}: damaged record at line {torn_at} is "
                        "followed by intact records — journal unusable"
                    )
                if entries and entry.seq != entries[-1].seq + 1:
                    raise JournalCorruptError(
                        f"{self.path}: sequence jump {entries[-1].seq} -> "
                        f"{entry.seq} at line {line_no}"
                    )
                entries.append(entry)
        return entries

    def replay(self, after_seq: int = 0) -> List[JournalEntry]:
        """Records with ``seq > after_seq`` — the tail a recovery applies.

        Raises:
            JournalCorruptError: as for :meth:`scan`.
        """
        return [e for e in self.scan() if e.seq > after_seq]
