"""Fault-injection smoke entry point: ``python -m repro.resilience``.

Runs the self-contained chaos scenario (crash/recover a checkpointed
service bit-for-bit, tear a snapshot and fall back, crash/recover the
simulator mid-period under unreliable trip delivery) and exits non-zero
on any divergence.  CI runs this as its fault-injection smoke job.
"""

from __future__ import annotations

import argparse

from .chaos import _smoke


def main() -> int:
    """Parse flags and run the smoke scenario; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="fault-injection smoke scenario",
    )
    parser.add_argument("--trips", type=int, default=400, help="stream length")
    parser.add_argument(
        "--crash-at", type=int, default=150, help="trips served before the crash"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload/fault seed")
    args = parser.parse_args()
    return _smoke(args.trips, args.crash_at, args.seed)


if __name__ == "__main__":
    raise SystemExit(main())
