"""Background integrity scrubbing of checkpoint storage.

Recovery trusts the disk at the worst possible moment — after a crash.
The scrubber moves that trust check to a quiet moment instead: it walks
a checkpoint directory (or a whole sharded fleet root) verifying every
checksum the formats embed, and repairs what the formats were designed
to survive:

* a **corrupt snapshot** (torn write that raced a crash, or bit-rot at
  rest) is *demoted* — renamed to ``*.corrupt`` so
  :class:`~repro.resilience.SnapshotStore` falls back to the previous
  good generation without having to re-discover the damage at recovery
  time;
* a **torn journal tail** (the expected signature of a crash or injected
  fault mid-append) is *rebuilt* — the file is truncated at the last
  intact record boundary, exactly the prefix replay would use;
* **orphan ``*.tmp-*`` files** (a process killed between the tmp write
  and the rename) are removed;
* **damaged log lines** in the advisory JSONL logs (incidents,
  dead-letters, scrub history) are dropped, keeping every intact row.

What it refuses to touch, it reports loudly: mid-file journal damage or
a sequence jump (the WAL cannot be trusted), a snapshot from an
incompatible format version, a directory with *no* usable snapshot left,
an unreadable shard manifest.  Those need an operator, not a script.

Every run emits its findings into the directory's own log stream
(``logs/scrub.jsonl``, size-capped like the incident log), so scrub
history travels with the data it describes.  ``esharing scrub`` is the
operator entry point; the fleet supervisor also runs a scrub after each
epoch's checkpoints and a journal-tail repair before every shard
restart.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from ..errors import SnapshotCorruptError, SnapshotVersionError
from ..ioutil import atomic_write_bytes, fsync_dir, rotate_file
from .journal import _decode_line
from .snapshot import decode_snapshot

__all__ = [
    "ScrubFinding",
    "ScrubReport",
    "repair_journal_tail",
    "scrub_journal",
    "scrub_snapshots",
    "scrub_checkpoint_dir",
    "scrub_tree",
]

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{10})\.json$")
_SHARD_DIR_RE = re.compile(r"^shard-(\d{3,})$")

#: Root-level files of a sharded fleet (kept as literals: resilience
#: must not import repro.shard, which sits above it).
_PLAN_FILE = "shardplan.json"
_HALO_FILE = "halo.json"

_SCRUB_LOG_MAX_BYTES = 1_000_000


@dataclass(frozen=True)
class ScrubFinding:
    """One damaged (or cleaned-up) artefact the scrubber met.

    Attributes:
        path: the file, relative to the scrub root when possible.
        kind: damage class (``snapshot_corrupt``, ``journal_torn_tail``,
            ``journal_midfile``, ``journal_seq_jump``, ``orphan_tmp``,
            ``log_damaged_lines``, ``no_usable_snapshot``,
            ``snapshot_version``, ``manifest_unreadable``,
            ``halo_unreadable``).
        action: what happened — ``repaired`` / ``demoted`` / ``removed``
            (fixed), ``found`` (check-only run, repairable), or
            ``refused`` (unrepairable without an operator).
        detail: human-readable specifics.
    """

    path: str
    kind: str
    action: str
    detail: str


@dataclass
class ScrubReport:
    """Everything one scrub pass saw, plus exact traffic counts."""

    root: str
    findings: List[ScrubFinding] = field(default_factory=list)
    snapshots_checked: int = 0
    journals_checked: int = 0
    logs_checked: int = 0

    @property
    def repaired(self) -> int:
        return sum(1 for f in self.findings if f.action in ("repaired", "demoted", "removed"))

    @property
    def found(self) -> int:
        return sum(1 for f in self.findings if f.action == "found")

    @property
    def refused(self) -> int:
        return sum(1 for f in self.findings if f.action == "refused")

    @property
    def clean(self) -> bool:
        return not self.findings

    def extend(self, other: "ScrubReport") -> None:
        """Fold another report's findings and counters into this one
        (used when a fleet scrub merges per-shard reports)."""
        self.findings.extend(other.findings)
        self.snapshots_checked += other.snapshots_checked
        self.journals_checked += other.journals_checked
        self.logs_checked += other.logs_checked

    def to_text(self) -> str:
        """Human-readable summary: one header line plus one line per
        finding, the format ``esharing scrub`` prints."""
        head = (
            f"scrub {self.root}: {self.snapshots_checked} snapshot(s), "
            f"{self.journals_checked} journal(s), {self.logs_checked} log(s) "
            f"checked — {self.repaired} repaired, {self.found} found, "
            f"{self.refused} refused"
        )
        lines = [head]
        for f in self.findings:
            lines.append(f"  [{f.action}] {f.kind}: {f.path} — {f.detail}")
        return "\n".join(lines)


def _rel(path: Path, root: Path) -> str:
    try:
        return str(path.relative_to(root))
    except ValueError:
        return str(path)


# ----------------------------------------------------------------------
# journal
def _classify_journal(raw: bytes):
    """Walk a journal's bytes; returns ``(good_end, last_seq, problem)``.

    ``good_end`` is the byte offset just past the last intact record
    reachable from the start; ``problem`` is ``None`` (clean),
    ``"torn_tail"`` (trailing damage only), ``"midfile"`` (damage
    followed by an intact record) or ``"seq_jump"``.
    """
    good_end = 0
    last_seq: Optional[int] = None
    damaged = False
    offset = 0
    for lb in raw.splitlines(keepends=True):
        line_len = len(lb)
        try:
            line = lb.decode("utf-8")
        except UnicodeDecodeError:
            line = None
        if line is not None and line.strip() == "":
            if not damaged:
                good_end = offset + line_len
            offset += line_len
            continue
        entry = _decode_line(line) if line is not None else None
        complete = lb.endswith(b"\n")
        if entry is None or not complete:
            damaged = True
        else:
            if damaged:
                return good_end, last_seq, "midfile"
            if last_seq is not None and entry.seq != last_seq + 1:
                return good_end, last_seq, "seq_jump"
            last_seq = entry.seq
            good_end = offset + line_len
        offset += line_len
    return good_end, last_seq, ("torn_tail" if damaged else None)


def scrub_journal(
    path: Union[str, Path],
    repair: bool = True,
    durable: bool = True,
    root: Optional[Path] = None,
) -> List[ScrubFinding]:
    """Verify one write-ahead journal; truncate a torn tail when asked.

    A torn tail — one or more damaged lines with nothing intact after
    them — is the normal crash signature and is repairable: the file is
    truncated at the last intact record boundary, the exact prefix
    :meth:`~repro.resilience.TripJournal.scan` would replay anyway.
    Damage *followed by* intact records, or a sequence jump between
    intact records, means the log cannot be trusted and is refused.
    """
    path = Path(path)
    rel = _rel(path, root or path.parent)
    if not path.exists():
        return []
    raw = path.read_bytes()
    good_end, _last_seq, problem = _classify_journal(raw)
    if problem is None:
        return []
    if problem == "midfile":
        return [ScrubFinding(
            rel, "journal_midfile", "refused",
            f"damaged record before byte {good_end} is followed by intact "
            "records — the WAL cannot be trusted; restore from a replica",
        )]
    if problem == "seq_jump":
        return [ScrubFinding(
            rel, "journal_seq_jump", "refused",
            f"sequence jump after byte {good_end} — records are missing "
            "mid-file; restore from a replica",
        )]
    torn = len(raw) - good_end
    if not repair:
        return [ScrubFinding(
            rel, "journal_torn_tail", "found",
            f"{torn} damaged trailing byte(s) after the last intact record",
        )]
    with open(path, "r+b") as f:
        f.truncate(good_end)
        f.flush()
        if durable:
            os.fsync(f.fileno())
    return [ScrubFinding(
        rel, "journal_torn_tail", "repaired",
        f"truncated {torn} damaged trailing byte(s) at offset {good_end}",
    )]


def repair_journal_tail(
    path: Union[str, Path], durable: bool = True
) -> List[ScrubFinding]:
    """Convenience used before every supervised shard restart: rebuild a
    torn journal tail in place (mid-file damage still refuses)."""
    return scrub_journal(path, repair=True, durable=durable)


# ----------------------------------------------------------------------
# snapshots
def scrub_snapshots(
    directory: Union[str, Path],
    repair: bool = True,
    durable: bool = True,
    root: Optional[Path] = None,
) -> List[ScrubFinding]:
    """Verify every ``snapshot-*.json``; demote the corrupt ones.

    Demotion renames a corrupt file to ``<name>.corrupt`` so it drops
    out of the store's listing and recovery falls straight back to the
    previous good generation.  A version-mismatched snapshot is intact —
    just not ours to read — and is refused, as is a directory whose
    every snapshot is gone: nothing good to fall back to.
    """
    directory = Path(directory)
    rroot = root or directory
    findings: List[ScrubFinding] = []
    entries = sorted(
        (int(m.group(1)), p)
        for p in directory.iterdir()
        if (m := _SNAPSHOT_RE.match(p.name))
    )
    good = 0
    for _seq, path in entries:
        try:
            decode_snapshot(path.read_bytes())
        except SnapshotCorruptError as exc:
            if repair:
                demoted = path.with_name(path.name + ".corrupt")
                os.replace(path, demoted)
                if durable:
                    fsync_dir(directory)
                findings.append(ScrubFinding(
                    _rel(path, rroot), "snapshot_corrupt", "demoted",
                    f"{exc}; demoted to {demoted.name}",
                ))
            else:
                findings.append(ScrubFinding(
                    _rel(path, rroot), "snapshot_corrupt", "found", str(exc)
                ))
        except SnapshotVersionError as exc:
            findings.append(ScrubFinding(
                _rel(path, rroot), "snapshot_version", "refused", str(exc)
            ))
        else:
            good += 1
    if entries and good == 0:
        findings.append(ScrubFinding(
            _rel(directory, rroot) or ".", "no_usable_snapshot", "refused",
            f"all {len(entries)} snapshot(s) are corrupt or unreadable — "
            "recovery has nothing to restore; restore from a replica",
        ))
    return findings


# ----------------------------------------------------------------------
# orphan tmp files and advisory logs
def _scrub_orphans(
    directory: Path, repair: bool, durable: bool, root: Path
) -> List[ScrubFinding]:
    findings: List[ScrubFinding] = []
    for path in sorted(directory.glob("*.tmp-*")):
        if repair:
            try:
                path.unlink()
            except OSError as exc:
                findings.append(ScrubFinding(
                    _rel(path, root), "orphan_tmp", "refused", f"unlink failed: {exc}"
                ))
                continue
            if durable:
                fsync_dir(directory)
            findings.append(ScrubFinding(
                _rel(path, root), "orphan_tmp", "removed",
                "leftover temporary from an interrupted atomic write",
            ))
        else:
            findings.append(ScrubFinding(
                _rel(path, root), "orphan_tmp", "found",
                "leftover temporary from an interrupted atomic write",
            ))
    return findings


def _scrub_log(
    path: Path, repair: bool, durable: bool, root: Path
) -> List[ScrubFinding]:
    """Advisory JSONL logs: keep every intact line, drop the damaged.

    Logs are diagnostics, not recovery inputs, so mid-file damage is
    repairable here — the rewrite preserves every line that still
    parses.
    """
    raw = path.read_bytes()
    kept: List[bytes] = []
    dropped = 0
    for lb in raw.splitlines(keepends=True):
        body = lb.rstrip(b"\r\n")
        if not body.strip():
            continue
        try:
            json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            dropped += 1
            continue
        if not lb.endswith(b"\n"):
            lb = body + b"\n"
        kept.append(lb)
    if dropped == 0:
        return []
    if not repair:
        return [ScrubFinding(
            _rel(path, root), "log_damaged_lines", "found",
            f"{dropped} damaged line(s) among {dropped + len(kept)}",
        )]
    atomic_write_bytes(path, b"".join(kept), durable=durable)
    return [ScrubFinding(
        _rel(path, root), "log_damaged_lines", "repaired",
        f"dropped {dropped} damaged line(s), kept {len(kept)}",
    )]


# ----------------------------------------------------------------------
def scrub_checkpoint_dir(
    directory: Union[str, Path],
    repair: bool = True,
    durable: bool = True,
    record: bool = True,
    root: Optional[Path] = None,
) -> ScrubReport:
    """Scrub one checkpoint directory (snapshots + WAL + logs + tmps).

    Args:
        directory: a :class:`~repro.resilience.CheckpointingService`
            directory — ``snapshot-*.json`` plus ``journal.jsonl`` plus
            an optional ``logs/`` subdirectory.
        repair: fix what is fixable; ``False`` only reports (actions
            come back as ``found``) and writes nothing at all.
        durable: fsync repairs.
        record: append the findings to ``logs/scrub.jsonl`` (forced off
            when ``repair`` is off — a check must not write).
        root: base for relative paths in findings (fleet scrubs pass the
            fleet root).
    """
    directory = Path(directory)
    rroot = root or directory
    report = ScrubReport(root=str(directory))
    report.findings.extend(_scrub_orphans(directory, repair, durable, rroot))
    report.snapshots_checked += sum(
        1 for p in directory.iterdir() if _SNAPSHOT_RE.match(p.name)
    )
    report.findings.extend(scrub_snapshots(directory, repair, durable, rroot))
    journal = directory / "journal.jsonl"
    if journal.exists():
        report.journals_checked += 1
        report.findings.extend(scrub_journal(journal, repair, durable, rroot))
    logs = directory / "logs"
    if logs.is_dir():
        report.findings.extend(_scrub_orphans(logs, repair, durable, rroot))
        for path in sorted(logs.glob("*.jsonl")):
            report.logs_checked += 1
            report.findings.extend(_scrub_log(path, repair, durable, rroot))
    if record and repair:
        _record_report(logs, directory, report, durable)
    return report


def _record_report(
    logs: Path, directory: Path, report: ScrubReport, durable: bool
) -> None:
    """Append one summary line + one line per finding to scrub.jsonl."""
    logs.mkdir(parents=True, exist_ok=True)
    path = logs / "scrub.jsonl"
    rows = [json.dumps({
        "scrub": str(directory),
        "snapshots": report.snapshots_checked,
        "journals": report.journals_checked,
        "logs": report.logs_checked,
        "repaired": report.repaired,
        "refused": report.refused,
    })]
    rows.extend(
        json.dumps({
            "path": f.path, "kind": f.kind, "action": f.action, "detail": f.detail
        })
        for f in report.findings
    )
    payload = "\n".join(rows) + "\n"
    rotate_file(path, _SCRUB_LOG_MAX_BYTES, len(payload), durable=durable)
    with open(path, "a", encoding="utf-8") as f:
        f.write(payload)
        f.flush()
        if durable:
            os.fsync(f.fileno())


def scrub_tree(
    root: Union[str, Path],
    repair: bool = True,
    durable: bool = True,
    record: bool = True,
) -> ScrubReport:
    """Scrub a checkpoint directory *or* a whole sharded fleet root.

    A fleet root (it holds ``shardplan.json``) gets: manifest and halo
    sanity checks, every ``shard-NNN/`` directory scrubbed
    independently, and the root-level advisory logs cleaned.  An
    unreadable manifest is refused (the fleet cannot be rebuilt without
    it); an unreadable halo cache is merely removed — shards fall back
    to the genesis halo and repopulate it next epoch.
    """
    root = Path(root)
    plan = root / _PLAN_FILE
    if not plan.exists():
        return scrub_checkpoint_dir(
            root, repair=repair, durable=durable, record=record
        )
    report = ScrubReport(root=str(root))
    try:
        json.loads(plan.read_text())
    except (ValueError, UnicodeDecodeError) as exc:
        report.findings.append(ScrubFinding(
            _PLAN_FILE, "manifest_unreadable", "refused",
            f"{exc}; the fleet cannot recover without its plan",
        ))
    halo = root / _HALO_FILE
    if halo.exists():
        try:
            json.loads(halo.read_text())
        except (ValueError, UnicodeDecodeError) as exc:
            if repair:
                halo.unlink()
                if durable:
                    fsync_dir(root)
                report.findings.append(ScrubFinding(
                    _HALO_FILE, "halo_unreadable", "removed",
                    f"{exc}; shards fall back to the genesis halo",
                ))
            else:
                report.findings.append(ScrubFinding(
                    _HALO_FILE, "halo_unreadable", "found", str(exc)
                ))
    report.findings.extend(_scrub_orphans(root, repair, durable, root))
    for path in sorted(root.glob("*.jsonl")):
        report.logs_checked += 1
        report.findings.extend(_scrub_log(path, repair, durable, root))
    logs = root / "logs"
    if logs.is_dir():
        report.findings.extend(_scrub_orphans(logs, repair, durable, root))
        for path in sorted(logs.glob("*.jsonl")):
            report.logs_checked += 1
            report.findings.extend(_scrub_log(path, repair, durable, root))
    for shard_dir in sorted(root.iterdir()):
        if shard_dir.is_dir() and _SHARD_DIR_RE.match(shard_dir.name):
            report.extend(scrub_checkpoint_dir(
                shard_dir, repair=repair, durable=durable,
                record=record, root=root,
            ))
    return report
