"""Fault injection: crashes, torn writes, and unreliable trip delivery.

A long-running deployment will eventually see every failure this module
can manufacture: the process dies mid-trip, the checkpoint file is torn
by power loss, the upstream queue redelivers, drops or reorders trips.
:class:`FaultInjector` produces those faults deterministically (seeded)
so the recovery tests and the CI smoke job can assert that

* recovery from the latest *good* snapshot + journal tail is
  bit-identical to an uninterrupted run;
* torn snapshot writes are detected by checksum and recovery falls back
  to the previous good generation;
* duplicated trips are screened, dropped/reordered trips leave the
  accounting invariants intact.

Run ``python -m repro.resilience.chaos`` for the self-contained smoke
scenario (used by CI).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from datetime import timedelta
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.esharing import EsharingPlanner
from ..core.costs import FacilityCostFn
from ..datasets.trips import TripRecord
from ..energy.fleet import Fleet
from ..errors import InjectedCrash, InjectedSubsystemError
from ..geo.points import Point
from ..ioutil import atomic_write_bytes

__all__ = [
    "ChaosConfig",
    "FaultInjector",
    "FaultSummary",
    "crashing_stream",
    "simulate_period_crash",
]


@dataclass(frozen=True)
class ChaosConfig:
    """Fault rates for a :class:`FaultInjector`.

    New fault categories draw from the RNG *only when their rate is
    non-zero*, so configs that leave them at the default keep the exact
    fault sequence older seeds produced.

    Attributes:
        seed: RNG seed — identical configs inject identical faults.
        p_duplicate: per-trip probability of an immediate redelivery.
        p_drop: per-trip probability the trip is lost upstream.
        p_swap: per-position probability two adjacent trips arrive
            reordered.
        torn_write_rate: per-snapshot probability the write is torn
            (a truncated file appears under the final name, as if power
            failed mid-write on a non-atomic writer).
        p_clock_skew: per-trip probability the device clock skews the
            ``start_time`` by up to ``skew_max_s`` seconds either way.
        skew_max_s: bound of the injected clock skew.
        p_garbage: per-trip probability one field is garbage — a NaN
            coordinate, a far-out-of-plane endpoint, or a 470% battery
            reading (rotating deterministically).
        p_late: per-trip probability the trip is delivered *late*:
            displaced up to ``late_max_positions`` positions toward the
            end of the stream (bounded disorder beyond adjacent swaps).
        late_max_positions: bound of the late displacement.
        p_subsystem_error: per-call probability a wrapped subsystem call
            (see :meth:`FaultInjector.failing`) raises
            :class:`~repro.errors.InjectedSubsystemError`.

    Raises:
        ValueError: if any probability is outside [0, 1], the skew bound
            is negative, or the displacement bound is non-positive.
    """

    seed: int = 0
    p_duplicate: float = 0.0
    p_drop: float = 0.0
    p_swap: float = 0.0
    torn_write_rate: float = 0.0
    p_clock_skew: float = 0.0
    skew_max_s: float = 600.0
    p_garbage: float = 0.0
    p_late: float = 0.0
    late_max_positions: int = 5
    p_subsystem_error: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "p_duplicate", "p_drop", "p_swap", "torn_write_rate",
            "p_clock_skew", "p_garbage", "p_late", "p_subsystem_error",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.skew_max_s < 0:
            raise ValueError(f"skew_max_s must be >= 0, got {self.skew_max_s}")
        if self.late_max_positions <= 0:
            raise ValueError(
                f"late_max_positions must be positive, got {self.late_max_positions}"
            )


@dataclass(frozen=True)
class FaultSummary:
    """Exact per-category counts of the faults an injector produced.

    The chaos smoke and the guard gauntlet assert against these, so an
    injected fault that silently stops firing (or fires twice) fails CI
    instead of quietly weakening the test.
    """

    duplicates: int = 0
    drops: int = 0
    swaps: int = 0
    clock_skews: int = 0
    garbage_fields: int = 0
    late_deliveries: int = 0
    torn_writes: int = 0
    subsystem_errors: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """All injected faults, across every category."""
        return (
            self.duplicates + self.drops + self.swaps + self.clock_skews
            + self.garbage_fields + self.late_deliveries + self.torn_writes
            + sum(self.subsystem_errors.values())
        )

    def to_text(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"dup={self.duplicates}", f"drop={self.drops}", f"swap={self.swaps}",
            f"skew={self.clock_skews}", f"garbage={self.garbage_fields}",
            f"late={self.late_deliveries}", f"torn={self.torn_writes}",
        ]
        for label, count in sorted(self.subsystem_errors.items()):
            parts.append(f"{label}!={count}")
        return f"{self.total} fault(s): " + " ".join(parts)


def crashing_stream(
    trips: Iterable[TripRecord], crash_after: int
) -> Iterator[TripRecord]:
    """Yield ``trips``, then die: raises after ``crash_after`` yields.

    Raises:
        InjectedCrash: once ``crash_after`` trips have been yielded.
        ValueError: if ``crash_after`` is negative.
    """
    if crash_after < 0:
        raise ValueError(f"crash_after must be non-negative, got {crash_after}")
    for i, trip in enumerate(trips):
        if i >= crash_after:
            raise InjectedCrash(f"injected crash after {crash_after} trips")
        yield trip
    raise InjectedCrash(
        f"injected crash at end of stream ({crash_after} requested)"
    )


class FaultInjector:
    """Deterministic fault source for streams and snapshot writes.

    Args:
        config: fault rates and seed.

    Attributes:
        torn_writes: how many snapshot writes have been torn so far.
    """

    def __init__(self, config: Optional[ChaosConfig] = None) -> None:
        self.config = config or ChaosConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.torn_writes = 0
        self.counts: Dict[str, int] = {
            "duplicates": 0, "drops": 0, "swaps": 0, "clock_skews": 0,
            "garbage_fields": 0, "late_deliveries": 0,
        }
        self._subsystem_errors: Dict[str, int] = {}
        self._garbage_kind = 0  # rotates through the garbage variants

    def summary(self) -> FaultSummary:
        """Exact counts of every fault injected so far."""
        return FaultSummary(
            duplicates=self.counts["duplicates"],
            drops=self.counts["drops"],
            swaps=self.counts["swaps"],
            clock_skews=self.counts["clock_skews"],
            garbage_fields=self.counts["garbage_fields"],
            late_deliveries=self.counts["late_deliveries"],
            torn_writes=self.torn_writes,
            subsystem_errors=dict(self._subsystem_errors),
        )

    # ------------------------------------------------------------------
    def _garbage(self, trip: TripRecord) -> TripRecord:
        """Corrupt exactly one field, rotating through the variants."""
        kind = self._garbage_kind % 3
        self._garbage_kind += 1
        if kind == 0:
            return trip.with_end(Point(float("nan"), trip.end.y))
        if kind == 1:
            return replace(trip, start=Point(trip.start.x + 1e9, trip.start.y))
        return replace(trip, battery=4.7)

    def mutate_trips(self, trips: Sequence[TripRecord]) -> List[TripRecord]:
        """An unreliable upstream's view of ``trips``.

        Applies drops, garbage fields, clock skew, immediate
        redeliveries (exact duplicates), bounded late deliveries and
        adjacent reorderings at the configured rates, deterministically
        for a given seed.  Every fault increments :attr:`counts`;
        categories with a zero rate consume no RNG draws, so legacy
        configs reproduce their historical fault sequences exactly.
        """
        cfg = self.config
        out: List[TripRecord] = []
        for trip in trips:
            if self._rng.uniform() < cfg.p_drop:
                self.counts["drops"] += 1
                continue
            if cfg.p_garbage > 0 and self._rng.uniform() < cfg.p_garbage:
                self.counts["garbage_fields"] += 1
                trip = self._garbage(trip)
            if cfg.p_clock_skew > 0 and self._rng.uniform() < cfg.p_clock_skew:
                self.counts["clock_skews"] += 1
                skew = float(self._rng.uniform(-cfg.skew_max_s, cfg.skew_max_s))
                trip = replace(
                    trip, start_time=trip.start_time + timedelta(seconds=skew)
                )
            out.append(trip)
            if self._rng.uniform() < cfg.p_duplicate:
                self.counts["duplicates"] += 1
                out.append(trip)
        if cfg.p_late > 0:
            i = 0
            while i < len(out):
                if self._rng.uniform() < cfg.p_late:
                    self.counts["late_deliveries"] += 1
                    hop = int(self._rng.integers(1, cfg.late_max_positions + 1))
                    target = min(i + hop, len(out) - 1)
                    out.insert(target, out.pop(i))
                i += 1
        i = 0
        while i + 1 < len(out):
            if self._rng.uniform() < cfg.p_swap:
                self.counts["swaps"] += 1
                out[i], out[i + 1] = out[i + 1], out[i]
                i += 2
            else:
                i += 1
        return out

    # ------------------------------------------------------------------
    def failing(
        self,
        fn: Callable,
        label: str,
        rate: Optional[float] = None,
    ) -> Callable:
        """Wrap a subsystem call so it sometimes raises (deterministic).

        Each label gets its own RNG substream (seeded from the injector
        seed plus a stable hash of the label), so wrapping one more
        subsystem never shifts another's fault positions, and the stream
        RNG stays untouched.

        Args:
            fn: the callable to sabotage.
            label: subsystem name for the error counter and message.
            rate: per-call failure probability; defaults to the config's
                ``p_subsystem_error``.

        Raises:
            ValueError: on a rate outside [0, 1].
        """
        p = self.config.p_subsystem_error if rate is None else rate
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {p}")
        rng = np.random.default_rng(
            [self.config.seed, zlib.crc32(label.encode("utf-8"))]
        )

        def sabotaged(*args, **kwargs):
            if p > 0 and rng.uniform() < p:
                self._subsystem_errors[label] = (
                    self._subsystem_errors.get(label, 0) + 1
                )
                raise InjectedSubsystemError(f"injected {label} failure")
            return fn(*args, **kwargs)

        return sabotaged

    # ------------------------------------------------------------------
    def write_bytes(self, path: Union[str, Path], data: bytes) -> Path:
        """Snapshot writer that sometimes tears the file.

        Drop-in for :class:`~repro.resilience.snapshot.SnapshotStore`'s
        ``write_bytes`` hook.  At ``torn_write_rate`` the file appears
        *under its final name* holding only a truncated prefix — the
        failure atomic renames prevent, simulated here to prove the
        checksum catches it; otherwise the write is delegated to the
        real atomic writer.
        """
        path = Path(path)
        if self._rng.uniform() < self.config.torn_write_rate and len(data) > 1:
            cut = int(self._rng.integers(1, len(data)))
            path.write_bytes(data[:cut])
            self.torn_writes += 1
            return path
        return atomic_write_bytes(path, data, durable=False)

    @staticmethod
    def corrupt_file(path: Union[str, Path], mode: str = "truncate") -> None:
        """Damage an existing file in place (test utility).

        Args:
            path: the victim file.
            mode: ``"truncate"`` keeps only the first half;
                ``"flip"`` XOR-flips one byte in the middle.

        Raises:
            ValueError: on an unknown mode or an empty file.
        """
        path = Path(path)
        data = path.read_bytes()
        if not data:
            raise ValueError(f"cannot corrupt empty file {path}")
        if mode == "truncate":
            path.write_bytes(data[: max(1, len(data) // 2)])
        elif mode == "flip":
            mid = len(data) // 2
            path.write_bytes(data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1 :])
        else:
            raise ValueError(f"unknown corruption mode {mode!r}")


def simulate_period_crash(
    make_simulator: Callable[[EsharingPlanner, Fleet], "object"],
    planner: EsharingPlanner,
    fleet: Fleet,
    facility_cost: FacilityCostFn,
    trips: Sequence[TripRecord],
    crash_after: int,
):
    """Crash a :class:`~repro.sim.simulator.SystemSimulator` mid-period
    and recover it from the pre-period planner/fleet checkpoint.

    The planner and fleet state are snapshotted in memory, the period is
    run against a stream that dies after ``crash_after`` trips, the
    half-mutated simulator is discarded (that is what a crash does), and
    a fresh simulator is rebuilt around the restored state to re-run the
    whole period — at-least-once semantics, validated by the simulator's
    own :meth:`~repro.sim.simulator.SystemSimulator.consistency_check`.

    Args:
        make_simulator: factory wiring a simulator around a planner and
            fleet (incentive/operator/rng configuration lives here).
        planner: the live planner (left half-mutated, like a real crash).
        fleet: the live fleet (ditto).
        facility_cost: opening-cost function for the restored planner.
        trips: the period's trip stream.
        crash_after: how many trips are served before the injected crash.

    Returns:
        ``(simulator, report)`` — the recovered simulator and the report
        of the re-run period.
    """
    pre_planner = planner.state_dict()
    pre_fleet = fleet.state_dict()
    crashed_sim = make_simulator(planner, fleet)
    try:
        crashed_sim.run_period(crashing_stream(trips, crash_after))
    except InjectedCrash:
        pass
    restored_planner = EsharingPlanner.from_state(pre_planner, facility_cost)
    restored_fleet = Fleet.from_state(pre_fleet)
    simulator = make_simulator(restored_planner, restored_fleet)
    report = simulator.run_period(list(trips))
    simulator.consistency_check()
    return simulator, report


# ----------------------------------------------------------------------
# CI smoke scenario: crash/recover the full stack, tear a snapshot.
def _smoke(trips: int, crash_at: int, seed: int) -> int:
    import shutil
    import tempfile
    from datetime import datetime, timedelta

    from ..core.esharing import EsharingConfig
    from ..core.costs import constant_facility_cost
    from ..core.streaming import PlacementService
    from ..geo.points import Point
    from ..sim.simulator import SystemSimulator
    from .service import CheckpointingService, constant_cost_spec

    rng = np.random.default_rng(seed)
    t0 = datetime(2017, 5, 10)
    records = [
        TripRecord(
            order_id=i, user_id=i % 40, bike_id=i % 60, bike_type=1,
            start_time=t0 + timedelta(seconds=30 * i),
            start=Point(*rng.uniform(0.0, 2000.0, 2)),
            end=Point(*rng.uniform(0.0, 2000.0, 2)),
        )
        for i in range(trips)
    ]
    anchors = [Point(float(x), float(y)) for x in (0, 1000, 2000) for y in (0, 1000, 2000)]
    historical = rng.uniform(0.0, 2000.0, size=(400, 2))
    cost_value = 8000.0
    cost = constant_facility_cost(cost_value)

    def build_service() -> PlacementService:
        planner = EsharingPlanner(
            anchors, cost, historical, np.random.default_rng(seed + 1),
            EsharingConfig(beta=1.0),
        )
        fleet = Fleet(planner.stations, n_bikes=80, rng=np.random.default_rng(seed + 2))
        return PlacementService(planner, fleet)

    failures = 0
    workdir = Path(tempfile.mkdtemp(prefix="esharing-chaos-"))
    try:
        # Reference: uninterrupted run.
        reference = build_service()
        for r in records:
            reference.handle_trip(r)

        # Crash after crash_at trips, recover, finish, compare bit-for-bit.
        wrapped = CheckpointingService(
            build_service(), workdir / "run", checkpoint_every=50,
            durable=False, facility_cost_spec=constant_cost_spec(cost_value),
        )
        for r in records[:crash_at]:
            wrapped.handle_trip(r)
        wrapped.close()  # the "crash": the in-memory object is abandoned
        recovered = CheckpointingService.recover(workdir / "run", durable=False)
        for r in records[crash_at:]:
            recovered.handle_trip(r)
        recovered.consistency_check()
        if recovered.service.responses != reference.responses:
            print("FAIL: recovered response stream diverged from reference")
            failures += 1
        ref_state = reference.state_dict()
        rec_state = recovered.service.state_dict()
        ref_state["planner"]["ks_seconds"] = rec_state["planner"]["ks_seconds"] = 0.0
        if ref_state != rec_state:
            print("FAIL: recovered state diverged from reference")
            failures += 1

        # Tear the newest snapshot: recovery must fall back and replay more.
        recovered.checkpoint()
        newest = recovered.store.list()[-1][1]
        recovered.close()
        FaultInjector.corrupt_file(newest, mode="truncate")
        fallback = CheckpointingService.recover(workdir / "run", durable=False)
        fallback.consistency_check()
        if fallback.service.responses != reference.responses:
            print("FAIL: fallback recovery diverged from reference")
            failures += 1
        fallback.close()

        # Simulator mid-period crash with unreliable delivery.
        injector = FaultInjector(ChaosConfig(
            seed=seed, p_duplicate=0.05, p_drop=0.05, p_swap=0.05,
        ))
        unreliable = injector.mutate_trips(records)
        summary = injector.summary()
        if len(unreliable) != len(records) - summary.drops + summary.duplicates:
            print(
                "FAIL: fault accounting drift: "
                f"{len(records)} in, {len(unreliable)} out, {summary.to_text()}"
            )
            failures += 1
        if summary.total == 0:
            print("FAIL: injector reported zero faults at non-zero rates")
            failures += 1
        planner = EsharingPlanner(
            anchors, cost, historical, np.random.default_rng(seed + 3),
            EsharingConfig(beta=1.0),
        )
        fleet = Fleet(planner.stations, n_bikes=80, rng=np.random.default_rng(seed + 4))
        _, report = simulate_period_crash(
            lambda p, f: SystemSimulator(p, f, rng=np.random.default_rng(seed + 5)),
            planner, fleet, cost, unreliable, crash_after=len(unreliable) // 2,
        )
        if report.trips_requested != len(unreliable):
            print("FAIL: recovered simulator lost trips")
            failures += 1
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        print(f"chaos smoke: {failures} failure(s)")
        return 1
    print(
        f"chaos smoke OK: {trips} trips, crash at {crash_at}, "
        "torn-snapshot fallback and simulator mid-period recovery verified"
    )
    return 0


