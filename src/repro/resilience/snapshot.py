"""Versioned, checksummed, atomically-written state snapshots.

File format (two lines of JSON):

.. code-block:: text

    {"format": "esharing-snapshot", "version": 1, "checksum": "<sha256>"}
    {... payload ...}

The payload line is canonical JSON (sorted keys, no whitespace) and the
header's checksum is the SHA-256 of exactly those bytes, so

* a **torn or bit-flipped file** fails the checksum (or fails to parse at
  all) and is classified :class:`~repro.errors.SnapshotCorruptError` —
  recovery skips it and falls back to the previous good snapshot;
* an **incompatible format version** is detected from the intact header
  and refused with :class:`~repro.errors.SnapshotVersionError` — never
  silently skipped, because the file is *valid*, just not ours to read.

Writes go through :func:`repro.ioutil.atomic_write_bytes` (tmp + fsync +
rename), so a crash mid-write can never leave a partial file under a
snapshot name; corruption only enters through outside forces (disk
errors, the chaos harness's torn-write injector).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, List, Optional, Tuple, Union

from ..errors import SnapshotCorruptError, SnapshotError, SnapshotVersionError
from ..ioutil import atomic_write_bytes, checksum_hex

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotStore",
    "encode_snapshot",
    "decode_snapshot",
]

SNAPSHOT_FORMAT = "esharing-snapshot"
"""Magic format name embedded in every snapshot header."""

SNAPSHOT_VERSION = 1
"""Current snapshot format version; bumped on incompatible changes."""

_NAME_RE = re.compile(r"^snapshot-(\d{10})\.json$")


@dataclass(frozen=True)
class Snapshot:
    """A decoded snapshot: its sequence number, payload and origin path.

    Attributes:
        seq: journal sequence number the payload is current through.
        payload: the decoded state payload.
        path: file the snapshot was loaded from (None for in-memory).
    """

    seq: int
    payload: Any
    path: Optional[Path] = None


def encode_snapshot(payload: Any, version: int = SNAPSHOT_VERSION) -> bytes:
    """Serialise ``payload`` into the two-line snapshot file format.

    Raises:
        ValueError: if the payload is not strict-JSON-serialisable
            (``NaN``/``Infinity`` are rejected so every written file is
            readable by any JSON parser).
    """
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    header = json.dumps(
        {
            "format": SNAPSHOT_FORMAT,
            "version": version,
            "checksum": checksum_hex(body),
        },
        sort_keys=True,
    ).encode("utf-8")
    return header + b"\n" + body + b"\n"


def decode_snapshot(data: bytes) -> Any:
    """Parse and verify a snapshot file's bytes; returns the payload.

    Raises:
        SnapshotCorruptError: on any parse or checksum failure — the
            signature of a torn or bit-rotted file.
        SnapshotVersionError: when the header is intact but written by an
            incompatible format version; loading must be refused, not
            skipped.
    """
    head, sep, rest = data.partition(b"\n")
    if not sep:
        raise SnapshotCorruptError("snapshot truncated: no header line")
    try:
        header = json.loads(head)
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotCorruptError(f"unreadable snapshot header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotCorruptError(
            f"not an {SNAPSHOT_FORMAT} file (format={header.get('format') if isinstance(header, dict) else None!r})"
        )
    version = header.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"snapshot format version {version!r} is not supported by this "
            f"build (expected {SNAPSHOT_VERSION}); refusing to load — "
            "migrate the checkpoint directory or match the software version"
        )
    body = rest.rstrip(b"\n")
    if checksum_hex(body) != header.get("checksum"):
        raise SnapshotCorruptError(
            "snapshot payload failed its checksum (torn or corrupted write)"
        )
    try:
        return json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:  # pragma: no cover - checksum catches first
        raise SnapshotCorruptError(f"unreadable snapshot payload: {exc}") from exc


WriteBytes = Callable[[Union[str, Path], bytes], Any]


class SnapshotStore:
    """A directory of rotated snapshots with corrupt-tolerant loading.

    Files are named ``snapshot-<seq>.json`` where ``seq`` is the journal
    sequence number the state is current through; :meth:`save` prunes the
    oldest files beyond ``keep`` *good* generations so a torn newest file
    never leaves the store empty.

    Args:
        directory: where snapshots live; created if missing.
        keep: how many snapshot generations to retain (>= 1).
        durable: fsync file and directory on every save (tests disable
            for speed; atomicity is kept either way).
        write_bytes: override for the file writer — the chaos harness
            swaps in a torn-write injector here.  Production code always
            leaves the default atomic writer in place.

    Raises:
        ValueError: if ``keep`` is not positive.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        keep: int = 3,
        durable: bool = True,
        write_bytes: Optional[WriteBytes] = None,
    ) -> None:
        if keep <= 0:
            raise ValueError(f"keep must be positive, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.durable = durable
        self._write_bytes: WriteBytes = write_bytes or (
            lambda path, data: atomic_write_bytes(path, data, durable=self.durable)
        )

    # ------------------------------------------------------------------
    def path_for(self, seq: int) -> Path:
        """Filename a snapshot at journal sequence ``seq`` is stored under."""
        return self.directory / f"snapshot-{seq:010d}.json"

    def list(self) -> List[Tuple[int, Path]]:
        """``(seq, path)`` of every snapshot file, ascending by seq."""
        out = []
        for path in self.directory.iterdir():
            match = _NAME_RE.match(path.name)
            if match:
                out.append((int(match.group(1)), path))
        return sorted(out)

    def save(self, payload: Any, seq: int) -> Path:
        """Write a snapshot current through journal sequence ``seq``.

        The write is atomic; afterwards the oldest generations beyond
        ``keep`` are pruned.

        Raises:
            ValueError: on a negative sequence number.
            OSError: on filesystem failure (the previous snapshots are
                untouched).
        """
        if seq < 0:
            raise ValueError(f"seq must be non-negative, got {seq}")
        path = self.path_for(seq)
        self._write_bytes(path, encode_snapshot(payload))
        self._prune()
        return path

    def _prune(self) -> None:
        entries = self.list()
        for _seq, path in entries[: -self.keep]:
            try:
                path.unlink()
            except OSError:
                pass

    def load_latest(self) -> Snapshot:
        """The newest snapshot that passes verification.

        Corrupt (torn) files are skipped, newest first, falling back to
        the previous good generation; a version mismatch is refused.

        Raises:
            SnapshotError: when no usable snapshot exists at all.
            SnapshotVersionError: when a snapshot is intact but written
                by an incompatible format version.
        """
        corrupt: List[str] = []
        for seq, path in reversed(self.list()):
            try:
                payload = decode_snapshot(path.read_bytes())
            except SnapshotCorruptError as exc:
                corrupt.append(f"{path.name}: {exc}")
                continue
            return Snapshot(seq=seq, payload=payload, path=path)
        detail = f" (skipped corrupt: {'; '.join(corrupt)})" if corrupt else ""
        raise SnapshotError(
            f"no usable snapshot in {self.directory}{detail}"
        )
