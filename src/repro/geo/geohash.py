"""Geohash encoding and decoding.

The Mobike dataset stores start/end locations as geohashes ("The locations
are geohashed. We re-interpret them into the corresponding latitudes and
longitudes", Section V).  This module implements the standard base-32
geohash so the dataset layer can round-trip records exactly as the paper's
pipeline does.  Precision 7 (~76 m cells) roughly matches the paper's
100x100 m^2 bins.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["encode", "decode", "decode_bbox", "neighbors", "GEOHASH_ALPHABET"]

GEOHASH_ALPHABET = "0123456789bcdefghjkmnpqrstuvwxyz"
_DECODE = {ch: i for i, ch in enumerate(GEOHASH_ALPHABET)}


def encode(lat: float, lon: float, precision: int = 7) -> str:
    """Encode a WGS-84 coordinate as a geohash string.

    Args:
        lat: latitude in degrees, [-90, 90].
        lon: longitude in degrees, [-180, 180].
        precision: number of base-32 characters (1..12).

    Raises:
        ValueError: on out-of-range inputs.
    """
    if not -90.0 <= lat <= 90.0:
        raise ValueError(f"latitude out of range: {lat}")
    if not -180.0 <= lon <= 180.0:
        raise ValueError(f"longitude out of range: {lon}")
    if not 1 <= precision <= 12:
        raise ValueError(f"precision out of range: {precision}")

    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    chars = []
    bits = 0
    bit_count = 0
    even = True  # even bits refine longitude
    while len(chars) < precision:
        if even:
            mid = (lon_lo + lon_hi) / 2
            if lon >= mid:
                bits = (bits << 1) | 1
                lon_lo = mid
            else:
                bits <<= 1
                lon_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2
            if lat >= mid:
                bits = (bits << 1) | 1
                lat_lo = mid
            else:
                bits <<= 1
                lat_hi = mid
        even = not even
        bit_count += 1
        if bit_count == 5:
            chars.append(GEOHASH_ALPHABET[bits])
            bits = 0
            bit_count = 0
    return "".join(chars)


def decode_bbox(geohash: str) -> Tuple[float, float, float, float]:
    """Decode a geohash to its cell ``(lat_lo, lat_hi, lon_lo, lon_hi)``.

    Raises:
        ValueError: if the string is empty or has invalid characters.
    """
    if not geohash:
        raise ValueError("empty geohash")
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    even = True
    for ch in geohash.lower():
        if ch not in _DECODE:
            raise ValueError(f"invalid geohash character: {ch!r}")
        val = _DECODE[ch]
        for shift in range(4, -1, -1):
            bit = (val >> shift) & 1
            if even:
                mid = (lon_lo + lon_hi) / 2
                if bit:
                    lon_lo = mid
                else:
                    lon_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even = not even
    return lat_lo, lat_hi, lon_lo, lon_hi


def decode(geohash: str) -> Tuple[float, float]:
    """Decode a geohash to its cell-centre ``(lat, lon)``."""
    lat_lo, lat_hi, lon_lo, lon_hi = decode_bbox(geohash)
    return (lat_lo + lat_hi) / 2, (lon_lo + lon_hi) / 2


def neighbors(geohash: str) -> list:
    """The up-to-8 geohashes adjacent to ``geohash`` at the same precision.

    Computed by nudging the decoded centre by one cell width/height in each
    direction and re-encoding; cells that would leave the valid coordinate
    range are dropped.
    """
    lat_lo, lat_hi, lon_lo, lon_hi = decode_bbox(geohash)
    lat_c = (lat_lo + lat_hi) / 2
    lon_c = (lon_lo + lon_hi) / 2
    dlat = lat_hi - lat_lo
    dlon = lon_hi - lon_lo
    out = []
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            lat = lat_c + dr * dlat
            lon = lon_c + dc * dlon
            if -90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0:
                out.append(encode(lat, lon, precision=len(geohash)))
    return out
