"""Geohash encoding and decoding.

The Mobike dataset stores start/end locations as geohashes ("The locations
are geohashed. We re-interpret them into the corresponding latitudes and
longitudes", Section V).  This module implements the standard base-32
geohash so the dataset layer can round-trip records exactly as the paper's
pipeline does.  Precision 7 (~76 m cells) roughly matches the paper's
100x100 m^2 bins.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "encode",
    "encode_many",
    "decode",
    "decode_bbox",
    "neighbors",
    "cell_indices_many",
    "cell_of",
    "cell_code",
    "cell_shape",
    "GEOHASH_ALPHABET",
]

GEOHASH_ALPHABET = "0123456789bcdefghjkmnpqrstuvwxyz"
_DECODE = {ch: i for i, ch in enumerate(GEOHASH_ALPHABET)}
_ALPHABET_BYTES = np.frombuffer(GEOHASH_ALPHABET.encode("ascii"), dtype=np.uint8)


def _axis_bits(precision: int) -> Tuple[int, int]:
    """``(lat_bits, lon_bits)`` for a geohash of ``precision`` characters.

    Even bits (starting with the most significant) refine longitude, so
    longitude owns the extra bit at odd precisions.
    """
    total = 5 * precision
    return total // 2, (total + 1) // 2


def encode(lat: float, lon: float, precision: int = 7) -> str:
    """Encode a WGS-84 coordinate as a geohash string.

    Args:
        lat: latitude in degrees, [-90, 90].
        lon: longitude in degrees, [-180, 180].
        precision: number of base-32 characters (1..12).

    Raises:
        ValueError: on out-of-range inputs.
    """
    if not -90.0 <= lat <= 90.0:
        raise ValueError(f"latitude out of range: {lat}")
    if not -180.0 <= lon <= 180.0:
        raise ValueError(f"longitude out of range: {lon}")
    if not 1 <= precision <= 12:
        raise ValueError(f"precision out of range: {precision}")

    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    chars = []
    bits = 0
    bit_count = 0
    even = True  # even bits refine longitude
    while len(chars) < precision:
        if even:
            mid = (lon_lo + lon_hi) / 2
            if lon >= mid:
                bits = (bits << 1) | 1
                lon_lo = mid
            else:
                bits <<= 1
                lon_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2
            if lat >= mid:
                bits = (bits << 1) | 1
                lat_lo = mid
            else:
                bits <<= 1
                lat_hi = mid
        even = not even
        bit_count += 1
        if bit_count == 5:
            chars.append(GEOHASH_ALPHABET[bits])
            bits = 0
            bit_count = 0
    return "".join(chars)


def _bisect_indices(
    lats: np.ndarray, lons: np.ndarray, precision: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-axis integer cell indices via the same interval halving as
    :func:`encode`, vectorized over coordinate arrays.

    No input validation: NaNs compare false at every split and land in
    index 0; out-of-range values saturate at the edge cells.  Callers own
    range policy (``encode_many`` validates, ``cell_indices_many`` clips).
    """
    n = lats.shape[0]
    lat_lo = np.full(n, -90.0)
    lat_hi = np.full(n, 90.0)
    lon_lo = np.full(n, -180.0)
    lon_hi = np.full(n, 180.0)
    lat_idx = np.zeros(n, dtype=np.int64)
    lon_idx = np.zeros(n, dtype=np.int64)
    even = True
    for _ in range(5 * precision):
        if even:
            mid = (lon_lo + lon_hi) / 2
            hi = lons >= mid
            lon_idx = (lon_idx << 1) | hi
            lon_lo = np.where(hi, mid, lon_lo)
            lon_hi = np.where(hi, lon_hi, mid)
        else:
            mid = (lat_lo + lat_hi) / 2
            hi = lats >= mid
            lat_idx = (lat_idx << 1) | hi
            lat_lo = np.where(hi, mid, lat_lo)
            lat_hi = np.where(hi, lat_hi, mid)
        even = not even
    return lat_idx, lon_idx


def _interleave(lat_idx: np.ndarray, lon_idx: np.ndarray, precision: int) -> np.ndarray:
    """Morton-interleave per-axis cell indices into 5*precision-bit codes."""
    lat_bits, lon_bits = _axis_bits(precision)
    code = np.zeros_like(lon_idx)
    for i in range(5 * precision):
        if i % 2 == 0:
            bit = (lon_idx >> (lon_bits - 1 - i // 2)) & 1
        else:
            bit = (lat_idx >> (lat_bits - 1 - i // 2)) & 1
        code = (code << 1) | bit
    return code


def encode_many(lats, lons, precision: int = 7) -> List[str]:
    """Vectorized :func:`encode` over coordinate arrays.

    Runs the identical interval-halving float arithmetic as the scalar
    encoder, so every output — including coordinates sitting exactly on a
    cell boundary, the antimeridian, or the poles — matches ``encode``
    character for character.

    Raises:
        ValueError: on out-of-range coordinates or precision, or if the
            two arrays differ in shape.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    if lats.shape != lons.shape or lats.ndim != 1:
        raise ValueError(f"expected matching 1-d arrays, got {lats.shape} and {lons.shape}")
    if not 1 <= precision <= 12:
        raise ValueError(f"precision out of range: {precision}")
    bad = ~((lats >= -90.0) & (lats <= 90.0))
    if bad.any():
        raise ValueError(f"latitude out of range: {lats[bad][0]}")
    bad = ~((lons >= -180.0) & (lons <= 180.0))
    if bad.any():
        raise ValueError(f"longitude out of range: {lons[bad][0]}")

    lat_idx, lon_idx = _bisect_indices(lats, lons, precision)
    code = _interleave(lat_idx, lon_idx, precision)
    chars = np.empty((lats.shape[0], precision), dtype=np.uint8)
    for k in range(precision):
        chars[:, k] = _ALPHABET_BYTES[(code >> (5 * (precision - 1 - k))) & 31]
    flat = chars.tobytes().decode("ascii")
    return [flat[i * precision : (i + 1) * precision] for i in range(lats.shape[0])]


def cell_indices_many(lats, lons, precision: int = 7) -> Tuple[np.ndarray, np.ndarray]:
    """Per-axis integer cell indices for coordinate arrays, with clamping.

    Returns ``(lat_idx, lon_idx)`` where index 0 is the southernmost /
    westernmost cell row and the grid has :func:`cell_shape` cells.  Unlike
    :func:`encode_many` this never raises on bad coordinates: out-of-range
    values clamp to the edge cells and non-finite values land in cell
    ``(0, 0)`` — routers dispatch garbage deterministically and let the
    per-shard validator reject it.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    if not 1 <= precision <= 12:
        raise ValueError(f"precision out of range: {precision}")
    return _bisect_indices(lats, lons, precision)


def cell_shape(precision: int) -> Tuple[int, int]:
    """``(n_lat, n_lon)`` — grid dimensions at ``precision`` characters."""
    if not 1 <= precision <= 12:
        raise ValueError(f"precision out of range: {precision}")
    lat_bits, lon_bits = _axis_bits(precision)
    return 1 << lat_bits, 1 << lon_bits


def cell_of(geohash: str) -> Tuple[int, int]:
    """De-interleave a geohash into its ``(lat_idx, lon_idx)`` cell indices.

    Raises:
        ValueError: if the string is empty or has invalid characters.
    """
    if not geohash:
        raise ValueError("empty geohash")
    lat_idx = 0
    lon_idx = 0
    even = True
    for ch in geohash.lower():
        if ch not in _DECODE:
            raise ValueError(f"invalid geohash character: {ch!r}")
        val = _DECODE[ch]
        for shift in range(4, -1, -1):
            bit = (val >> shift) & 1
            if even:
                lon_idx = (lon_idx << 1) | bit
            else:
                lat_idx = (lat_idx << 1) | bit
            even = not even
    return lat_idx, lon_idx


def cell_code(lat_idx: int, lon_idx: int, precision: int) -> str:
    """Inverse of :func:`cell_of`: geohash string for a cell index pair.

    Raises:
        ValueError: if either index falls outside :func:`cell_shape`.
    """
    n_lat, n_lon = cell_shape(precision)
    if not 0 <= lat_idx < n_lat:
        raise ValueError(f"lat index out of range: {lat_idx}")
    if not 0 <= lon_idx < n_lon:
        raise ValueError(f"lon index out of range: {lon_idx}")
    lat_bits, lon_bits = _axis_bits(precision)
    code = 0
    for i in range(5 * precision):
        if i % 2 == 0:
            bit = (lon_idx >> (lon_bits - 1 - i // 2)) & 1
        else:
            bit = (lat_idx >> (lat_bits - 1 - i // 2)) & 1
        code = (code << 1) | bit
    return "".join(
        GEOHASH_ALPHABET[(code >> (5 * (precision - 1 - k))) & 31] for k in range(precision)
    )


def decode_bbox(geohash: str) -> Tuple[float, float, float, float]:
    """Decode a geohash to its cell ``(lat_lo, lat_hi, lon_lo, lon_hi)``.

    Raises:
        ValueError: if the string is empty or has invalid characters.
    """
    if not geohash:
        raise ValueError("empty geohash")
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    even = True
    for ch in geohash.lower():
        if ch not in _DECODE:
            raise ValueError(f"invalid geohash character: {ch!r}")
        val = _DECODE[ch]
        for shift in range(4, -1, -1):
            bit = (val >> shift) & 1
            if even:
                mid = (lon_lo + lon_hi) / 2
                if bit:
                    lon_lo = mid
                else:
                    lon_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even = not even
    return lat_lo, lat_hi, lon_lo, lon_hi


def decode(geohash: str) -> Tuple[float, float]:
    """Decode a geohash to its cell-centre ``(lat, lon)``."""
    lat_lo, lat_hi, lon_lo, lon_hi = decode_bbox(geohash)
    return (lat_lo + lat_hi) / 2, (lon_lo + lon_hi) / 2


def neighbors(geohash: str) -> list:
    """The up-to-8 geohashes adjacent to ``geohash`` at the same precision.

    Computed with exact integer cell-index arithmetic rather than float
    centre-nudging.  Longitude wraps across the antimeridian (the east
    neighbor of the easternmost column is the westernmost column), while
    latitude rows beyond the poles do not exist: cells touching the ±90°
    border return 5 neighbors (their polar row is dropped, never an
    out-of-range or duplicate cell).
    """
    precision = len(geohash)
    lat_idx, lon_idx = cell_of(geohash)
    n_lat, n_lon = cell_shape(precision)
    out = []
    for dr in (-1, 0, 1):
        r = lat_idx + dr
        if r < 0 or r >= n_lat:
            continue
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            out.append(cell_code(r, (lon_idx + dc) % n_lon, precision))
    return out
