"""Grid-bucketed nearest-neighbour index.

The online algorithms query "nearest open parking to this destination"
once per request; a linear scan is O(|P|) per query.  This index buckets
points into square cells and expands ring-by-ring from the query cell, so
typical queries touch only a few buckets.  It supports dynamic insertion
(stations open mid-stream) and removal (footnote 2: emptied stations
leave ``P``), which rules out a static KD-tree.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .points import Point

__all__ = ["NearestNeighborIndex"]


class NearestNeighborIndex:
    """Dynamic nearest-neighbour queries over points in the plane.

    Args:
        cell_size: bucket side length; pick roughly the expected spacing
            of the indexed points.  Too small wastes ring expansions, too
            large degenerates to a linear scan.

    Raises:
        ValueError: if ``cell_size`` is not positive.
    """

    def __init__(self, cell_size: float, points: Optional[Iterable[Point]] = None) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._buckets: Dict[Tuple[int, int], List[int]] = {}
        self._points: List[Optional[Point]] = []
        self._size = 0
        for p in points or []:
            self.add(p)

    def __len__(self) -> int:
        return self._size

    def _key(self, p: Point) -> Tuple[int, int]:
        return (math.floor(p.x / self.cell_size), math.floor(p.y / self.cell_size))

    # ------------------------------------------------------------------
    def add(self, point: Point) -> int:
        """Insert a point; returns its stable index."""
        idx = len(self._points)
        self._points.append(point)
        self._buckets.setdefault(self._key(point), []).append(idx)
        self._size += 1
        return idx

    def remove(self, index: int) -> None:
        """Remove the point with the given index.

        Raises:
            KeyError: if the index is unknown or already removed.
        """
        if not 0 <= index < len(self._points) or self._points[index] is None:
            raise KeyError(f"no point with index {index}")
        point = self._points[index]
        self._points[index] = None
        bucket = self._buckets[self._key(point)]
        bucket.remove(index)
        if not bucket:
            del self._buckets[self._key(point)]
        self._size -= 1

    def point(self, index: int) -> Point:
        """The point stored at ``index``.

        Raises:
            KeyError: if the index is unknown or removed.
        """
        if not 0 <= index < len(self._points) or self._points[index] is None:
            raise KeyError(f"no point with index {index}")
        return self._points[index]

    # ------------------------------------------------------------------
    def nearest(self, query: Point) -> Tuple[int, float]:
        """Index of, and distance to, the nearest stored point.

        Expands square rings of buckets around the query until the best
        candidate provably beats anything in unexplored rings.

        Raises:
            ValueError: if the index is empty.
        """
        if self._size == 0:
            raise ValueError("nearest() on an empty index")
        qc, qr = self._key(query)
        best_idx = -1
        best_dist = math.inf
        ring = 0
        # Upper bound on rings: enough to cover all buckets.
        while True:
            found_any = False
            for key in self._ring_keys(qc, qr, ring):
                for idx in self._buckets.get(key, ()):  # pragma: no branch
                    found_any = True
                    d = query.distance_to(self._points[idx])
                    if d < best_dist or (d == best_dist and idx < best_idx):
                        best_dist = d
                        best_idx = idx
            # Any point in ring r+1 or beyond is at least r*cell away.
            if best_idx >= 0 and best_dist <= ring * self.cell_size:
                break
            ring += 1
            if ring > self._max_ring(qc, qr):
                break
        return best_idx, best_dist

    def within(self, query: Point, radius: float) -> List[Tuple[int, float]]:
        """All stored points within ``radius`` of ``query`` as (idx, dist).

        Raises:
            ValueError: if ``radius`` is negative.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        qc, qr = self._key(query)
        max_ring = int(math.ceil(radius / self.cell_size)) + 1
        out: List[Tuple[int, float]] = []
        for ring in range(max_ring + 1):
            for key in self._ring_keys(qc, qr, ring):
                for idx in self._buckets.get(key, ()):
                    d = query.distance_to(self._points[idx])
                    if d <= radius:
                        out.append((idx, d))
        return sorted(out, key=lambda t: (t[1], t[0]))

    # ------------------------------------------------------------------
    def _ring_keys(self, qc: int, qr: int, ring: int):
        if ring == 0:
            yield (qc, qr)
            return
        for dc in range(-ring, ring + 1):
            yield (qc + dc, qr - ring)
            yield (qc + dc, qr + ring)
        for dr in range(-ring + 1, ring):
            yield (qc - ring, qr + dr)
            yield (qc + ring, qr + dr)

    def _max_ring(self, qc: int, qr: int) -> int:
        if not self._buckets:
            return 0
        return max(
            max(abs(c - qc), abs(r - qr)) for c, r in self._buckets
        )
