"""Grid-bucketed nearest-neighbour index.

The online algorithms query "nearest open parking to this destination"
once per request; a linear scan is O(|P|) per query.  This index buckets
points into square cells and expands ring-by-ring from the query cell, so
typical queries touch only a few buckets.  It supports dynamic insertion
(stations open mid-stream) and removal (footnote 2: emptied stations
leave ``P``), which rules out a static KD-tree.

Tie-breaking contract: every query method resolves equal distances to the
lowest stored index, matching :func:`repro.geo.distance.nearest_point_index`
(``np.argmin`` keeps the first minimum).  The ring expansion therefore
only stops once the best candidate is *strictly* closer than anything an
unexplored ring could hold — an equal-distance, lower-index point in the
next ring must still be visited.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .points import Point

__all__ = ["NearestNeighborIndex"]


class NearestNeighborIndex:
    """Dynamic nearest-neighbour queries over points in the plane.

    Args:
        cell_size: bucket side length; pick roughly the expected spacing
            of the indexed points.  Too small wastes ring expansions, too
            large degenerates to a linear scan.

    Raises:
        ValueError: if ``cell_size`` is not positive.
    """

    def __init__(self, cell_size: float, points: Optional[Iterable[Point]] = None) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = float(cell_size)
        self._buckets: Dict[Tuple[int, int], List[int]] = {}
        self._points: List[Optional[Point]] = []
        self._size = 0
        # Bounding box over occupied bucket keys, maintained on add/remove
        # so the ring-expansion cutoff is O(1) per query instead of a scan
        # over every bucket per ring (quadratic on sparse far-away queries).
        self._bounds: Optional[Tuple[int, int, int, int]] = None
        for p in points or []:
            self.add(p)

    def __len__(self) -> int:
        return self._size

    def _key(self, p: Point) -> Tuple[int, int]:
        return (math.floor(p.x / self.cell_size), math.floor(p.y / self.cell_size))

    # ------------------------------------------------------------------
    def add(self, point: Point) -> int:
        """Insert a point; returns its stable index."""
        idx = len(self._points)
        self._points.append(point)
        key = self._key(point)
        self._buckets.setdefault(key, []).append(idx)
        self._size += 1
        self._grow_bounds(key)
        return idx

    def remove(self, index: int) -> None:
        """Remove the point with the given index.

        Raises:
            KeyError: if the index is unknown or already removed.
        """
        if not 0 <= index < len(self._points) or self._points[index] is None:
            raise KeyError(f"no point with index {index}")
        point = self._points[index]
        self._points[index] = None
        key = self._key(point)
        bucket = self._buckets[key]
        bucket.remove(index)
        if not bucket:
            del self._buckets[key]
            self._shrink_bounds(key)
        self._size -= 1

    def point(self, index: int) -> Point:
        """The point stored at ``index``.

        Raises:
            KeyError: if the index is unknown or removed.
        """
        if not 0 <= index < len(self._points) or self._points[index] is None:
            raise KeyError(f"no point with index {index}")
        return self._points[index]

    # ------------------------------------------------------------------
    def nearest(
        self,
        query: Point,
        predicate: Optional[Callable[[int], bool]] = None,
    ) -> Tuple[int, float]:
        """Index of, and distance to, the nearest stored point.

        Expands square rings of buckets around the query until the best
        candidate provably beats anything in unexplored rings.  Distance
        ties resolve to the lowest index (see the module docstring).

        Args:
            query: the query location.
            predicate: optional filter; only indices for which
                ``predicate(idx)`` is true are considered.  When the
                predicate rejects every stored point the result is
                ``(-1, inf)``.

        Raises:
            ValueError: if the index is empty.
        """
        if self._size == 0:
            raise ValueError("nearest() on an empty index")
        qc, qr = self._key(query)
        best_idx = -1
        best_dist = math.inf
        max_ring = self._max_ring(qc, qr)
        ring = 0
        while True:
            for key in self._ring_keys(qc, qr, ring):
                for idx in self._buckets.get(key, ()):  # pragma: no branch
                    if predicate is not None and not predicate(idx):
                        continue
                    d = query.distance_to(self._points[idx])
                    if d < best_dist or (d == best_dist and idx < best_idx):
                        best_dist = d
                        best_idx = idx
            # Any point in ring r+1 or beyond is at least r*cell away, so
            # a *strictly* closer best cannot be beaten — and cannot even
            # be tied by a lower index — in unexplored rings.
            if best_idx >= 0 and best_dist < ring * self.cell_size:
                break
            ring += 1
            if ring > max_ring:
                break
        return best_idx, best_dist

    def within(self, query: Point, radius: float) -> List[Tuple[int, float]]:
        """All stored points within ``radius`` of ``query`` as (idx, dist).

        Sorted by ``(distance, index)``.

        Raises:
            ValueError: if ``radius`` is negative.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        qc, qr = self._key(query)
        max_ring = int(math.ceil(radius / self.cell_size)) + 1
        out: List[Tuple[int, float]] = []
        for ring in range(max_ring + 1):
            for key in self._ring_keys(qc, qr, ring):
                for idx in self._buckets.get(key, ()):
                    d = query.distance_to(self._points[idx])
                    if d <= radius:
                        out.append((idx, d))
        return sorted(out, key=lambda t: (t[1], t[0]))

    # ------------------------------------------------------------------
    def _ring_keys(self, qc: int, qr: int, ring: int):
        if ring == 0:
            yield (qc, qr)
            return
        for dc in range(-ring, ring + 1):
            yield (qc + dc, qr - ring)
            yield (qc + dc, qr + ring)
        for dr in range(-ring + 1, ring):
            yield (qc - ring, qr + dr)
            yield (qc + ring, qr + dr)

    def _max_ring(self, qc: int, qr: int) -> int:
        """Chebyshev distance from the query cell to the farthest corner
        of the occupied-bucket bounding box — an O(1) upper bound on the
        rings worth exploring (the exact per-bucket maximum would cost a
        scan over every bucket, and only ever differs when the box's far
        corner is empty, where a few extra no-op ring lookups are cheap).
        """
        if self._bounds is None:
            return 0
        min_c, max_c, min_r, max_r = self._bounds
        return max(
            max(abs(min_c - qc), abs(max_c - qc)),
            max(abs(min_r - qr), abs(max_r - qr)),
        )

    def _grow_bounds(self, key: Tuple[int, int]) -> None:
        c, r = key
        if self._bounds is None:
            self._bounds = (c, c, r, r)
            return
        min_c, max_c, min_r, max_r = self._bounds
        if c < min_c or c > max_c or r < min_r or r > max_r:
            self._bounds = (min(min_c, c), max(max_c, c), min(min_r, r), max(max_r, r))

    def _shrink_bounds(self, key: Tuple[int, int]) -> None:
        """Called after a bucket at ``key`` was deleted: refresh the cached
        bounds only when the vanished bucket sat on the box boundary."""
        if not self._buckets:
            self._bounds = None
            return
        min_c, max_c, min_r, max_r = self._bounds
        c, r = key
        if c in (min_c, max_c) or r in (min_r, max_r):
            cs = [k[0] for k in self._buckets]
            rs = [k[1] for k in self._buckets]
            self._bounds = (min(cs), max(cs), min(rs), max(rs))
