"""Planar points and bounding boxes.

All Tier-1 geometry in the paper happens in a projected planar frame: a
metropolitan area is cut into grids, distances are Euclidean and measured
in metres (Definition 1).  ``Point`` is the minimal immutable value type
used throughout :mod:`repro`; ``BoundingBox`` describes the study region
(e.g. the 3x3 km^2 field of Section V).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

__all__ = ["Point", "BoundingBox", "points_to_array", "array_to_points"]


@dataclass(frozen=True, order=True)
class Point:
    """An immutable point in a planar metric space (metres).

    The ordering is lexicographic ``(x, y)`` which makes sets of points
    deterministic to iterate after sorting — useful for reproducible
    experiment output.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in the same unit as the coords."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance, occasionally useful for street-grid walking."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """Point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Raises:
        ValueError: if the box is inverted (``max < min`` on either axis).
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError(
                f"inverted bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @classmethod
    def square(cls, side: float, origin: Point = Point(0.0, 0.0)) -> "BoundingBox":
        """A square box of side ``side`` with lower-left corner ``origin``."""
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        return cls(origin.x, origin.y, origin.x + side, origin.y + side)

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BoundingBox":
        """The tightest box containing every point in ``points``.

        Raises:
            ValueError: if ``points`` is empty.
        """
        pts = list(points)
        if not pts:
            raise ValueError("cannot build a bounding box from no points")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside the closed box."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the box (nearest point inside it)."""
        return Point(
            min(max(point.x, self.min_x), self.max_x),
            min(max(point.y, self.min_y), self.max_y),
        )

    def expand(self, margin: float) -> "BoundingBox":
        """A copy grown by ``margin`` on every side (may be negative)."""
        box = BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
        return box

    def sample(self, rng: np.random.Generator, n: int) -> list:
        """``n`` points sampled uniformly at random within the box."""
        xs = rng.uniform(self.min_x, self.max_x, size=n)
        ys = rng.uniform(self.min_y, self.max_y, size=n)
        return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def points_to_array(points: Sequence[Point]) -> np.ndarray:
    """Stack points into an ``(n, 2)`` float array (empty -> shape (0, 2))."""
    if not points:
        return np.empty((0, 2), dtype=float)
    return np.asarray([(p.x, p.y) for p in points], dtype=float)


def array_to_points(array: np.ndarray) -> list:
    """Inverse of :func:`points_to_array`."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) array, got shape {arr.shape}")
    return [Point(float(x), float(y)) for x, y in arr]
