"""Uniform grids over a study region.

Section III-A divides the metropolitan area into grids — "the minimum
granularity such that users all agree to walk within a grid" — and
represents each grid by its centroid.  The set of all grid centroids is
the candidate set ``N`` of problem P1.  The evaluation uses 100x100 m^2
grid cells aggregated over a 3x3 km^2 field.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from .points import BoundingBox, Point

__all__ = ["GridCell", "UniformGrid", "DemandGrid"]


@dataclass(frozen=True, order=True)
class GridCell:
    """Integer (column, row) index of a cell within a :class:`UniformGrid`."""

    col: int
    row: int


class UniformGrid:
    """A rectangular grid of square cells covering a bounding box.

    Points on the outer edge are clamped into the boundary cells, so every
    point inside the box maps to a valid cell.

    Args:
        box: the study region.
        cell_size: side of each square cell, in the box's unit (metres).

    Raises:
        ValueError: if ``cell_size`` is not positive.
    """

    def __init__(self, box: BoundingBox, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.box = box
        self.cell_size = float(cell_size)
        self.n_cols = max(1, int(np.ceil(box.width / cell_size)))
        self.n_rows = max(1, int(np.ceil(box.height / cell_size)))

    def __len__(self) -> int:
        return self.n_cols * self.n_rows

    def __contains__(self, cell: GridCell) -> bool:
        return 0 <= cell.col < self.n_cols and 0 <= cell.row < self.n_rows

    def cell_of(self, point: Point) -> GridCell:
        """The cell containing ``point`` (clamped onto the grid).

        Raises:
            ValueError: if the point lies outside the bounding box.
        """
        if not self.box.contains(point):
            raise ValueError(f"point {point} outside grid box {self.box}")
        col = int((point.x - self.box.min_x) / self.cell_size)
        row = int((point.y - self.box.min_y) / self.cell_size)
        return GridCell(min(col, self.n_cols - 1), min(row, self.n_rows - 1))

    def centroid(self, cell: GridCell) -> Point:
        """Centre point of ``cell``.

        Raises:
            ValueError: if the cell index is out of range.
        """
        if cell not in self:
            raise ValueError(f"cell {cell} outside grid {self.n_cols}x{self.n_rows}")
        return Point(
            self.box.min_x + (cell.col + 0.5) * self.cell_size,
            self.box.min_y + (cell.row + 0.5) * self.cell_size,
        )

    def snap(self, point: Point) -> Point:
        """Centroid of the cell containing ``point``."""
        return self.centroid(self.cell_of(point))

    def cells(self) -> Iterator[GridCell]:
        """Iterate over every cell in row-major order."""
        for row in range(self.n_rows):
            for col in range(self.n_cols):
                yield GridCell(col, row)

    def centroids(self) -> List[Point]:
        """Centroids of every cell, row-major — the candidate set ``N``."""
        return [self.centroid(c) for c in self.cells()]

    def neighbors(self, cell: GridCell, radius: int = 1) -> List[GridCell]:
        """Cells within Chebyshev distance ``radius`` of ``cell`` (excl. itself)."""
        out: List[GridCell] = []
        for dr in range(-radius, radius + 1):
            for dc in range(-radius, radius + 1):
                if dr == 0 and dc == 0:
                    continue
                cand = GridCell(cell.col + dc, cell.row + dr)
                if cand in self:
                    out.append(cand)
        return out


class DemandGrid:
    """Arrival counts per grid cell — the ``a_j`` weights of Definition 1.

    Binning all arrivals of a window into their cells and representing each
    cell by (centroid, count) is exactly how the paper turns raw trips into
    the weighted demand points of problem P1.
    """

    def __init__(self, grid: UniformGrid) -> None:
        self.grid = grid
        self._counts: Counter = Counter()

    def add(self, point: Point, weight: int = 1) -> None:
        """Record ``weight`` arrivals at ``point``.

        Raises:
            ValueError: if ``weight`` is negative or the point is off-grid.
        """
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        self._counts[self.grid.cell_of(point)] += weight

    def add_many(self, points: Iterable[Point]) -> None:
        """Record one arrival at each of ``points``."""
        for p in points:
            self.add(p)

    def count(self, cell: GridCell) -> int:
        """Arrivals recorded in ``cell`` so far."""
        return self._counts.get(cell, 0)

    @property
    def total(self) -> int:
        """Total arrivals across all cells."""
        return sum(self._counts.values())

    @property
    def occupied_cells(self) -> List[GridCell]:
        """Cells with at least one arrival, in deterministic order."""
        return sorted(self._counts)

    def weighted_points(self) -> List[Tuple[Point, int]]:
        """``(centroid, count)`` pairs for each occupied cell."""
        return [(self.grid.centroid(c), self._counts[c]) for c in self.occupied_cells]

    def as_matrix(self) -> np.ndarray:
        """Counts as an ``(n_rows, n_cols)`` array (for heatmaps)."""
        mat = np.zeros((self.grid.n_rows, self.grid.n_cols), dtype=int)
        for cell, cnt in self._counts.items():
            mat[cell.row, cell.col] = cnt
        return mat

    def top_cells(self, k: int) -> List[Tuple[GridCell, int]]:
        """The ``k`` busiest cells, ties broken by cell order.

        This implements the candidate-space reduction of Section III-A
        ("the space of N can be reduced to filter out those less popular
        locations").
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
