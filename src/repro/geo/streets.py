"""Street-network walking distances.

The paper measures user dissatisfaction by *Euclidean* walking distance
(Section V).  Real riders walk along streets, so Euclidean systematically
understates the cost — on a rectangular street grid by up to sqrt(2).
This module builds a Manhattan-style street graph over the study region
(networkx), answers shortest-path walking queries, and provides a
street-aware drop-in for the cost model so the Euclidean assumption can
be quantified (see ``bench_street_distance``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from .points import BoundingBox, Point

__all__ = ["StreetNetwork", "street_walking_cost"]


class StreetNetwork:
    """A rectangular street grid with shortest-path walking distances.

    Nodes sit at street intersections every ``block_size`` metres; edges
    are street segments with their Euclidean length as weight.  With
    ``diagonal_avenues`` the grid gains diagonal shortcuts on a coarser
    spacing, emulating arterial roads.

    Args:
        box: the study region.
        block_size: street spacing in metres.
        diagonal_avenues: add diagonal edges every other block.

    Raises:
        ValueError: if ``block_size`` is not positive or exceeds the
            region extent.
    """

    def __init__(
        self,
        box: BoundingBox,
        block_size: float = 100.0,
        diagonal_avenues: bool = False,
    ) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if block_size > max(box.width, box.height):
            raise ValueError("block_size larger than the study region")
        self.box = box
        self.block_size = float(block_size)
        self.n_cols = int(np.floor(box.width / block_size)) + 1
        self.n_rows = int(np.floor(box.height / block_size)) + 1
        self.graph = nx.Graph()
        for r in range(self.n_rows):
            for c in range(self.n_cols):
                self.graph.add_node((c, r))
        for r in range(self.n_rows):
            for c in range(self.n_cols):
                if c + 1 < self.n_cols:
                    self.graph.add_edge((c, r), (c + 1, r), weight=self.block_size)
                if r + 1 < self.n_rows:
                    self.graph.add_edge((c, r), (c, r + 1), weight=self.block_size)
                if (
                    diagonal_avenues
                    and c + 1 < self.n_cols
                    and r + 1 < self.n_rows
                    and (c + r) % 2 == 0
                ):
                    self.graph.add_edge(
                        (c, r), (c + 1, r + 1),
                        weight=self.block_size * float(np.sqrt(2.0)),
                    )
        self._sssp_cache: Dict[Tuple[int, int], Dict[Tuple[int, int], float]] = {}

    # ------------------------------------------------------------------
    @property
    def n_intersections(self) -> int:
        return self.graph.number_of_nodes()

    def node_location(self, node: Tuple[int, int]) -> Point:
        """Planar coordinates of an intersection.

        Raises:
            KeyError: for a node outside the grid.
        """
        if node not in self.graph:
            raise KeyError(f"no intersection {node}")
        c, r = node
        return Point(self.box.min_x + c * self.block_size, self.box.min_y + r * self.block_size)

    def nearest_node(self, point: Point) -> Tuple[int, int]:
        """The intersection closest to ``point`` (clamped to the grid)."""
        c = int(round((point.x - self.box.min_x) / self.block_size))
        r = int(round((point.y - self.box.min_y) / self.block_size))
        return (min(max(c, 0), self.n_cols - 1), min(max(r, 0), self.n_rows - 1))

    # ------------------------------------------------------------------
    def _sssp(self, source: Tuple[int, int]) -> Dict[Tuple[int, int], float]:
        if source not in self._sssp_cache:
            self._sssp_cache[source] = nx.single_source_dijkstra_path_length(
                self.graph, source, weight="weight"
            )
        return self._sssp_cache[source]

    def walking_distance(self, a: Point, b: Point) -> float:
        """Street walking distance between two points.

        Off-street access legs (point to its nearest intersection) are
        charged at their Euclidean length; the remainder follows the
        shortest street path.
        """
        na, nb = self.nearest_node(a), self.nearest_node(b)
        access = a.distance_to(self.node_location(na)) + b.distance_to(self.node_location(nb))
        if na == nb:
            return a.distance_to(b)
        return access + self._sssp(na)[nb]

    def detour_factor(self, a: Point, b: Point) -> float:
        """Street distance over Euclidean distance (>= ~1).

        Raises:
            ValueError: for coincident points.
        """
        euclid = a.distance_to(b)
        if euclid == 0:
            raise ValueError("detour factor undefined for coincident points")
        return self.walking_distance(a, b) / euclid


def street_walking_cost(
    demands: Sequence,
    stations: Sequence[Point],
    network: StreetNetwork,
) -> Tuple[float, List[int]]:
    """Street-aware counterpart of :func:`repro.core.costs.walking_cost`.

    Assigns each demand to the station with the smallest *street*
    distance and returns the weighted total plus the assignment.

    Raises:
        ValueError: if demand exists but there are no stations.
    """
    demands = list(demands)
    if not demands:
        return 0.0, []
    if not stations:
        raise ValueError("no stations to assign demand to")
    station_nodes = [network.nearest_node(s) for s in stations]
    total = 0.0
    assignment: List[int] = []
    for d in demands:
        dn = network.nearest_node(d.location)
        lengths = network._sssp(dn)
        best_idx = -1
        best = float("inf")
        for idx, (s, sn) in enumerate(zip(stations, station_nodes)):
            if sn == dn:
                dist = d.location.distance_to(s)
            else:
                access = (
                    d.location.distance_to(network.node_location(dn))
                    + s.distance_to(network.node_location(sn))
                )
                dist = access + lengths[sn]
            if dist < best:
                best = dist
                best_idx = idx
        assignment.append(best_idx)
        total += d.weight * best
    return total, assignment
