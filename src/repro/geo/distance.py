"""Distance functions and distance matrices.

User dissatisfaction in the paper is proportional to *walking distance*
measured as Euclidean distance (Section V, "Experimental Parameters").
Trip records, however, carry geographic coordinates, so a haversine
implementation and a local equirectangular projection are provided to move
between the two frames.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from .points import Point, points_to_array

__all__ = [
    "euclidean",
    "haversine_m",
    "haversine_m_vec",
    "pairwise_distances",
    "cross_distances",
    "nearest_point_index",
    "LocalProjection",
    "EARTH_RADIUS_M",
]

EARTH_RADIUS_M = 6_371_008.8
"""Mean Earth radius in metres (IUGG)."""


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two planar points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in metres between two WGS-84 coordinates."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlam = math.radians(lon2 - lon1)
    h = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def haversine_m_vec(
    lats1: np.ndarray,
    lons1: np.ndarray,
    lats2: np.ndarray,
    lons2: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`haversine_m` over coordinate arrays.

    Inputs broadcast against each other; the return shape is the
    broadcast shape.  One call replaces ``n`` scalar trig rounds — the
    Mobike CSV reader uses it to measure every trip's great-circle
    length in a single pass.
    """
    phi1 = np.radians(np.asarray(lats1, dtype=float))
    phi2 = np.radians(np.asarray(lats2, dtype=float))
    dphi = phi2 - phi1
    dlam = np.radians(np.asarray(lons2, dtype=float) - np.asarray(lons1, dtype=float))
    h = np.sin(dphi / 2) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2) ** 2
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.minimum(1.0, np.sqrt(h)))


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Symmetric ``(n, n)`` matrix of Euclidean distances."""
    arr = points_to_array(points)
    if arr.shape[0] == 0:
        return np.empty((0, 0), dtype=float)
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def cross_distances(sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
    """``(len(sources), len(targets))`` matrix of Euclidean distances."""
    a = points_to_array(sources)
    b = points_to_array(targets)
    if a.shape[0] == 0 or b.shape[0] == 0:
        return np.empty((a.shape[0], b.shape[0]), dtype=float)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def nearest_point_index(query: Point, candidates: Sequence[Point]) -> Tuple[int, float]:
    """Index of, and distance to, the candidate nearest ``query``.

    Raises:
        ValueError: if ``candidates`` is empty.
    """
    if not candidates:
        raise ValueError("no candidates to search")
    arr = points_to_array(candidates)
    d = np.hypot(arr[:, 0] - query.x, arr[:, 1] - query.y)
    idx = int(np.argmin(d))
    return idx, float(d[idx])


class LocalProjection:
    """Equirectangular projection around a reference coordinate.

    Good to sub-metre accuracy across a metropolitan study region (a few
    tens of km), which is all the paper's grid model requires.  Maps
    (lat, lon) to planar metres with the reference at the origin.
    """

    def __init__(self, ref_lat: float, ref_lon: float) -> None:
        if not -90.0 <= ref_lat <= 90.0:
            raise ValueError(f"latitude out of range: {ref_lat}")
        self.ref_lat = ref_lat
        self.ref_lon = ref_lon
        self._cos_lat = math.cos(math.radians(ref_lat))

    def to_plane(self, lat: float, lon: float) -> Point:
        """Project a geographic coordinate to local planar metres."""
        x = math.radians(lon - self.ref_lon) * EARTH_RADIUS_M * self._cos_lat
        y = math.radians(lat - self.ref_lat) * EARTH_RADIUS_M
        return Point(x, y)

    def to_plane_vec(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`to_plane`; returns planar metres as ``(n, 2)``.

        The operation order matches the scalar path, so coordinates are
        bit-identical to projecting row by row.
        """
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        x = np.radians(lons - self.ref_lon) * EARTH_RADIUS_M * self._cos_lat
        y = np.radians(lats - self.ref_lat) * EARTH_RADIUS_M
        return np.column_stack((x, y))

    def to_geo(self, point: Point) -> Tuple[float, float]:
        """Inverse of :meth:`to_plane`; returns ``(lat, lon)``."""
        lat = self.ref_lat + math.degrees(point.y / EARTH_RADIUS_M)
        lon = self.ref_lon + math.degrees(point.x / (EARTH_RADIUS_M * self._cos_lat))
        return lat, lon

    def to_geo_vec(self, xs: np.ndarray, ys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`to_geo` over planar coordinate columns.

        The operation order matches the scalar inverse, so the returned
        ``(lats, lons)`` are bit-identical to unprojecting point by point.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        lats = self.ref_lat + np.degrees(ys / EARTH_RADIUS_M)
        lons = self.ref_lon + np.degrees(xs / (EARTH_RADIUS_M * self._cos_lat))
        return lats, lons
