"""Planar geometry, grids and geohashing — the spatial substrate of P1."""

from .points import BoundingBox, Point, array_to_points, points_to_array
from .distance import (
    EARTH_RADIUS_M,
    LocalProjection,
    cross_distances,
    euclidean,
    haversine_m,
    haversine_m_vec,
    nearest_point_index,
    pairwise_distances,
)
from .grid import DemandGrid, GridCell, UniformGrid
from .spatial_index import NearestNeighborIndex
from .streets import StreetNetwork, street_walking_cost
from . import geohash

__all__ = [
    "BoundingBox",
    "Point",
    "array_to_points",
    "points_to_array",
    "EARTH_RADIUS_M",
    "LocalProjection",
    "cross_distances",
    "euclidean",
    "haversine_m",
    "haversine_m_vec",
    "nearest_point_index",
    "pairwise_distances",
    "DemandGrid",
    "GridCell",
    "UniformGrid",
    "NearestNeighborIndex",
    "StreetNetwork",
    "street_walking_cost",
    "geohash",
]
